"""E7 / Figure 4 — resource management: backfilling earns its keep.

Keynote claim: "a combination of open source and commercial software tools
will be developed for ... resource management" — the scheduling layer is
where cluster productivity is won or lost.

Regenerates: utilization and mean bounded slowdown vs offered load (0.5 to
0.95) for FCFS, SJF, EASY, and conservative backfilling on a 128-node
machine with a Feitelson-style workload.  Shape assertions: the backfill
family sustains high load where FCFS collapses; SJF buys slowdown at the
price of starvation (max wait).
"""

from repro.analysis import ExperimentReport, Series, Table
from repro.scheduler import (
    BatchSimulator,
    WorkloadGenerator,
    WorkloadParams,
    evaluate_schedule,
    get_policy,
)
from repro.sim import RandomStreams

NODES = 128
LOADS = [0.5, 0.7, 0.85, 0.95]
POLICIES = ["fcfs", "sjf", "easy", "conservative"]
JOBS = 1500


def run_grid():
    """metrics[policy][load]"""
    results = {policy: {} for policy in POLICIES}
    for load in LOADS:
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=NODES, offered_load=load),
            RandomStreams(seed=1234))
        jobs = generator.generate(JOBS)
        for policy in POLICIES:
            outcome = BatchSimulator(NODES, get_policy(policy)).run(jobs)
            results[policy][load] = evaluate_schedule(outcome)
    return results


def test_e07_scheduling(benchmark, show):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    report = ExperimentReport(
        "E7 / Fig. 4", "Batch policies vs offered load (128 nodes)",
        "backfilling schedulers keep exploding systems productive; naive "
        "FCFS leaves half the machine idle at high load",
    )
    report.add_series(
        [Series(policy, x=LOADS,
                y=[results[policy][load].utilization for load in LOADS])
         for policy in POLICIES],
        x_label="offered load", title="delivered utilization")
    report.add_series(
        [Series(policy, x=LOADS,
                y=[results[policy][load].mean_bounded_slowdown
                   for load in LOADS])
         for policy in POLICIES],
        x_label="offered load", title="mean bounded slowdown")

    table = Table(["policy", "util@0.95", "bsld@0.95", "max wait h@0.95"],
                  formats={"util@0.95": "{:.3f}", "bsld@0.95": "{:.1f}",
                           "max wait h@0.95": "{:.1f}"})
    for policy in POLICIES:
        metrics = results[policy][0.95]
        table.add_row([policy, metrics.utilization,
                       metrics.mean_bounded_slowdown,
                       metrics.max_wait / 3600.0])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    heavy = {policy: results[policy][0.95] for policy in POLICIES}
    light = {policy: results[policy][0.5] for policy in POLICIES}
    # At light load everyone is fine and roughly equal.
    for policy in POLICIES:
        assert light[policy].utilization > 0.4
        assert (abs(light[policy].utilization - light["fcfs"].utilization)
                < 0.1)
    # At heavy load the backfillers deliver far more machine...
    for backfiller in ("easy", "conservative"):
        assert heavy[backfiller].utilization > heavy["fcfs"].utilization + 0.15
        assert (heavy[backfiller].mean_bounded_slowdown
                < heavy["fcfs"].mean_bounded_slowdown / 3)
    # ...and utilization grows with offered load for them (no collapse).
    for backfiller in ("easy", "conservative"):
        curve = [results[backfiller][load].utilization for load in LOADS]
        assert curve == sorted(curve)
    # SJF starves somebody: its max wait dwarfs the backfillers'.
    assert heavy["sjf"].max_wait > heavy["easy"].max_wait
    report.add_note(f"at rho=0.95: fcfs delivers "
                    f"{heavy['fcfs'].utilization:.0%}, EASY "
                    f"{heavy['easy'].utilization:.0%}, conservative "
                    f"{heavy['conservative'].utilization:.0%} — the "
                    "published backfilling result (Lifka/Feitelson) in shape")
    show(report)
