"""E1 / Figure 1 — the five technology curves, 2002-2010.

Keynote claim: "we will examine current projections of device technology
to anticipate the performance, capacity, power, size, and cost curves of
future commodity clusters" and clusters "continue to track Moore's
exponential growth in peak performance and storage capacity".

Regenerates: per-node peak GFLOPS, memory capacity, $/GFLOPS, W/GFLOPS
and GFLOPS/rack-U for each scenario, 2003-2010, and asserts exponential
shape (straight in log space) with the scenario ordering.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series, Table
from repro.tech import SCENARIOS, get_scenario, technology_curve

YEARS = np.arange(2003.0, 2011.0, 1.0)

CURVES = [
    ("node_peak_flops", "peak FLOPS/node", False),
    ("node_memory_bytes", "DRAM bytes/node", False),
    ("dollars_per_flops", "$/FLOPS", True),
    ("watts_per_flops", "W/FLOPS", True),
    ("flops_per_rack_unit", "FLOPS/rack-U", False),
]


def compute_curves():
    """All five curves for all three scenarios."""
    data = {}
    for scenario in SCENARIOS:
        roadmap = get_scenario(scenario)
        data[scenario] = {
            quantity: technology_curve(roadmap, quantity, YEARS)
            for quantity, _label, _falling in CURVES
        }
    return data


def test_e01_tech_curves(benchmark, show):
    data = benchmark(compute_curves)

    report = ExperimentReport(
        "E1 / Fig. 1", "Technology curves of future commodity clusters",
        "performance, capacity, power, size, and cost all move "
        "exponentially; peak tracks Moore",
    )
    nominal = data["nominal"]
    formats = {label: "{:.3g}" for _q, label, _f in CURVES}
    formats["year"] = "{:.0f}"
    table = Table(["year"] + [label for _q, label, _f in CURVES],
                  formats=formats, title="nominal scenario")
    for index, year in enumerate(YEARS):
        table.add_row([year] + [nominal[q][index] for q, _l, _f in CURVES])
    report.add_table(table)

    peak_series = [
        Series(name, x=list(YEARS),
               y=list(data[name]["node_peak_flops"] / 1e9))
        for name in ("conservative", "nominal", "aggressive")
    ]
    report.add_series(peak_series, x_label="year",
                      title="peak GFLOPS/node by scenario")

    # Shape claims -----------------------------------------------------
    for scenario, curves in data.items():
        for quantity, _label, falling in CURVES:
            values = curves[quantity]
            # Monotone in the claimed direction...
            deltas = np.diff(values)
            assert np.all(deltas < 0) if falling else np.all(deltas > 0), \
                f"{scenario}/{quantity} not monotone"
            # ...and exponential: log-space second differences vanish
            # (piecewise curves get slack for their breakpoint).
            curvature = np.diff(np.log(values), n=2)
            assert np.abs(curvature).max() < 0.5, \
                f"{scenario}/{quantity} not near-exponential"

    # Nominal peak doubles every ~18 months => 2010/2003 ratio ~ 2^(7/1.5).
    growth = nominal["node_peak_flops"][-1] / nominal["node_peak_flops"][0]
    assert 2 ** (7 / 1.5) * 0.8 < growth < 2 ** (7 / 1.5) * 1.2
    report.add_note(f"nominal peak grows {growth:.0f}x over 2003-2010 "
                    "(18-month doubling); $/FLOPS and W/FLOPS fall the "
                    "whole decade — the keynote's five curves hold shape")
    show(report)
