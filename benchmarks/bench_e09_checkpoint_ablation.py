"""E9 / Table 4 — checkpoint strategy ablation.

Keynote claim (instantiated): the *quality* of the recovery software
matters — naive strategies leave large fractions of the machine on the
floor that smarter ones recover.

Regenerates: useful-work fraction of a 24 h job at 1k/10k/100k nodes
under five strategies: no checkpointing, fixed hourly, fixed
every-10-minutes, Young-optimal, and Daly-optimal — all on the exact
expected-runtime model.  Shape assertions: optimal beats both fixed
strategies at every scale, the best fixed interval flips with scale
(hourly wins at 1k, 10-minute wins at 100k), and "none" is hopeless at
scale.
"""

import math

from repro.analysis import ExperimentReport, Table
from repro.fault import (
    CheckpointParams,
    daly_interval,
    expected_runtime,
    young_interval,
)
from repro.fault.models import system_mtbf

NODE_MTBF = 3 * 365.25 * 86400.0
CHECKPOINT = 300.0
RESTART = 600.0
WORK = 24 * 3600.0
SCALES = [1_000, 10_000, 100_000]

STRATEGIES = ["none", "hourly", "10min", "young", "daly"]


def efficiency_of(params: CheckpointParams, interval: float) -> float:
    return WORK / expected_runtime(params, WORK, interval)


def compute_ablation():
    rows = {}
    for nodes in SCALES:
        mtbf = system_mtbf(NODE_MTBF, nodes)
        params = CheckpointParams(CHECKPOINT, RESTART, mtbf)
        none_makespan = (mtbf + RESTART) * math.expm1(WORK / mtbf)
        rows[nodes] = {
            "none": WORK / none_makespan,
            "hourly": efficiency_of(params, 3600.0),
            "10min": efficiency_of(params, 600.0),
            "young": efficiency_of(params, young_interval(params)),
            "daly": efficiency_of(params, daly_interval(params)),
        }
    return rows


def test_e09_checkpoint_ablation(benchmark, show):
    rows = benchmark(compute_ablation)

    report = ExperimentReport(
        "E9 / Tab. 4", "Useful-work fraction by checkpoint strategy",
        "recovery software quality is worth tens of percent of the "
        "machine at scale",
    )
    table = Table(["nodes"] + STRATEGIES,
                  formats={s: "{:.3f}" for s in STRATEGIES})
    for nodes in SCALES:
        table.add_row([nodes] + [rows[nodes][s] for s in STRATEGIES])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    for nodes in SCALES:
        r = rows[nodes]
        # The optimal strategies beat every fixed one, Daly >= Young.
        assert r["daly"] >= r["young"] - 1e-12
        assert r["daly"] >= max(r["hourly"], r["10min"]) - 1e-9
        # Checkpointing always beats not checkpointing at these scales.
        assert r["none"] < r["daly"]
    # The right fixed interval flips with scale: hourly is fine at 1k
    # nodes, deadly at 100k; ten-minute checkpointing wastes overhead at
    # 1k but saves the day at 100k.
    assert rows[1_000]["hourly"] > rows[1_000]["10min"]
    assert rows[100_000]["10min"] > rows[100_000]["hourly"]
    # No-checkpoint is catastrophic at 10k+ (the exp(W/M) wall).
    assert rows[10_000]["none"] < 1e-3
    # Magnitude: at 100k nodes the optimal interval recovers >= 10 points
    # of the whole machine over the hourly site policy (at 10k the hourly
    # policy is still near-optimal, which is itself part of the story).
    assert rows[100_000]["daly"] - rows[100_000]["hourly"] > 0.10
    assert rows[10_000]["daly"] - rows[10_000]["hourly"] < 0.05
    report.add_note("the fixed-interval crossover (hourly wins at 1k, "
                    "10-min at 100k) is why interval selection had to "
                    "move into the system software — no static site "
                    "policy survives the scale explosion")
    show(report)
