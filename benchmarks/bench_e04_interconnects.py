"""E4 / Figure 2 — interconnect microbenchmarks across the generations.

Keynote claim: "anticipated advances in networking including Infiniband
and optical switching" are a defining force.

Regenerates: ping-pong half-round-trip latency vs message size and
effective bandwidth vs message size, for every catalog technology —
measured in the simulator (not from the closed form), so the messaging
stack and fabric are on the measurement path.  Shape assertions: the
latency/bandwidth generation ordering and the n_1/2 startup-cost pattern.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series
from repro.messaging import run_spmd
from repro.network import INTERCONNECTS

SIZES = [0, 64, 1024, 16 * 1024, 256 * 1024, 4 * 1024 * 1024]
REPS = 5

TECHNOLOGIES = ["fast_ethernet", "gigabit_ethernet", "myrinet_2000",
                "infiniband_1x", "infiniband_4x", "infiniband_12x",
                "optical_circuit"]


def pingpong(comm, nbytes, reps):
    payload = np.zeros(nbytes, dtype=np.uint8)
    # Warm-up round establishes optical circuits outside the timing.
    yield from comm.sendrecv(payload, 1 - comm.rank)
    start = comm.sim.now
    for _ in range(reps):
        if comm.rank == 0:
            yield from comm.send(payload, 1, tag=1)
            payload = yield from comm.recv(1, tag=2)
        else:
            payload = yield from comm.recv(0, tag=1)
            yield from comm.send(payload, 0, tag=2)
    return (comm.sim.now - start) / (2 * reps)


def measure_all():
    """half-RTT[technology][size] in seconds."""
    results = {}
    for technology in TECHNOLOGIES:
        per_size = {}
        for nbytes in SIZES:
            outcome = run_spmd(2, pingpong, nbytes, REPS,
                               technology=technology)
            per_size[nbytes] = outcome.results[0]
        results[technology] = per_size
    return results


def test_e04_interconnects(benchmark, show):
    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    report = ExperimentReport(
        "E4 / Fig. 2", "Ping-pong across the interconnect generations",
        "each networking generation (GigE -> Myrinet -> InfiniBand 1x/4x/"
        "12x -> optical) cuts latency and multiplies bandwidth",
    )
    latency_series = [
        Series(tech, x=[float(s) for s in SIZES],
               y=[results[tech][s] * 1e6 for s in SIZES])
        for tech in TECHNOLOGIES
    ]
    report.add_series(latency_series, x_label="bytes",
                      title="half round trip (us)")
    bandwidth_series = [
        Series(tech, x=[float(s) for s in SIZES[1:]],
               y=[s / results[tech][s] / 1e6 for s in SIZES[1:]])
        for tech in TECHNOLOGIES
    ]
    report.add_series(bandwidth_series, x_label="bytes",
                      title="effective bandwidth (MB/s)")

    # Shape claims -----------------------------------------------------
    # Zero-byte latency ordering: ethernet worst, modern fabrics in the
    # single-digit-microsecond class.
    zero = {tech: results[tech][0] for tech in TECHNOLOGIES}
    assert zero["fast_ethernet"] > zero["gigabit_ethernet"] > zero["myrinet_2000"]
    assert zero["infiniband_4x"] < 10e-6
    assert zero["optical_circuit"] == min(zero.values())
    # Large-message bandwidth ordering follows the generation sequence.
    big = SIZES[-1]
    effective = {tech: big / results[tech][big] for tech in TECHNOLOGIES}
    chain = ["fast_ethernet", "gigabit_ethernet", "infiniband_1x",
             "infiniband_4x", "infiniband_12x", "optical_circuit"]
    for slower, faster in zip(chain, chain[1:]):
        assert effective[faster] > effective[slower]
    # Effective bandwidth approaches the advertised asymptote.
    for tech in TECHNOLOGIES:
        asymptote = INTERCONNECTS[tech].loggp.bandwidth
        assert effective[tech] > 0.7 * asymptote
    # IB-4x vs GigE: ~8x bandwidth and >4x latency advantage — the pitch
    # that sold InfiniBand.
    assert effective["infiniband_4x"] / effective["gigabit_ethernet"] > 6
    assert zero["gigabit_ethernet"] / zero["infiniband_4x"] > 4
    report.add_note("generation ordering holds at both ends: ethernet is "
                    "latency-bound (~30-90 us), IB 4x delivers ~8x GigE "
                    "bandwidth, optics top the chart once circuits are up")
    show(report)
