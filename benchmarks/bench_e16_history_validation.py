"""E16 / Table 9 — the roadmap against the public Top500 record.

The strongest external check available for a vision talk: did the decade
actually unfold the way the projections say?  We compare

* the model's fixed-budget HPL Rmax slope and the *record's* #1 slope
  (the record grows faster because budgets grew too — the gap between
  the two slopes is the budget-growth component, which we quantify);
* the model's commodity-petaflops crossing year against Roadrunner;
* the scaled-speedup framing: the serial-fraction the stencil kernel
  exhibits, Amdahl vs Gustafson, showing why petaflops machines are used
  with scaled problems.
"""

import numpy as np

from repro.analysis import ExperimentReport, Table
from repro.analysis.scaling import (
    amdahl_speedup,
    fit_serial_fraction,
    gustafson_speedup,
)
from repro.apps import ComputeCharge, HplModel, run_stencil
from repro.cluster import design_to_budget
from repro.tech import get_scenario
from repro.tech.history import (
    TOP500_NUMBER_ONES,
    first_commodity_petaflops_year,
    historical_slope,
)


def model_slope_and_crossing():
    """Fixed-budget ($100M) model Rmax slope and petaflops crossing."""
    roadmap = get_scenario("nominal")
    model = HplModel()
    years = np.arange(2003.0, 2012.0, 1.0)
    rmax = []
    for year in years:
        spec = design_to_budget(100e6, roadmap, year, "conventional")
        rmax.append(model.estimate(spec).rmax_flops)
    rmax = np.array(rmax)
    slope = float(np.exp(np.polyfit(years, np.log(rmax), 1)[0]))
    crossing = float(np.interp(np.log(1e15), np.log(rmax), years))
    return slope, crossing


def stencil_speedup_curve():
    ranks = [1, 2, 4, 8, 16, 32]
    charge = ComputeCharge(effective_flops=3e9)
    times = {p: run_stencil(p, n=1024, iterations=3, charge=charge,
                            technology="infiniband_4x").elapsed
             for p in ranks}
    speedups = [times[1] / times[p] for p in ranks]
    return ranks, speedups


def compute_validation():
    model_slope, model_crossing = model_slope_and_crossing()
    record_slope = historical_slope()
    commodity_slope = historical_slope(2004.0, 2011.0)
    ranks, speedups = stencil_speedup_curve()
    serial_fraction, rms = fit_serial_fraction(ranks, speedups)
    return {
        "model_slope": model_slope,
        "model_crossing": model_crossing,
        "record_slope": record_slope,
        "commodity_slope": commodity_slope,
        "record_crossing": first_commodity_petaflops_year(),
        "ranks": ranks,
        "speedups": speedups,
        "serial_fraction": serial_fraction,
        "fit_rms": rms,
    }


def test_e16_history_validation(benchmark, show):
    data = benchmark.pedantic(compute_validation, rounds=1, iterations=1)

    report = ExperimentReport(
        "E16 / Tab. 9", "The projections vs what actually happened",
        "the decade unfolded on the keynote's trajectory: exponential "
        "record growth, commodity petaflops before 2010",
    )
    table = Table(["quantity", "model", "record"],
                  formats={"model": "{:.2f}", "record": "{:.2f}"})
    table.add_row(["Rmax slope (x/year)", data["model_slope"],
                   data["record_slope"]])
    table.add_row(["commodity petaflops year", data["model_crossing"],
                   data["record_crossing"]])
    report.add_table(table)

    top = Table(["year", "system", "Rmax (TF)", "commodity"],
                formats={"year": "{:.1f}", "Rmax (TF)": "{:.0f}"},
                title="public record (#1 systems)")
    for entry in TOP500_NUMBER_ONES:
        top.add_row([entry.year, entry.name, entry.rmax_tflops,
                     "yes" if entry.commodity else "no"])
    report.add_table(top)

    laws = Table(["ranks", "measured", "Amdahl fit", "Gustafson"],
                 formats={"measured": "{:.1f}", "Amdahl fit": "{:.1f}",
                          "Gustafson": "{:.1f}"},
                 title=(f"stencil speedup; fitted serial fraction "
                        f"f={data['serial_fraction']:.4f}"))
    f = data["serial_fraction"]
    for p, s in zip(data["ranks"], data["speedups"]):
        laws.add_row([p, s, amdahl_speedup(f, p), gustafson_speedup(f, p)])
    report.add_table(laws)

    # Shape claims -----------------------------------------------------
    # The record's slope exceeds the fixed-budget model slope (budgets
    # grew), but by less than 2x — the Moore component dominates.
    assert data["record_slope"] > data["model_slope"]
    assert data["record_slope"] < 2.0 * data["model_slope"]
    assert 1.6 < data["record_slope"] < 2.2  # the famous ~1.9x/year
    # Both crossings land 2006-2009: the keynote's decade.
    assert 2006.0 < data["model_crossing"] < 2009.5
    assert 2006.0 < data["record_crossing"] < 2009.5
    assert abs(data["model_crossing"] - data["record_crossing"]) < 2.0
    # The measured stencil curve is Amdahl-like with a tiny serial
    # fraction, and Gustafson's scaled reading of the same fraction
    # stays near-linear — the scaled-problem argument for petaflops.
    assert data["serial_fraction"] < 0.05
    assert data["fit_rms"] < 2.5
    assert gustafson_speedup(data["serial_fraction"], 32) > 30.0
    report.add_note(f"model {data['model_slope']:.2f}x/yr at fixed budget "
                    f"vs record {data['record_slope']:.2f}x/yr (budget "
                    "growth explains the gap); model petaflops "
                    f"{data['model_crossing']:.1f} vs Roadrunner "
                    f"{data['record_crossing']:.1f} — the keynote's decade "
                    "happened roughly on schedule")
    show(report)
