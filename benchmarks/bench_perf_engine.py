"""Performance-regression benches for the library's own hot paths.

Not experiment reproductions: these guard the *simulator's* throughput,
so that model-fidelity work never quietly makes the experiment suite
unrunnable.

The engine-kernel benches run **paired**: once on the legacy binary-heap
event queue and once on the calendar-queue ("wheel") kernel that is now
the default, with the shared timeout pool cleared between modes so
neither run inherits the other's free objects.  A gate test at the end
of the module computes ``speedup_vs_heap`` from the min-of-rounds
timings and fails CI when the wheel underperforms:

* ``timeout_storm`` — drain-only throughput over a 200k-event
  same-instant batch (the tie-heavy shape the calendar queue is built
  for; creation happens in untimed setup so the measurement isolates
  queue discipline): must be **>= 10x** the heap.
* ``timeout_churn`` — create+run waves (allocation, scheduling and
  drain together).  The heap baseline shares the event-layer wins of
  this kernel generation (lazy callback lists, interned timeout names),
  so the wheel's edge here is the queue + pooling only: **>= 3x**.
* ``process_switching`` — generator context switches; dominated by
  ``generator.send`` which no queue can accelerate: **>= 1.3x**.
* every paired bench — the wheel must never be slower than the heap
  beyond noise (**>= 0.95x**).

Every run leaves a ``BENCH_perf_engine.json`` artifact at the repo root
(per-test stats, plus the ``speedup_vs_heap`` section with event counts
and wheel events/second) so CI runs can be archived and compared across
commits without scraping terminal output.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.messaging import SUM, run_spmd
from repro.obs import NULL_SPAN, NullObservability
from repro.scheduler import BatchSimulator, WorkloadGenerator, WorkloadParams, get_policy
from repro.sim import RandomStreams, Simulator, Store
from repro.sim.event import _TIMEOUT_POOL
from repro.xp import write_bench_artifact

#: Collected per-test numbers, written to BENCH_perf_engine.json by the
#: module-scoped fixture below once the last bench in this file finishes.
_ARTIFACT_RESULTS = {}

#: Min-of-rounds seconds per (bench, queue) pair, for the speedup gates.
_SPEEDUP_RAW = {}

#: The speedup_vs_heap artifact section, filled by the gate test.
_SPEEDUP_SECTION = {}

_ARTIFACT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_perf_engine.json"

_STORM_EVENTS = 200_000
_CHURN_WAVES = 10
_CHURN_WAVE_EVENTS = 20_000
_SWITCH_EVENTS = 10_100


@pytest.fixture(autouse=True)
def _collect_benchmark_stats(request):
    """Harvest pytest-benchmark stats for the run artifact."""
    yield
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(bench, "stats", None)
    inner = getattr(stats, "stats", stats)
    if inner is None:
        return
    entry = {}
    for field in ("mean", "min", "max", "stddev", "rounds"):
        value = getattr(inner, field, None)
        if value is not None:
            entry[field] = value
    if entry:
        _ARTIFACT_RESULTS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _write_artifact_fixture():
    """Write the BENCH_*.json artifact after the module's benches ran.

    The write is atomic (temp + rename, via
    :func:`repro.xp.artifacts.write_bench_artifact`) and *refused* when
    either expected section is missing — a ``-k``-filtered or partially
    failed run must not replace a previous complete artifact with a
    partial one that CI's validation step would then parse.
    """
    yield
    payload = {
        "benchmark_module": "bench_perf_engine",
        "units": "seconds",
        "results": dict(sorted(_ARTIFACT_RESULTS.items())),
        "speedup_vs_heap": dict(sorted(_SPEEDUP_SECTION.items())),
    }
    try:
        write_bench_artifact(_ARTIFACT_PATH, payload,
                             required=("results", "speedup_vs_heap"))
    except ValueError:
        pass  # partial run (e.g. -k subset): keep the old artifact


@pytest.fixture(params=["heap", "wheel"])
def queue(request):
    """Engine queue kind for the paired kernel benches.

    Clears the shared timeout pool on entry so the heap run is not
    taxed (GC-wise) by 200k pooled objects a previous wheel run left
    behind, and the wheel run cannot inherit a pre-warmed pool.
    """
    _TIMEOUT_POOL.clear()
    return request.param


def _record_pair(bench, queue_kind, benchmark):
    """Stash this run's min-of-rounds seconds for the gate test."""
    stats = getattr(benchmark.stats, "stats", benchmark.stats)
    _SPEEDUP_RAW[(bench, queue_kind)] = stats.min


def test_perf_timeout_storm(benchmark, queue):
    """Drain-only event throughput: one 200k-event same-instant batch.

    Creation happens in (untimed) setup; the measured region is purely
    the engine popping and delivering — the discipline the calendar
    queue replaces, hence the 10x gate computed by the gate test.
    """
    def setup():
        _TIMEOUT_POOL.clear()
        sim = Simulator(queue=queue)
        for _ in range(_STORM_EVENTS):
            sim.timeout(1.0)
        return (sim,), {}

    def drain(sim):
        sim.run()
        return sim.events_executed

    events = benchmark.pedantic(drain, setup=setup, rounds=5)
    assert events == _STORM_EVENTS
    _record_pair("timeout_storm", queue, benchmark)


def test_perf_timeout_churn(benchmark, queue):
    """Create+run waves: allocation, scheduling and drain together."""
    def setup():
        _TIMEOUT_POOL.clear()
        return (), {}

    def waves():
        sim = Simulator(queue=queue)
        for _wave in range(_CHURN_WAVES):
            for i in range(_CHURN_WAVE_EVENTS):
                sim.timeout(float(i % 97) * 1e-3)
            sim.run(until=sim.now + 1.0)
        return sim.events_executed

    events = benchmark.pedantic(waves, setup=setup, rounds=5)
    assert events == _CHURN_WAVES * _CHURN_WAVE_EVENTS
    _record_pair("timeout_churn", queue, benchmark)


def test_perf_process_switching(benchmark, queue):
    """Generator-process context switches: 100 processes x 100 yields."""
    def switchy():
        sim = Simulator(queue=queue)

        def worker(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.process(worker(sim))
        sim.run()
        return sim.events_executed

    events = benchmark(switchy)
    assert events >= 10_000
    _record_pair("process_switching", queue, benchmark)


def test_perf_store_handoff(benchmark, queue):
    """Producer/consumer item handoffs through a Store."""
    def handoff():
        sim = Simulator(queue=queue)
        store = Store(sim)
        count = 5_000

        def producer(sim, store):
            for i in range(count):
                yield store.put(i)

        def consumer(sim, store):
            for _ in range(count):
                yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        return count

    benchmark(handoff)
    _record_pair("store_handoff", queue, benchmark)


#: (bench, minimum wheel/heap ratio, delivered events) for the gates.
#: Rationale for the tiers is in the module docstring and DESIGN.md.
_SPEEDUP_GATES = (
    ("timeout_storm", 10.0, _STORM_EVENTS),
    ("timeout_churn", 3.0, _CHURN_WAVES * _CHURN_WAVE_EVENTS),
    ("process_switching", 1.3, _SWITCH_EVENTS),
    ("store_handoff", 0.95, None),
)


def test_perf_speedup_vs_heap_gates():
    """The wheel kernel must beat the heap by each bench's ratio gate.

    Runs after the paired benches (pytest executes this module in
    definition order) and fails CI when the calendar queue regresses —
    including the blanket rule that the wheel is never slower than the
    heap on *any* paired bench.
    """
    failures = []
    for bench, gate, events in _SPEEDUP_GATES:
        heap = _SPEEDUP_RAW.get((bench, "heap"))
        wheel = _SPEEDUP_RAW.get((bench, "wheel"))
        if heap is None or wheel is None:
            pytest.fail(
                f"{bench}: paired timings missing (ran with a -k filter "
                "that deselected the heap or wheel run?)")
        speedup = heap / wheel
        entry = {
            "heap_seconds": heap,
            "wheel_seconds": wheel,
            "speedup": speedup,
            "min_required": gate,
        }
        if events is not None:
            entry["events"] = events
            entry["wheel_events_per_second"] = events / wheel
            entry["heap_events_per_second"] = events / heap
        _SPEEDUP_SECTION[bench] = entry
        floor = min(gate, 0.95)
        if speedup < gate:
            failures.append(
                f"{bench}: wheel {speedup:.2f}x heap, gate {gate:.2f}x "
                f"(heap {heap * 1e3:.2f} ms, wheel {wheel * 1e3:.2f} ms)")
        elif speedup < floor:  # pragma: no cover - subsumed by the gate
            failures.append(f"{bench}: wheel slower than heap ({speedup:.2f}x)")
    assert not failures, "; ".join(failures)


def _pingpong_body(comm):
    """500 round trips through comm + fabric + mailboxes."""
    for _ in range(500):
        if comm.rank == 0:
            yield from comm.send(b"x", 1, tag=1)
            yield from comm.recv(1, tag=2)
        else:
            yield from comm.recv(0, tag=1)
            yield from comm.send(b"x", 0, tag=2)
    return None


def test_perf_messaging_pingpong(benchmark):
    """Full stack: 500 round trips through comm + fabric + mailboxes."""
    def pingpong():
        return run_spmd(2, _pingpong_body, technology="infiniband_4x")

    result = benchmark(pingpong)
    assert result.transfer_count == 1_000


def test_perf_allreduce_32(benchmark):
    """Collective machinery: 10 ring allreduces at 32 ranks."""
    def body(comm):
        for _ in range(10):
            yield from comm.allreduce(np.zeros(256), SUM, algorithm="ring")
        return None

    def collectives():
        return run_spmd(32, body, technology="infiniband_4x")

    benchmark(collectives)


def test_perf_analytic_allreduce_1024(benchmark):
    """Analytic fast path: 10 closed-form allreduces at 1024 ranks.

    The discrete equivalent is ~10 rounds x 1024 ranks of transfers per
    collective; the analytic path does it in three events per rank, so
    this runs at a scale the discrete algorithms cannot touch in a perf
    bench.
    """
    def body(comm):
        for _ in range(10):
            yield from comm.allreduce(np.zeros(256), SUM,
                                      algorithm="analytic")
        return None

    def collectives():
        return run_spmd(1024, body, technology="infiniband_4x")

    benchmark.pedantic(collectives, rounds=3)


class _CountingNull(NullObservability):
    """Null observability that counts every disabled-path touch."""

    def __init__(self):
        super().__init__()
        self.guard_reads = 0
        self.span_calls = 0

    @property
    def enabled(self):
        self.guard_reads += 1
        return False

    def span(self, name, track=None, **attrs):
        self.span_calls += 1
        return NULL_SPAN


def _microbench(body, reps=20_000, rounds=5):
    """Best-of-rounds seconds per call of ``body(index)``."""
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        for index in range(reps):
            body(index)
        best = min(best, time.perf_counter() - tick)
    return best / reps


def _site_cost(body):
    """Seconds of *extra* work per call of ``body`` over a no-op.

    Real instrumentation sites run the guard/span inline; the
    microbench wraps each in a function, so subtract the call+loop
    overhead of an empty body to price only the observability work.
    """
    def noop(index):
        pass

    return max(0.0, _microbench(body) - _microbench(noop))


def test_perf_null_obs_overhead_budget():
    """Disabled observability costs <=3% of the pingpong workload.

    Every instrumentation site leaves one of three things on the
    disabled path: an ``obs.enabled`` guard read (pricing includes the
    null-span ``set``/``with`` the guarded call sites still execute), a
    no-op ``span()`` call, or an engine flag check.  Count each through
    the full messaging stack, price one of each on the real null
    objects, and check that the sum fits the 3% budget.  This is what
    fails if someone puts real work (attr-dict building, string
    formatting) ahead of a guard.
    """
    # Wall time of the workload itself, best of three.
    workload = min(_timed_run() for _ in range(3))

    counter = _CountingNull()
    result = run_spmd(2, _pingpong_body, technology="infiniband_4x",
                      obs=counter)
    assert result.transfer_count == 1_000
    # The plain-mode fast loop makes zero per-event observability
    # checks; what remains is the `_plain` test in `Simulator.timeout`
    # and the queue-kind branch in `_schedule_event`.  Price a
    # conservative ceiling of three flag checks per transfer plus one
    # per process so this budget also covers the instrumented loop.
    engine_checks = 3 * 1_000 + 2

    obs = NullObservability()

    def guarded_site(index):
        # A comm-style site: guard, then with/set on the shared NullSpan.
        span = NULL_SPAN if not obs.enabled else None
        with span.set(dest=index, tag=1):
            pass

    def span_site(index):
        # A fabric-style site: unconditional span() with attrs.
        with obs.span("bench.touch", src=0, dst=1, nbytes=index):
            pass

    flag = False

    def engine_check(index):
        if flag:
            raise AssertionError

    overhead = (counter.guard_reads * _site_cost(guarded_site)
                + counter.span_calls * _site_cost(span_site)
                + engine_checks * _site_cost(engine_check))
    _ARTIFACT_RESULTS["test_perf_null_obs_overhead_budget"] = {
        "workload_seconds": workload,
        "disabled_path_overhead_seconds": overhead,
        "overhead_fraction": overhead / workload if workload else 0.0,
    }
    assert overhead <= 0.03 * workload, (
        f"disabled-observability budget blown: {counter.guard_reads} "
        f"guards + {counter.span_calls} null spans + {engine_checks} "
        f"flag checks = {overhead * 1e3:.2f} ms vs 3% of "
        f"{workload * 1e3:.2f} ms workload"
    )


def _timed_run():
    tick = time.perf_counter()
    run_spmd(2, _pingpong_body, technology="infiniband_4x")
    return time.perf_counter() - tick


def test_perf_batch_scheduler(benchmark):
    """Scheduler loop: 2000 jobs under EASY backfilling."""
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=128, offered_load=0.8),
        RandomStreams(seed=1))
    jobs = generator.generate(2_000)

    def schedule():
        return BatchSimulator(128, get_policy("easy")).run(jobs)

    result = benchmark(schedule)
    assert len(result.records) == 2_000
