"""Performance-regression benches for the library's own hot paths.

Not experiment reproductions: these guard the *simulator's* throughput,
so that model-fidelity work never quietly makes the experiment suite
unrunnable.  Baselines on the development machine (for orientation, not
assertion): ~0.5 M timeout events/s raw, ~50 k events/s through the full
messaging stack, ~10 k scheduled jobs/s.

A cProfile pass (see DESIGN.md, performance note) shows a flat profile —
engine step/deliver/resume machinery dominates with no single hotspot —
so these benches measure end-to-end throughput rather than any one
function.
"""

import numpy as np

from repro.messaging import SUM, run_spmd
from repro.scheduler import BatchSimulator, WorkloadGenerator, WorkloadParams, get_policy
from repro.sim import RandomStreams, Simulator, Store


def test_perf_timeout_storm(benchmark):
    """Raw event-queue throughput: 20k timeouts through the heap."""
    def storm():
        sim = Simulator()
        for i in range(20_000):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.events_executed

    events = benchmark(storm)
    assert events == 20_000


def test_perf_process_switching(benchmark):
    """Generator-process context switches: 100 processes x 100 yields."""
    def switchy():
        sim = Simulator()

        def worker(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.process(worker(sim))
        sim.run()
        return sim.events_executed

    events = benchmark(switchy)
    assert events >= 10_000


def test_perf_store_handoff(benchmark):
    """Producer/consumer item handoffs through a Store."""
    def handoff():
        sim = Simulator()
        store = Store(sim)
        count = 5_000

        def producer(sim, store):
            for i in range(count):
                yield store.put(i)

        def consumer(sim, store):
            for _ in range(count):
                yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        return count

    benchmark(handoff)


def test_perf_messaging_pingpong(benchmark):
    """Full stack: 500 round trips through comm + fabric + mailboxes."""
    def body(comm):
        for _ in range(500):
            if comm.rank == 0:
                yield from comm.send(b"x", 1, tag=1)
                yield from comm.recv(1, tag=2)
            else:
                yield from comm.recv(0, tag=1)
                yield from comm.send(b"x", 0, tag=2)
        return None

    def pingpong():
        return run_spmd(2, body, technology="infiniband_4x")

    result = benchmark(pingpong)
    assert result.transfer_count == 1_000


def test_perf_allreduce_32(benchmark):
    """Collective machinery: 10 ring allreduces at 32 ranks."""
    def body(comm):
        for _ in range(10):
            yield from comm.allreduce(np.zeros(256), SUM, algorithm="ring")
        return None

    def collectives():
        return run_spmd(32, body, technology="infiniband_4x")

    benchmark(collectives)


def test_perf_batch_scheduler(benchmark):
    """Scheduler loop: 2000 jobs under EASY backfilling."""
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=128, offered_load=0.8),
        RandomStreams(seed=1))
    jobs = generator.generate(2_000)

    def schedule():
        return BatchSimulator(128, get_policy("easy")).run(jobs)

    result = benchmark(schedule)
    assert len(result.records) == 2_000
