"""Performance-regression benches for the library's own hot paths.

Not experiment reproductions: these guard the *simulator's* throughput,
so that model-fidelity work never quietly makes the experiment suite
unrunnable.  Baselines on the development machine (for orientation, not
assertion): ~0.5 M timeout events/s raw, ~50 k events/s through the full
messaging stack, ~10 k scheduled jobs/s.

A cProfile pass (see DESIGN.md, performance note) shows a flat profile —
engine step/deliver/resume machinery dominates with no single hotspot —
so these benches measure end-to-end throughput rather than any one
function.

Every run leaves a ``BENCH_perf_engine.json`` artifact at the repo root
(per-test mean/min seconds and rounds) so CI runs can be archived and
compared across commits without scraping terminal output.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.messaging import SUM, run_spmd
from repro.obs import NULL_SPAN, NullObservability
from repro.scheduler import BatchSimulator, WorkloadGenerator, WorkloadParams, get_policy
from repro.sim import RandomStreams, Simulator, Store

#: Collected per-test numbers, written to BENCH_perf_engine.json by the
#: module-scoped fixture below once the last bench in this file finishes.
_ARTIFACT_RESULTS = {}

_ARTIFACT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_perf_engine.json"


@pytest.fixture(autouse=True)
def _collect_benchmark_stats(request):
    """Harvest pytest-benchmark stats for the run artifact."""
    yield
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(bench, "stats", None)
    inner = getattr(stats, "stats", stats)
    if inner is None:
        return
    entry = {}
    for field in ("mean", "min", "max", "stddev", "rounds"):
        value = getattr(inner, field, None)
        if value is not None:
            entry[field] = value
    if entry:
        _ARTIFACT_RESULTS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _write_bench_artifact():
    """Write the BENCH_*.json artifact after the module's benches ran."""
    yield
    if not _ARTIFACT_RESULTS:
        return
    payload = {
        "benchmark_module": "bench_perf_engine",
        "units": "seconds",
        "results": dict(sorted(_ARTIFACT_RESULTS.items())),
    }
    _ARTIFACT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_perf_timeout_storm(benchmark):
    """Raw event-queue throughput: 20k timeouts through the heap."""
    def storm():
        sim = Simulator()
        for i in range(20_000):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.events_executed

    events = benchmark(storm)
    assert events == 20_000


def test_perf_process_switching(benchmark):
    """Generator-process context switches: 100 processes x 100 yields."""
    def switchy():
        sim = Simulator()

        def worker(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.process(worker(sim))
        sim.run()
        return sim.events_executed

    events = benchmark(switchy)
    assert events >= 10_000


def test_perf_store_handoff(benchmark):
    """Producer/consumer item handoffs through a Store."""
    def handoff():
        sim = Simulator()
        store = Store(sim)
        count = 5_000

        def producer(sim, store):
            for i in range(count):
                yield store.put(i)

        def consumer(sim, store):
            for _ in range(count):
                yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        return count

    benchmark(handoff)


def _pingpong_body(comm):
    """500 round trips through comm + fabric + mailboxes."""
    for _ in range(500):
        if comm.rank == 0:
            yield from comm.send(b"x", 1, tag=1)
            yield from comm.recv(1, tag=2)
        else:
            yield from comm.recv(0, tag=1)
            yield from comm.send(b"x", 0, tag=2)
    return None


def test_perf_messaging_pingpong(benchmark):
    """Full stack: 500 round trips through comm + fabric + mailboxes."""
    def pingpong():
        return run_spmd(2, _pingpong_body, technology="infiniband_4x")

    result = benchmark(pingpong)
    assert result.transfer_count == 1_000


def test_perf_allreduce_32(benchmark):
    """Collective machinery: 10 ring allreduces at 32 ranks."""
    def body(comm):
        for _ in range(10):
            yield from comm.allreduce(np.zeros(256), SUM, algorithm="ring")
        return None

    def collectives():
        return run_spmd(32, body, technology="infiniband_4x")

    benchmark(collectives)


class _CountingNull(NullObservability):
    """Null observability that counts every disabled-path touch."""

    def __init__(self):
        super().__init__()
        self.guard_reads = 0
        self.span_calls = 0

    @property
    def enabled(self):
        self.guard_reads += 1
        return False

    def span(self, name, track=None, **attrs):
        self.span_calls += 1
        return NULL_SPAN


def _microbench(body, reps=20_000, rounds=5):
    """Best-of-rounds seconds per call of ``body(index)``."""
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        for index in range(reps):
            body(index)
        best = min(best, time.perf_counter() - tick)
    return best / reps


def _site_cost(body):
    """Seconds of *extra* work per call of ``body`` over a no-op.

    Real instrumentation sites run the guard/span inline; the
    microbench wraps each in a function, so subtract the call+loop
    overhead of an empty body to price only the observability work.
    """
    def noop(index):
        pass

    return max(0.0, _microbench(body) - _microbench(noop))


def test_perf_null_obs_overhead_budget():
    """Disabled observability costs <=3% of the pingpong workload.

    Every instrumentation site leaves one of three things on the
    disabled path: an ``obs.enabled`` guard read (pricing includes the
    null-span ``set``/``with`` the guarded call sites still execute), a
    no-op ``span()`` call, or the engine's cached-flag check.  Count
    each through the full messaging stack, price one of each on the
    real null objects, and check that the sum fits the 3% budget.  This
    is what fails if someone puts real work (attr-dict building, string
    formatting) ahead of a guard.
    """
    # Wall time of the workload itself, best of three.
    workload = min(_timed_run() for _ in range(3))

    counter = _CountingNull()
    result = run_spmd(2, _pingpong_body, technology="infiniband_4x",
                      obs=counter)
    assert result.transfer_count == 1_000
    # Three flag checks per event (two obs + the DetSan `is not None`
    # guard in Simulator.step), plus one per process.
    engine_checks = 3 * 1_000 + 2

    obs = NullObservability()

    def guarded_site(index):
        # A comm-style site: guard, then with/set on the shared NullSpan.
        span = NULL_SPAN if not obs.enabled else None
        with span.set(dest=index, tag=1):
            pass

    def span_site(index):
        # A fabric-style site: unconditional span() with attrs.
        with obs.span("bench.touch", src=0, dst=1, nbytes=index):
            pass

    flag = False

    def engine_check(index):
        if flag:
            raise AssertionError

    overhead = (counter.guard_reads * _site_cost(guarded_site)
                + counter.span_calls * _site_cost(span_site)
                + engine_checks * _site_cost(engine_check))
    _ARTIFACT_RESULTS["test_perf_null_obs_overhead_budget"] = {
        "workload_seconds": workload,
        "disabled_path_overhead_seconds": overhead,
        "overhead_fraction": overhead / workload if workload else 0.0,
    }
    assert overhead <= 0.03 * workload, (
        f"disabled-observability budget blown: {counter.guard_reads} "
        f"guards + {counter.span_calls} null spans + {engine_checks} "
        f"flag checks = {overhead * 1e3:.2f} ms vs 3% of "
        f"{workload * 1e3:.2f} ms workload"
    )


def _timed_run():
    tick = time.perf_counter()
    run_spmd(2, _pingpong_body, technology="infiniband_4x")
    return time.perf_counter() - tick


def test_perf_batch_scheduler(benchmark):
    """Scheduler loop: 2000 jobs under EASY backfilling."""
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=128, offered_load=0.8),
        RandomStreams(seed=1))
    jobs = generator.generate(2_000)

    def schedule():
        return BatchSimulator(128, get_policy("easy")).run(jobs)

    result = benchmark(schedule)
    assert len(result.records) == 2_000
