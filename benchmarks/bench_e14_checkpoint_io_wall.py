"""E14 / Table 7 — the checkpoint-bandwidth wall.

Keynote claim (the storage face of the fault-recovery claim): storage
capacity rides Moore's law, so the bytes a checkpoint must move grow with
the machine — fault recovery is an *I/O scaling* problem, not just an
interval-selection problem.

Regenerates: derived checkpoint time and Daly efficiency vs node count
(256 → 32k nodes, 2 GiB/node, IB-4x links) under two I/O provisioning
policies — a fixed 16-server PVFS vs servers scaled at 1 per 16 compute
nodes — plus a simulated (fabric + disk queue) validation point.  Shape
assertions: the fixed system's checkpoint time grows ~linearly and its
efficiency collapses; the scaled system holds checkpoint time ~flat and
keeps most of the machine; simulation stays within a small factor of the
analytic bound.
"""

from repro.analysis import ExperimentReport, Series, Table
from repro.fault import daly_interval, efficiency
from repro.io import (
    DiskModel,
    checkpoint_write_time,
    derive_checkpoint_params,
    simulate_checkpoint_write,
)
from repro.network import get_interconnect

MEMORY_PER_NODE = 2 * 2**30
NODE_MTBF = 3 * 365.25 * 86400.0
SCALES = [256, 1_024, 4_096, 16_384, 32_768]
FIXED_SERVERS = 16

#: Fat I/O server: a 4-spindle RAID0 of commodity disks (~160 MB/s) —
#: what "an I/O node" meant once PVFS-class systems got serious.
RAID_SERVER = DiskModel(transfer_bytes_per_second=160e6,
                        capacity_bytes=320e9)


def provisioned(nodes):
    """Scale I/O nodes with the machine: 1 fat server per 16 compute
    nodes (the provisioning ratio petaflops-era sites converged on)."""
    return max(FIXED_SERVERS, nodes // 16)


def compute_wall():
    technology = get_interconnect("infiniband_4x")
    link = technology.loggp.bandwidth
    rows = {}
    for nodes in SCALES:
        row = {}
        for label, servers in (("fixed", FIXED_SERVERS),
                               ("scaled", provisioned(nodes))):
            params = derive_checkpoint_params(
                MEMORY_PER_NODE, nodes, servers, link, NODE_MTBF,
                disk=RAID_SERVER)
            tau = daly_interval(params)
            row[label] = {
                "servers": servers,
                "delta": params.checkpoint_seconds,
                "efficiency": efficiency(params, tau),
            }
        rows[nodes] = row

    # One simulated validation point (scaled-down dump keeps the event
    # count civil; write time scales linearly in dump size, checked by
    # comparing against the analytic bound for the same dump).
    sim_nodes, sim_servers, sim_dump = 64, 8, 1 << 20
    simulated = simulate_checkpoint_write(sim_nodes, sim_servers, sim_dump,
                                          technology)
    analytic = checkpoint_write_time(sim_dump, sim_nodes, sim_servers, link)
    return rows, (simulated, analytic)


def test_e14_checkpoint_io_wall(benchmark, show):
    rows, (simulated, analytic) = benchmark.pedantic(compute_wall, rounds=1,
                                                     iterations=1)

    report = ExperimentReport(
        "E14 / Tab. 7", "Checkpoint I/O provisioning vs machine scale",
        "memory (and thus checkpoint bytes) grows with the machine; "
        "unless the I/O system scales too, fault recovery hits a "
        "bandwidth wall",
    )
    table = Table(["nodes", "fixed srv", "fixed ckpt (s)", "fixed eff",
                   "scaled srv", "scaled ckpt (s)", "scaled eff"],
                  formats={"fixed ckpt (s)": "{:.0f}",
                           "scaled ckpt (s)": "{:.0f}",
                           "fixed eff": "{:.3f}", "scaled eff": "{:.3f}"})
    for nodes in SCALES:
        row = rows[nodes]
        table.add_row([nodes,
                       row["fixed"]["servers"], row["fixed"]["delta"],
                       row["fixed"]["efficiency"],
                       row["scaled"]["servers"], row["scaled"]["delta"],
                       row["scaled"]["efficiency"]])
    report.add_table(table)
    report.add_series(
        [Series(label, x=[float(n) for n in SCALES],
                y=[rows[n][label]["efficiency"] for n in SCALES])
         for label in ("fixed", "scaled")],
        x_label="nodes", title="Daly efficiency with derived checkpoint time")

    # Shape claims -----------------------------------------------------
    fixed_delta = [rows[n]["fixed"]["delta"] for n in SCALES]
    scaled_delta = [rows[n]["scaled"]["delta"] for n in SCALES]
    # Fixed I/O: checkpoint time grows linearly with the machine.
    assert fixed_delta[-1] / fixed_delta[0] == (
        SCALES[-1] / SCALES[0])
    # Scaled I/O: once past the fixed floor, checkpoint time is flat.
    assert max(scaled_delta[2:]) / min(scaled_delta[2:]) < 1.05
    # Efficiency: fixed collapses below 30 %, scaled keeps > 60 %.
    fixed_eff = [rows[n]["fixed"]["efficiency"] for n in SCALES]
    scaled_eff = [rows[n]["scaled"]["efficiency"] for n in SCALES]
    assert fixed_eff == sorted(fixed_eff, reverse=True)
    assert fixed_eff[-1] < 0.30
    assert scaled_eff[-1] > 0.60
    assert all(s >= f for s, f in zip(scaled_eff, fixed_eff))
    # The simulator (with seeks, contention, queues) lands within a
    # small factor above the analytic bandwidth bound.
    assert analytic <= simulated < 4 * analytic
    report.add_note(f"at 32k nodes the fixed PFS spends "
                    f"{rows[32_768]['fixed']['delta']:.0f} s per checkpoint "
                    f"and keeps {fixed_eff[-1]:.0%} of the machine; scaling "
                    "servers 1:64 holds the dump near-constant and keeps "
                    f"{scaled_eff[-1]:.0%} — checkpointing is an I/O "
                    "provisioning problem, as the PVFS line of work argued")
    show(report)
