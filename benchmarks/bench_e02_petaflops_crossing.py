"""E2 / Table 1 — when does a commodity budget buy a petaflops?

Keynote claim: commodity clusters are headed "toward the trans-Petaflops
performance regime" within the decade.

Regenerates: for each scenario x budget, the first year a budget-sized
cluster's *peak* crosses 1 PFLOPS (solved on the cost model, bisected on
the calendar), plus the node count at crossing.  Shape assertions: the
crossing exists this side of 2015 for realistic national-lab budgets, is
earlier under faster scenarios, and earlier with bigger budgets.
"""

from repro.analysis import ExperimentReport, Table
from repro.cluster import cluster_metrics, design_to_budget
from repro.tech import SCENARIOS, get_scenario

BUDGETS = [5e6, 20e6, 100e6]
TARGET = 1e15
LAST_YEAR = 2020.0


def year_of_crossing(roadmap, budget):
    """First (fractional) year `budget` buys >= 1 PFLOPS peak, by
    bisection on the (monotone-in-year) budget designer."""
    def peak_at(year):
        spec = design_to_budget(budget, roadmap, year, "conventional")
        return spec.peak_flops, spec

    low, high = 2003.0, LAST_YEAR
    if peak_at(high)[0] < TARGET:
        return None, None
    for _ in range(40):
        mid = (low + high) / 2.0
        if peak_at(mid)[0] >= TARGET:
            high = mid
        else:
            low = mid
    return high, peak_at(high)[1]


def compute_crossings():
    rows = {}
    for scenario in ("conservative", "nominal", "aggressive"):
        roadmap = get_scenario(scenario)
        for budget in BUDGETS:
            year, spec = year_of_crossing(roadmap, budget)
            rows[(scenario, budget)] = (year, spec)
    return rows


def test_e02_petaflops_crossing(benchmark, show):
    rows = benchmark.pedantic(compute_crossings, rounds=1, iterations=1)

    report = ExperimentReport(
        "E2 / Tab. 1", "Year of the first commodity petaflops (peak)",
        "the trans-Petaflops regime is reached this decade-ish, budget "
        "and scenario dependent",
    )
    table = Table(["scenario", "budget", "crossing year", "nodes",
                   "MW at crossing"],
                  formats={"budget": lambda b: f"${b/1e6:.0f}M",
                           "crossing year": "{:.1f}",
                           "MW at crossing": "{:.1f}"})
    for (scenario, budget), (year, spec) in sorted(
            rows.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        if year is None:
            table.add_row([scenario, budget, float("nan"), 0, float("nan")])
            continue
        metrics = cluster_metrics(spec)
        table.add_row([scenario, budget, year, spec.node_count,
                       metrics.total_watts / 1e6])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    for budget in BUDGETS:
        years = {s: rows[(s, budget)][0] for s in SCENARIOS
                 if rows[(s, budget)][0] is not None}
        if {"conservative", "nominal", "aggressive"} <= set(years):
            assert (years["aggressive"] < years["nominal"]
                    < years["conservative"])
    nominal_years = [rows[("nominal", b)][0] for b in BUDGETS]
    assert all(y is not None for y in nominal_years)
    assert nominal_years == sorted(nominal_years, reverse=True)  # $$ helps
    # A $100M aggressive machine crosses within the keynote's decade; the
    # nominal one lands at the decade's edge.
    assert rows[("aggressive", 100e6)][0] < 2010.0
    assert rows[("nominal", 100e6)][0] < 2012.0
    report.add_note("crossing-year ordering: bigger budgets and faster "
                    "scenarios cross first; the 2008 Roadrunner petaflops "
                    "(~$100M class) brackets the nominal prediction")
    show(report)
