"""Benchmark-suite configuration.

Each bench file regenerates one derived table/figure of the keynote
reproduction (see DESIGN.md's experiment index) and asserts its *shape*
claims.  Reports print with ``-s``; timings come from pytest-benchmark.
"""

import pytest


@pytest.fixture
def show():
    """Print an ExperimentReport even under captured output."""
    def _show(report):
        text = report.render()
        print("\n" + text)
        return text

    return _show
