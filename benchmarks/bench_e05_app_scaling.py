"""E5 / Figure 3 — application-level scaling per interconnect.

Keynote claim (the application-level corollary of the networking claim):
better fabrics matter exactly where communication structure says they
should — alltoall-heavy codes reward bandwidth, allreduce-heavy codes
reward latency, nearest-neighbour and embarrassingly-parallel codes barely
notice.

Regenerates: speedup vs rank count (2..32) for stencil, CG and FFT on
Fast Ethernet, GigE and InfiniBand 4x; nodes use the 2005 conventional
roofline.  Shape assertions: ranking of interconnect sensitivity
(FFT > CG > stencil) and that IB keeps codes scaling where ethernet
flattens.
"""

from repro.apps import ComputeCharge, run_cg, run_fft2d, run_stencil
from repro.analysis import ExperimentReport, Series

RANKS = [1, 2, 4, 8, 16, 32]
TECHNOLOGIES = ["fast_ethernet", "gigabit_ethernet", "infiniband_4x"]


def charge():
    """Flat sustained rate of a 2005 node on real code (~3 GFLOPS).

    A flat rate (rather than the full cache-aware roofline) keeps the
    *scaling* measurement about communication: with the hierarchy on,
    shrinking per-rank working sets hop onto cache roofs and superlinear
    effects obscure the fabric comparison this experiment is about.
    """
    return ComputeCharge(effective_flops=3e9)


def measure():
    """elapsed[app][technology][ranks]"""
    results = {"stencil": {}, "cg": {}, "fft": {}}
    for technology in TECHNOLOGIES:
        results["stencil"][technology] = {
            p: run_stencil(p, n=3072, iterations=3, charge=charge(),
                           technology=technology).elapsed
            for p in RANKS
        }
        results["cg"][technology] = {
            p: run_cg(p, n=1048576, max_iterations=40, tolerance=0.0,
                      charge=charge(), technology=technology).elapsed
            for p in RANKS
        }
        results["fft"][technology] = {
            p: run_fft2d(p, n=1024, charge=charge(),
                         technology=technology).elapsed
            for p in RANKS
        }
    return results


def speedups(per_tech):
    return {tech: {p: per_tech[tech][1] / per_tech[tech][p] for p in RANKS}
            for tech in TECHNOLOGIES}


def test_e05_app_scaling(benchmark, show):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = ExperimentReport(
        "E5 / Fig. 3", "Application scaling by interconnect",
        "fabric advances translate to application speedup in proportion "
        "to communication intensity (FFT > CG > stencil)",
    )
    for app in ("stencil", "cg", "fft"):
        s = speedups(results[app])
        series = [Series(tech, x=[float(p) for p in RANKS],
                         y=[s[tech][p] for p in RANKS])
                  for tech in TECHNOLOGIES]
        report.add_series(series, x_label="ranks",
                          title=f"{app}: speedup vs 1 rank")

    # Shape claims -----------------------------------------------------
    s32 = {app: {tech: (results[app][tech][1] / results[app][tech][32])
                 for tech in TECHNOLOGIES}
           for app in results}
    # IB always at least matches the slower fabrics at scale.
    for app in results:
        assert s32[app]["infiniband_4x"] >= s32[app]["gigabit_ethernet"] * 0.99
        assert s32[app]["infiniband_4x"] >= s32[app]["fast_ethernet"]
    # Interconnect sensitivity ranking at 32 ranks: how much does going
    # from fast_ethernet to IB help each app?
    gain = {app: s32[app]["infiniband_4x"] / s32[app]["gigabit_ethernet"]
            for app in results}
    assert gain["fft"] > gain["stencil"]
    assert gain["cg"] > gain["stencil"]
    # The communication-heavy apps genuinely need the fabric: on IB they
    # still speed up meaningfully at 32 ranks, on Fast Ethernet FFT
    # scaling has collapsed.
    assert s32["fft"]["infiniband_4x"] > 4.0
    assert s32["fft"]["fast_ethernet"] < s32["fft"]["infiniband_4x"] / 2
    # Stencil scales respectably even on cheap networks (halo exchange
    # is small) — the reason GigE Beowulfs were viable at all.
    assert s32["stencil"]["gigabit_ethernet"] > 8.0
    report.add_note(f"fabric gain (IB over GigE) at 32 ranks: "
                    f"fft {gain['fft']:.1f}x, cg {gain['cg']:.1f}x, "
                    f"stencil {gain['stencil']:.1f}x — ordering matches "
                    "communication intensity")
    show(report)
