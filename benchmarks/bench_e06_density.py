"""E6 / Table 3 — packaging density: fielding 100 TFLOPS.

Keynote claim: blade technology and system-on-chip integration change the
"size" curve — the machine room, not the motherboard, becomes the unit of
design.

Regenerates: racks, floor space, and facility power needed to field a
100 TFLOPS-peak machine in 2006 from 1U, blade, and SoC nodes, plus which
constraint (space or power) binds the rack.  Shape assertions: density
ordering, the power-limited phenomenon for dense packaging, and SoC's
facility-power win.
"""

from repro.analysis import ExperimentReport, Table
from repro.cluster import (
    PowerModel,
    RackConfig,
    cluster_metrics,
    design_to_peak,
)
from repro.tech import get_scenario

TARGET = 100e12
YEAR = 2006.0
ARCHITECTURES = ["conventional", "smp", "blade", "soc"]


def compute_density():
    roadmap = get_scenario("nominal")
    rows = {}
    for architecture in ARCHITECTURES:
        spec = design_to_peak(TARGET, roadmap, YEAR, architecture,
                              "infiniband_4x")
        rows[architecture] = cluster_metrics(spec)
    return rows


def test_e06_density(benchmark, show):
    rows = benchmark(compute_density)

    report = ExperimentReport(
        "E6 / Tab. 3", f"Fielding {TARGET/1e12:.0f} TFLOPS (peak), {YEAR:.0f}",
        "blades and SoC collapse the floor-space requirement; power "
        "becomes the binding constraint of dense packaging",
    )
    table = Table(["arch", "nodes", "racks", "floor m^2", "facility MW",
                   "$ (M)", "power-limited rack?"],
                  formats={"floor m^2": "{:.0f}", "facility MW": "{:.2f}",
                           "$ (M)": "{:.1f}"})
    for architecture in ARCHITECTURES:
        metrics = rows[architecture]
        table.add_row([
            architecture,
            metrics.spec.node_count,
            metrics.packaging.racks,
            metrics.packaging.floor_area_m2,
            metrics.total_watts / 1e6,
            metrics.purchase_dollars / 1e6,
            "yes" if metrics.packaging.power_limited else "no",
        ])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    floor = {a: rows[a].packaging.floor_area_m2 for a in ARCHITECTURES}
    power = {a: rows[a].total_watts for a in ARCHITECTURES}
    # Density ordering: SoC < blade < conventional < SMP floor space.
    assert floor["soc"] < floor["blade"] < floor["conventional"]
    assert floor["conventional"] <= floor["smp"]
    # SoC wins facility power by a wide margin (the BlueGene bet).
    assert power["soc"] < 0.5 * power["conventional"]
    # Dense architectures hit the rack power feed, not rack height.
    assert rows["blade"].packaging.power_limited or \
        rows["soc"].packaging.power_limited
    # And with a beefier feed, blades pack even tighter.
    beefy = RackConfig(power_limit_watts=25_000)
    spec = rows["blade"].spec
    from repro.cluster import pack_cluster
    assert pack_cluster(spec, beefy).racks < rows["blade"].packaging.racks
    report.add_note(f"blade cuts floor space {floor['conventional']/floor['blade']:.1f}x "
                    f"vs 1U; SoC {floor['conventional']/floor['soc']:.1f}x; "
                    "dense racks are power-limited — the machine-room wall "
                    "the blade era actually hit")
    show(report)


def test_e06_power_model_sensitivity(benchmark, show):
    """Companion table: facility power vs PUE for the blade machine —
    cooling is half the story of the power curve."""
    roadmap = get_scenario("nominal")
    spec = design_to_peak(TARGET, roadmap, YEAR, "blade", "infiniband_4x")

    def sweep():
        from repro.cluster import pack_cluster
        packaging = pack_cluster(spec)
        return {pue: PowerModel(pue=pue).breakdown(spec, packaging)
                for pue in (1.2, 1.6, 2.0, 2.5)}

    breakdowns = benchmark(sweep)
    report = ExperimentReport(
        "E6b", "Facility power vs cooling efficiency (blade, 100 TFLOPS)",
        "cooling overhead (PUE) scales the whole power curve",
    )
    table = Table(["PUE", "IT MW", "cooling MW", "total MW"],
                  formats={"IT MW": "{:.2f}", "cooling MW": "{:.2f}",
                           "total MW": "{:.2f}"})
    for pue, breakdown in sorted(breakdowns.items()):
        table.add_row([pue, breakdown.it_watts / 1e6,
                       breakdown.cooling_watts / 1e6,
                       breakdown.total_watts / 1e6])
    report.add_table(table)
    totals = [b.total_watts for _pue, b in sorted(breakdowns.items())]
    assert totals == sorted(totals)
    it_loads = {b.it_watts for b in breakdowns.values()}
    assert len(it_loads) == 1  # PUE does not touch the IT load
    show(report)
