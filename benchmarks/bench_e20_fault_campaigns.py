"""E20 — end-to-end fault campaigns: goodput vs fault count per
recovery mode, and the no-recovery cliff.

The keynote's fault-tolerance thread, driven through the whole stack: a
real kernel (2D stencil) runs on the simulated fabric while scheduled
node faults tear the job down.  Sweeping the number of node faults per
recovery mode:

* **ckpt restart** — coordinated checkpoint every iteration; restarts
  resume from the last committed cut;
* **scratch restart** — same teardown/restart machinery but no useful
  checkpoints: every restart recomputes from iteration zero;
* **no recovery** (the cliff) — a separate demonstration adds a
  host-link outage without reliable delivery: the first lost message
  deadlocks the job, so goodput is not merely lower, it is *zero* —
  which is why the era's clusters needed the software stack the
  keynote calls for.

Shape assertions: goodput is 1 with no faults and non-increasing in the
fault count for both surviving modes; checkpoint restart dominates
scratch restart under the heaviest schedule; every surviving campaign
is bit-identical to its failure-free reference; the no-recovery
configuration deadlocks.
"""

import pytest

import repro.apps.campaigns  # noqa: F401  (registers the kernels)
from repro.analysis import ExperimentReport, Series, Table
from repro.fault import (
    CampaignSpec,
    LinkFaultSpec,
    NodeFaultSpec,
    run_campaign,
)
from repro.fault.campaign import _run_once
from repro.sim import SimulationError

RANKS = 4
FAULT_COUNTS = [0, 1, 2, 3]
FAULT_TIMES = [6e-4, 1.2e-3, 1.8e-3]
FAULT_RANKS = [1, 3, 0]

#: One host-link outage: traffic from rank 0 must retry across it.
#: Used by the cliff demonstration — the goodput sweep keeps the fabric
#: clean so the zero-fault row is exactly the failure-free baseline.
LINK_OUTAGE = LinkFaultSpec(start=2e-4, duration=1e-3,
                            a=("h", 0), b=("s", 0))


def make_spec(faults, checkpoint_every=1, reliable=True, with_link=False):
    node_faults = tuple(
        NodeFaultSpec(time=FAULT_TIMES[i], rank=FAULT_RANKS[i])
        for i in range(faults))
    return CampaignSpec(
        kernel="stencil2d", ranks=RANKS,
        name=f"e20-{faults}f-ck{checkpoint_every}",
        app_args=(("n", 12), ("iterations", 6)),
        node_faults=node_faults,
        link_faults=(LINK_OUTAGE,) if with_link else (),
        checkpoint_every=checkpoint_every,
        checkpoint_write_seconds=1e-4,
        restart_seconds=2e-4,
        reliable=reliable,
        seed=7,
    )


def run_sweep():
    """Goodput per (fault count, recovery mode)."""
    rows = {}
    for faults in FAULT_COUNTS:
        rows[(faults, "ckpt restart")] = run_campaign(
            make_spec(faults, checkpoint_every=1))
        rows[(faults, "scratch restart")] = run_campaign(
            make_spec(faults, checkpoint_every=10**6))
    return rows


def test_e20_fault_campaigns(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E20", "fault campaigns on a real kernel (2D stencil, 4 ranks)",
        "coordinated checkpoint/restart turns faults into a goodput "
        "tax; without recovery the first lost message is fatal",
    )
    table = Table(["node faults", "recovery", "restarts", "commits",
                   "retransmits", "lost work (ms)", "goodput",
                   "bit-identical"],
                  formats={"goodput": "{:.3f}",
                           "lost work (ms)": "{:.3f}"})
    for faults in FAULT_COUNTS:
        for mode in ("ckpt restart", "scratch restart"):
            outcome = rows[(faults, mode)]
            table.add_row([
                faults, mode,
                outcome.faulty.incarnations - 1,
                outcome.faulty.commits,
                outcome.retries,
                outcome.faulty.lost_work_seconds * 1e3,
                outcome.goodput,
                outcome.answers_match,
            ])
    report.add_table(table)
    report.add_series(
        [Series(mode,
                x=FAULT_COUNTS,
                y=[rows[(f, mode)].goodput for f in FAULT_COUNTS])
         for mode in ("ckpt restart", "scratch restart")],
        x_label="scheduled node faults", title="goodput vs fault count")
    show(report)

    # Shape claims -----------------------------------------------------
    # Every surviving campaign recovers bit-identically.
    for outcome in rows.values():
        assert outcome.answers_match

    for mode in ("ckpt restart", "scratch restart"):
        goodput = [rows[(f, mode)].goodput for f in FAULT_COUNTS]
        # No faults: the fault machinery costs nothing.
        assert goodput[0] == pytest.approx(1.0)
        # Goodput decays monotonically as faults accumulate.
        assert all(a >= b for a, b in zip(goodput, goodput[1:]))

    # Checkpoint restart saves work scratch restart recomputes.
    heaviest = FAULT_COUNTS[-1]
    assert (rows[(heaviest, "ckpt restart")].goodput
            > rows[(heaviest, "scratch restart")].goodput)
    assert (rows[(heaviest, "ckpt restart")].faulty.lost_work_seconds
            < rows[(heaviest, "scratch restart")].faulty.lost_work_seconds)


def test_e20_no_recovery_cliff():
    """Without reliable delivery, the link outage's first dropped
    message leaves a rank waiting forever: the event queue drains with
    the job incomplete — goodput zero, not merely degraded."""
    spec = make_spec(0, reliable=False, with_link=True)
    with pytest.raises(SimulationError, match="deadlock"):
        _run_once(spec, faults_enabled=True)
