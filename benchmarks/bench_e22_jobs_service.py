"""E22 — the job control plane under an SWF-trace workload and a full
fault campaign: at-most-once, fencing, and byte-identical determinism.

The keynote's cluster-software claim, measured end to end: a synthetic
Feitelson workload is written to Standard Workload Format, parsed back
(the integer-second round trip the archive format imposes), scaled to
the control plane's millisecond clock, and submitted to the lease-based
job service while a fault campaign runs — worker crashes with spare
activation, a worker stall racing its lease, a supervisor crash with
delayed restart, duplicate client submissions, and random message
drops.

Shape assertions: every trace job's effect lands in the durable log
*exactly once* under the full campaign; the log replay checker finds
zero violations (no stale-token write was ever accepted); same-seed
reruns produce byte-identical logs; duplicates are absorbed by
``(tenant, key)`` dedup; and goodput decays as crashes accumulate, with
the faulty campaign strictly below its clean twin.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import ExperimentReport, Series, Table
from repro.health import DetectionSpec
from repro.jobs import (
    DuplicateSubmitSpec,
    JobsCampaignSpec,
    ServiceConfig,
    SupervisorCrashSpec,
    WorkerCrashSpec,
    WorkerStallSpec,
    prove_determinism,
    requests_from_jobs,
    run_jobs_campaign,
)
from repro.scheduler import (
    WorkloadGenerator,
    WorkloadParams,
    format_swf,
    parse_swf,
    scale_jobs,
)
from repro.sim.rng import RandomStreams

TRACE_JOBS = 24
TRACE_SEED = 22
#: Trace seconds -> service seconds (SWF is integer seconds; the
#: control plane runs its campaigns in milliseconds).
TIME_SCALE = 1e-3

#: Crash schedule the goodput sweep takes prefixes of.
CRASHES = (WorkerCrashSpec(time=2e-3, host=2),
           WorkerCrashSpec(time=6e-3, host=4))
CRASH_COUNTS = [0, 1, 2]

FAST_DETECTION = DetectionSpec(detector="fixed", heartbeat_interval=1e-4,
                               suspect_after=3e-4, dead_after=6e-4,
                               monitor_host=0)


def build_trace():
    """An SWF-round-tripped synthetic trace at natural second scale.

    Generated in seconds (where SWF's integer rounding is harmless),
    serialised with ``format_swf``, parsed back with ``parse_swf`` —
    so the campaign consumes exactly what the archive format can
    carry — then scaled down to the service's millisecond clock.
    """
    params = WorkloadParams(max_nodes=16, offered_load=2.0,
                            runtime_log_mean=float(np.log(2.0)),
                            runtime_log_sigma=0.6,
                            overestimate_max=2.0)
    generator = WorkloadGenerator(params, RandomStreams(seed=TRACE_SEED))
    natural = generator.generate(TRACE_JOBS)
    round_tripped = parse_swf(format_swf(natural, max_nodes=16))
    assert len(round_tripped) == TRACE_JOBS  # rounding loses no jobs
    return scale_jobs(round_tripped, TIME_SCALE)


def make_spec(requests, crashes=CRASHES):
    """The full campaign: crashes + stall + supervisor outage + dups
    + message drops against 4 workers with 2 detector-driven spares."""
    return JobsCampaignSpec(
        requests=requests,
        name=f"e22-{len(crashes)}crash",
        service=ServiceConfig(workers=4, spare_workers=2,
                              detection=FAST_DETECTION),
        worker_crashes=tuple(crashes),
        worker_stalls=(WorkerStallSpec(time=3e-3, host=1,
                                       duration=4e-3),),
        supervisor_crashes=(SupervisorCrashSpec(time=4.5e-3,
                                                restart_after=1.5e-3),),
        duplicate_submits=(DuplicateSubmitSpec(time=2.5e-3, index=2),
                           DuplicateSubmitSpec(time=5e-3, index=7)),
        drop_probability=0.02,
        seed=TRACE_SEED,
    )


def run_sweep():
    """Faulty/clean reports per crash count, plus the determinism
    proof for the heaviest campaign."""
    requests = requests_from_jobs(tuple(build_trace()))
    full = make_spec(requests)
    by_crashes = {
        n: run_jobs_campaign(
            dataclasses.replace(full, worker_crashes=CRASHES[:n],
                                name=f"e22-{n}crash"))
        for n in CRASH_COUNTS
    }
    return {
        "faulty": by_crashes[CRASH_COUNTS[-1]],
        "clean": run_jobs_campaign(full.without_faults()),
        "by_crashes": by_crashes,
        "proof": prove_determinism(full),
    }


def test_e22_jobs_control_plane(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    faulty, clean = rows["faulty"], rows["clean"]
    proof = rows["proof"]

    report = ExperimentReport(
        "E22", "lease-based job control plane on an SWF-trace workload "
        f"({TRACE_JOBS} jobs, 4 workers + 2 spares)",
        "fencing tokens at the storage boundary keep execution "
        "at-most-once through crashes, stalls, supervisor loss, "
        "duplicates, and drops — and the whole campaign replays "
        "byte-identically",
    )
    table = Table(["campaign", "completed", "grants", "renewals",
                   "expiries", "requeues", "fenced writes", "dedup",
                   "restarts", "deaths", "goodput", "violations"],
                  formats={"goodput": "{:.4f}"})
    for label, outcome in (("full faults", faulty), ("clean", clean)):
        table.add_row([
            label, outcome.completed, outcome.grants, outcome.renewals,
            outcome.expiries, outcome.requeues,
            outcome.fencing_rejections, outcome.dedup_hits,
            outcome.supervisor_restarts, outcome.deaths_declared,
            outcome.goodput, len(outcome.violations),
        ])
    report.add_table(table)
    report.add_series(
        [Series("goodput",
                x=CRASH_COUNTS,
                y=[rows["by_crashes"][n].goodput for n in CRASH_COUNTS])],
        x_label="worker crashes (stall+outage+dups+drops held)",
        title="goodput vs crash count")
    show(report)

    # Shape claims -----------------------------------------------------
    # At-most-once under the full campaign: every trace job closed,
    # exactly one durable effect each, zero replay violations (in
    # particular: no stale-token write was ever applied).
    for outcome in (faulty, clean):
        assert outcome.violations == ()
        assert outcome.unfinished == 0
        assert outcome.completed == TRACE_JOBS
        for job_id in range(1, TRACE_JOBS + 1):  # log ids are 1-based
            assert outcome.log_text.count(f"effect job={job_id} ") == 1

    # Both retrying clients were absorbed by (tenant, key) dedup.
    assert faulty.dedup_hits == 2
    assert clean.dedup_hits == 2

    # The campaign exercised what it scheduled: real declared deaths,
    # a supervisor restart, lease churn from the stall and crashes.
    assert faulty.deaths_declared >= len(CRASHES)
    assert faulty.supervisor_restarts == 1
    assert faulty.expiries >= 1
    assert faulty.requeues >= 1
    assert faulty.spare_activations == len(CRASHES)
    assert clean.fencing_rejections == 0
    assert clean.supervisor_restarts == 0

    # Faults cost goodput, monotonically in the crash count, and the
    # full campaign sits strictly below the clean twin.
    sweep = [rows["by_crashes"][n].goodput for n in CRASH_COUNTS]
    assert all(a >= b for a, b in zip(sweep, sweep[1:]))
    assert faulty.goodput < clean.goodput
    assert clean.goodput == pytest.approx(
        max(sweep + [clean.goodput]))

    # Same seed, same faults, same bytes.
    assert proof.identical
    assert len(set(proof.digests)) == 1
