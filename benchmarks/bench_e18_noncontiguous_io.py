"""E18 / Table 11 (extension) — noncontiguous I/O access methods.

Extension experiment: not a claim from the keynote itself, but from the
software agenda it headlines — the same CLUSTER 2002 proceedings carry
"Noncontiguous I/O through PVFS" (Ching et al.), whose result is that a
batched *list I/O* access method "outperforms current noncontiguous I/O
access methods in most I/O situations".  Our PFS implements both access
methods, so we reproduce the comparison's shape.

Regenerates: strided-write time, naive (one request per region) vs
list I/O (batched per server), sweeping region count at fixed total
bytes, plus the seek-cost sensitivity that explains the gap.  Shape
assertions: list I/O wins everywhere, the gap grows with fragmentation,
and approaches 1x as the access pattern becomes contiguous.
"""

import pytest

from repro.analysis import ExperimentReport, Series, Table
from repro.io import DiskModel, ParallelFileSystem
from repro.network import Fabric, SingleSwitchTopology, get_interconnect
from repro.sim import Simulator

TOTAL_BYTES = 1 << 22          # 4 MiB moved in every configuration
REGION_COUNTS = [1, 16, 64, 256, 1024]
SERVERS = 4


def run_strided(region_count: int, list_io: bool,
                disk: DiskModel = DiskModel()) -> float:
    sim = Simulator()
    fabric = Fabric(sim, SingleSwitchTopology(SERVERS + 2),
                    get_interconnect("infiniband_4x"))
    pfs = ParallelFileSystem(
        sim, fabric, server_hosts=list(range(2, 2 + SERVERS)),
        stripe_bytes=1 << 16, disk=disk)
    size = TOTAL_BYTES // region_count
    regions = [(i * 4 * size, size) for i in range(region_count)]

    def client():
        yield from pfs.write_regions(0, regions, list_io=list_io)
        return sim.now

    return sim.run_process(client())


def compute_comparison():
    rows = {
        count: {
            "naive": run_strided(count, list_io=False),
            "list_io": run_strided(count, list_io=True),
        }
        for count in REGION_COUNTS
    }
    seek_gap = {}
    for label, seek in (("3 ms", 3e-3), ("13 ms", 13e-3), ("30 ms", 30e-3)):
        disk = DiskModel(seek_seconds=seek)
        seek_gap[label] = (run_strided(256, False, disk)
                           / run_strided(256, True, disk))
    return rows, seek_gap


def test_e18_noncontiguous_io(benchmark, show):
    rows, seek_gap = benchmark.pedantic(compute_comparison, rounds=1,
                                        iterations=1)

    report = ExperimentReport(
        "E18 / Tab. 11 (extension)",
        "Noncontiguous I/O: list I/O vs per-region access",
        "batched list I/O outperforms naive noncontiguous access, "
        "increasingly so as access patterns fragment (Ching et al., same "
        "proceedings)",
    )
    table = Table(["regions", "naive (ms)", "list I/O (ms)", "speedup"],
                  formats={"naive (ms)": "{:.1f}",
                           "list I/O (ms)": "{:.2f}", "speedup": "{:.1f}"})
    for count in REGION_COUNTS:
        naive = rows[count]["naive"]
        batched = rows[count]["list_io"]
        table.add_row([count, naive * 1e3, batched * 1e3, naive / batched])
    report.add_table(table)
    report.add_series(
        [Series("speedup", x=[float(c) for c in REGION_COUNTS],
                y=[rows[c]["naive"] / rows[c]["list_io"]
                   for c in REGION_COUNTS])],
        x_label="regions")
    seek_table = Table(["seek time", "speedup @256 regions"],
                       formats={"speedup @256 regions": "{:.1f}"})
    for label, gap in seek_gap.items():
        seek_table.add_row([label, gap])
    report.add_table(seek_table)

    # Shape claims -----------------------------------------------------
    speedups = [rows[c]["naive"] / rows[c]["list_io"]
                for c in REGION_COUNTS]
    # List I/O never loses...
    assert all(s >= 0.95 for s in speedups)
    # ...the gap grows monotonically with fragmentation...
    assert speedups == sorted(speedups)
    assert speedups[-1] > 20.0
    # ...and shrinks toward the chunk-batching floor for the contiguous
    # case (plain PVFS-style access issues one request per stripe unit,
    # so aggregation helps even contiguous streams — as it did in the
    # real system; the *noncontiguous* multiplier is the headline).
    assert speedups[0] < 8.0
    assert speedups[0] < speedups[-1] / 3.0
    # Seek amortisation is the mechanism: slower seeks, bigger gap.
    gaps = [seek_gap["3 ms"], seek_gap["13 ms"], seek_gap["30 ms"]]
    assert gaps == sorted(gaps)
    report.add_note(f"list I/O wins {speedups[-1]:.0f}x at 1024 regions "
                    "and drops to the chunk-batching floor at 1 region; the win scales with "
                    "seek cost — the Ching et al. result's shape, from "
                    "the same mechanism they identified")
    show(report)
