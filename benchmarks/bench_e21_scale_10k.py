"""E21 at fleet scale: detection-driven health monitoring of 10^4 nodes.

ROADMAP item 1 asks the detection experiments to reach the paper's
cluster sizes instead of toy 4-rank worlds.  This bench runs the
E21-style health campaign — heartbeats through a real fat-tree fabric,
fixed-timeout detector, mid-run crashes — over **10,000 nodes**, in
both sender modes:

* ``legacy`` — one sender process per node (the pre-overhaul design);
* ``slotted`` — one slot-driver process walking 256 phase slots per
  interval (``DetectionSpec.heartbeat_slots``), the engine-overhaul
  path that makes this scale affordable.

Shape claims: every injected crash is detected, nothing healthy is
declared dead (the interval/timeout budget is sized for the monitor
link's aggregate load), both modes agree on the detection verdicts,
and the slotted mode schedules fewer engine events without being
slower.  The run writes ``BENCH_e21_scale_10k.json`` with MTTD, false
positives, event counts and wall-clock events/second per mode.
"""

import time
from pathlib import Path

from repro.health import DetectionSpec, HeartbeatMonitor
from repro.network import Fabric, FatTreeTopology, get_interconnect
from repro.sim import Simulator
from repro.xp import write_bench_artifact

NODES = 10_000
HEARTBEAT = 0.1
SLOTS = 256
#: Crashes injected after the detector has a baseline.
CRASH_AT = 0.5
CRASHED = (1234, 7777, 9999)
HORIZON = 2.0

_ARTIFACT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_e21_scale_10k.json"


def run_campaign(slots):
    """One 10^4-node campaign; ``slots=None`` is the legacy mode."""
    sim = Simulator()
    fabric = Fabric(sim, FatTreeTopology(NODES),
                    get_interconnect("infiniband_4x"))
    spec = DetectionSpec(detector="fixed",
                         heartbeat_interval=HEARTBEAT,
                         suspect_after=3 * HEARTBEAT,
                         dead_after=6 * HEARTBEAT,
                         heartbeat_slots=slots)
    monitor = HeartbeatMonitor(sim, fabric, NODES, spec=spec)
    monitor.start()
    wall_start = time.perf_counter()
    sim.run(until=CRASH_AT)
    for node in CRASHED:
        monitor.crash(node)
    sim.run(until=HORIZON)
    wall = time.perf_counter() - wall_start
    real = sorted((d.node, d.detect_seconds) for d in monitor.deaths
                  if not d.false_positive)
    return {
        "mode": "legacy" if slots is None else f"slotted-{slots}",
        "nodes": NODES,
        "events": sim.events_executed,
        "wall_seconds": wall,
        "events_per_second": sim.events_executed / wall,
        "detected": [node for node, _ in real],
        "mttd_seconds": monitor.mttd_seconds(),
        "false_deaths": sum(1 for d in monitor.deaths
                            if d.false_positive),
        "heartbeats_sent": monitor.heartbeats_sent,
        "heartbeats_delivered": monitor.heartbeats_delivered,
    }


def test_e21_scale_10k_detection(benchmark, show):
    results = benchmark.pedantic(
        lambda: {label: run_campaign(slots)
                 for label, slots in (("legacy", None),
                                      ("slotted", SLOTS))},
        rounds=1, iterations=1)
    legacy, slotted = results["legacy"], results["slotted"]

    # Shape claims -----------------------------------------------------
    for row in (legacy, slotted):
        # Every injected crash detected, nothing healthy declared dead.
        assert row["detected"] == sorted(CRASHED)
        assert row["false_deaths"] == 0
        # MTTD lands inside the detector's budget: silence must reach
        # dead_after, and the checker polls every half interval.
        assert 5 * HEARTBEAT < row["mttd_seconds"] < 8 * HEARTBEAT
    # The slotted driver schedules strictly fewer engine events than
    # 10^4 per-node senders, and is at least as fast in wall-clock.
    assert slotted["events"] < legacy["events"]
    assert (slotted["wall_seconds"]
            < legacy["wall_seconds"] * 1.1)

    payload = {
        "benchmark_module": "bench_e21_scale_10k",
        "heartbeat_interval_seconds": HEARTBEAT,
        "dead_after_seconds": 6 * HEARTBEAT,
        "horizon_seconds": HORIZON,
        "results": results,
    }
    # Atomic write (temp + rename) so an interrupted run can never
    # leave a truncated artifact for CI's validation step to choke on.
    write_bench_artifact(_ARTIFACT_PATH, payload, required=("results",))

    lines = ["E21-scale: 10^4-node detection campaign"]
    for label, row in results.items():
        lines.append(
            f"  {label:>8}: {row['events']:>9,} events  "
            f"{row['events_per_second']:>10,.0f} ev/s  "
            f"MTTD {row['mttd_seconds'] * 1e3:.0f} ms  "
            f"false {row['false_deaths']}")
    print("\n" + "\n".join(lines))
