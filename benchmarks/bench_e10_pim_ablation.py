"""E10 / Figure 6 — the processor-in-memory argument.

Keynote claim: "processor in memory architecture" is among the
revolutionary node structures defining the future.

Regenerates: roofline-attainable GFLOPS vs arithmetic intensity for
PIM / conventional / SoC 2006 nodes (the figure), the PIM-vs-conventional
crossover intensity, and the per-dollar version of the same comparison.
Shape assertions: PIM wins left of the crossover by ~an order of
magnitude, loses right of it, and the crossover sits between the two
ridge points; the memory wall moves the conventional ridge right over
the years, *growing* the kernel class where PIM wins.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series, Table
from repro.nodes import RooflineModel, make_node
from repro.tech import get_scenario

YEAR = 2006.0
INTENSITIES = np.logspace(-2, 2, 33)


def compute_curves():
    roadmap = get_scenario("nominal")
    nodes = {name: make_node(name, roadmap, YEAR)
             for name in ("pim", "conventional", "soc")}
    curves = {name: RooflineModel(node).attainable_curve(INTENSITIES)
              for name, node in nodes.items()}

    pim_wins = curves["pim"] > curves["conventional"]
    flip = int(np.argmin(pim_wins))
    crossover = float(INTENSITIES[flip])

    ridge_years = {}
    for year in (2003.0, 2006.0, 2009.0):
        node = make_node("conventional", roadmap, year)
        ridge_years[year] = node.machine_balance
    return nodes, curves, crossover, ridge_years


def test_e10_pim_ablation(benchmark, show):
    nodes, curves, crossover, ridge_years = benchmark(compute_curves)

    report = ExperimentReport(
        "E10 / Fig. 6", "PIM vs conventional vs SoC rooflines (2006)",
        "in-memory processing wins wherever the memory wall binds — and "
        "the wall moves the wrong way for conventional nodes every year",
    )
    report.add_series(
        [Series(name, x=list(INTENSITIES), y=list(curve / 1e9))
         for name, curve in curves.items()],
        x_label="flops/byte", title="attainable GFLOPS",
        x_format="{:.3g}")
    table = Table(["quantity", "value"],
                  formats={"value": "{:.3g}"})
    table.add_row(["PIM/conventional crossover (F/B)", crossover])
    table.add_row(["conventional ridge 2003 (F/B)", ridge_years[2003.0]])
    table.add_row(["conventional ridge 2006 (F/B)", ridge_years[2006.0]])
    table.add_row(["conventional ridge 2009 (F/B)", ridge_years[2009.0]])
    table.add_row(["PIM ridge 2006 (F/B)", nodes["pim"].machine_balance])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    pim, conventional = curves["pim"], curves["conventional"]
    # Far left (streaming): PIM wins by roughly the bandwidth ratio.
    left_gain = pim[0] / conventional[0]
    assert 10 < left_gain < 60
    # Far right (dense compute): conventional wins.
    assert conventional[-1] > pim[-1]
    # Crossover lies between the two ridges.
    assert (nodes["pim"].machine_balance < crossover
            < nodes["conventional"].machine_balance * 2)
    # The memory wall worsens: the conventional ridge moves right every
    # sampled year, so PIM's winning region *grows* with time.
    ridges = [ridge_years[y] for y in sorted(ridge_years)]
    assert ridges == sorted(ridges)
    # Per-dollar, PIM still wins the memory-bound regime despite its
    # non-commodity cost premium.
    per_dollar_pim = pim[0] / nodes["pim"].cost_dollars
    per_dollar_conv = conventional[0] / nodes["conventional"].cost_dollars
    assert per_dollar_pim > 5 * per_dollar_conv
    report.add_note(f"PIM delivers {left_gain:.0f}x on streaming kernels "
                    f"and loses above ~{crossover:.1f} F/B; the "
                    "conventional ridge drifts from "
                    f"{ridge_years[2003.0]:.1f} to {ridge_years[2009.0]:.1f} "
                    "F/B over 2003-09 — the memory wall the PIM agenda "
                    "answered")
    show(report)
