"""E23: SWIM gossip vs the central monitor at 10^4 nodes.

ROADMAP item 2's scorecard.  The central ``HeartbeatMonitor`` funnels
O(cluster) transfers per interval into one host — a hotspot *and* a
single point of failure.  ``GossipMonitor`` decentralizes detection:
every node probes one random peer per period and membership rides the
probe traffic.  This bench runs both detectors over the same 10^4-node
fat tree and scores the trade head-to-head:

* **crash detection** — three mid-run crashes: both detectors must find
  all three; gossip's MTTD must land within 2x the central monitor's
  (it pays up to a couple of probe periods before the first failed
  probe, then the same suspicion budget).
* **fault-free twin** — gossip must report zero suspicions and zero
  false positives when nothing is wrong (randomized probing must not
  manufacture noise at scale).
* **partition** — a one-way blackhole pair (grey failure: no reroute,
  no error, packets just vanish) isolates host 0, the central monitor's
  home.  The central detector goes *provably blind* — it declares
  nearly the whole healthy fleet dead — while gossip keeps detecting a
  real crash injected elsewhere with bounded false deaths (the
  isolated island's honest-but-wrong verdicts; see DESIGN.md).
* **bytes on wire** — scaling 10^3 -> 10^4 nodes, the central monitor
  host's inbound detector traffic grows ~10x (O(n)) while gossip's
  *busiest single node* stays ~flat (O(1) per node per period).

Writes ``BENCH_e23_gossip.json`` with every scenario's verdicts,
MTTD, false-positive counts and per-node traffic accounting.
"""

import time
from pathlib import Path

from repro.health import DetectionSpec, build_monitor
from repro.network import (
    Fabric,
    FabricFaultPlan,
    FatTreeTopology,
    get_interconnect,
)
from repro.sim import RandomStreams, Simulator
from repro.xp import write_bench_artifact

NODES = 10_000
SMALL_NODES = 1_000
HEARTBEAT = 0.1
SLOTS = 256
#: Crashes injected after the detectors have a baseline.
CRASH_AT = 0.5
CRASHED = (1234, 7777, 9999)
#: The partition scenario's real crash, far from the isolated host.
PARTITION_CRASH = 5000
PARTITION_AT = 0.5
HORIZON = 2.0

_ARTIFACT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_e23_gossip.json"


def _spec(detector, nodes):
    """The shared detection budget, slotted for affordability."""
    return DetectionSpec(detector=detector,
                         heartbeat_interval=HEARTBEAT,
                         suspect_after=3 * HEARTBEAT,
                         dead_after=6 * HEARTBEAT,
                         heartbeat_slots=SLOTS if nodes >= 1000 else None)


def _isolate_host(topology, plan, start, end):
    """Blackhole both directions of host 0's access link: a grey
    failure routing cannot see, so nothing re-routes — host 0 is simply
    gone from the fleet's point of view (and the fleet from host 0's).
    """
    access = topology.route(0, 1)[0]  # (("h", 0), leaf switch)
    plan.link_down_oneway(access[0], access[1], start, end)
    plan.link_down_oneway(access[1], access[0], start, end)


def run_scenario(detector, nodes, *, crashes=(), crash_at=None,
                 partition=False, horizon=HORIZON, seed=23):
    """One campaign: build the fleet, optionally crash / partition,
    and score the detector."""
    sim = Simulator()
    topology = FatTreeTopology(nodes)
    plan = None
    if partition:
        plan = FabricFaultPlan()
        _isolate_host(topology, plan, PARTITION_AT, horizon)
    fabric = Fabric(sim, topology, get_interconnect("infiniband_4x"),
                    fault_plan=plan)
    monitor = build_monitor(sim, fabric, nodes,
                            spec=_spec(detector, nodes),
                            streams=RandomStreams(seed))
    monitor.start()
    wall_start = time.perf_counter()
    if crashes:
        sim.run(until=crash_at)
        for node in crashes:
            monitor.crash(node)
    sim.run(until=horizon)
    wall = time.perf_counter() - wall_start
    intervals = horizon / HEARTBEAT
    real = sorted(d.node for d in monitor.deaths if not d.false_positive)
    row = {
        "detector": detector,
        "nodes": nodes,
        "events": sim.events_executed,
        "wall_seconds": wall,
        "events_per_second": sim.events_executed / wall,
        "detected": real,
        "false_deaths": sum(1 for d in monitor.deaths
                            if d.false_positive),
        "false_suspicions": monitor.false_suspicions,
        "mttd_seconds": monitor.mttd_seconds(),
        "messages_sent": monitor.heartbeats_sent,
        "messages_delivered": monitor.heartbeats_delivered,
        "messages_lost": monitor.heartbeats_lost,
    }
    if detector == "gossip":
        stats = monitor.gossip_stats()
        row["suspicions"] = stats.suspicions
        row["refutations"] = stats.refutations
        row["indirect_probes"] = stats.indirect_probes
        # The O(1) claim: the busiest node's outbound detector bytes
        # per protocol period.
        row["max_node_bytes_per_interval"] = (
            stats.max_node_bytes_sent / intervals)
        row["mean_node_bytes_per_interval"] = (
            stats.mean_node_bytes_sent / intervals)
    else:
        # The O(n) reality: every delivered heartbeat lands on the
        # monitor host, so its inbound bytes scale with the fleet.
        row["monitor_bytes_per_interval"] = (
            monitor.heartbeats_delivered
            * monitor.spec.heartbeat_bytes / intervals)
    return row


def test_e23_gossip_vs_central(benchmark, show):
    results = benchmark.pedantic(
        lambda: {
            "central_crash": run_scenario(
                "fixed", NODES, crashes=CRASHED, crash_at=CRASH_AT),
            "gossip_crash": run_scenario(
                "gossip", NODES, crashes=CRASHED, crash_at=CRASH_AT),
            "gossip_clean": run_scenario("gossip", NODES),
            "central_partition": run_scenario(
                "fixed", NODES, crashes=(PARTITION_CRASH,),
                crash_at=0.6, partition=True),
            "gossip_partition": run_scenario(
                "gossip", NODES, crashes=(PARTITION_CRASH,),
                crash_at=0.6, partition=True),
            "central_small": run_scenario("fixed", SMALL_NODES),
            "gossip_small": run_scenario("gossip", SMALL_NODES),
        },
        rounds=1, iterations=1)

    central = results["central_crash"]
    gossip = results["gossip_crash"]
    clean = results["gossip_clean"]

    # Crash detection: both find every injected crash, honestly.
    assert central["detected"] == sorted(CRASHED)
    assert gossip["detected"] == sorted(CRASHED)
    assert central["false_deaths"] == 0
    assert gossip["false_deaths"] == 0
    # Gossip pays at most a couple of probe periods over the central
    # monitor's silence budget: MTTD within 2x.
    assert gossip["mttd_seconds"] <= 2.0 * central["mttd_seconds"]

    # The fault-free twin: randomized probing manufactures no noise.
    assert clean["false_deaths"] == 0
    assert clean["false_suspicions"] == 0
    assert clean["suspicions"] == 0

    # Partition: the central detector is provably blind — with its host
    # blackholed it declares (nearly) the whole healthy fleet dead —
    # while gossip still finds the real crash with bounded collateral
    # (the isolated island's honest false verdicts).
    blind = results["central_partition"]
    live = results["gossip_partition"]
    assert blind["false_deaths"] >= NODES - 5
    assert PARTITION_CRASH in live["detected"]
    assert live["false_deaths"] <= 25
    assert live["false_deaths"] < blind["false_deaths"] / 100

    # Bytes on wire: central's monitor-host load scales O(n), gossip's
    # per-node load stays O(1).
    central_ratio = (central["monitor_bytes_per_interval"]
                     / results["central_small"]
                     ["monitor_bytes_per_interval"])
    gossip_ratio = (gossip["max_node_bytes_per_interval"]
                    / results["gossip_small"]
                    ["max_node_bytes_per_interval"])
    assert central_ratio >= 5.0
    assert gossip_ratio <= 3.0

    payload = {
        "benchmark_module": "bench_e23_gossip",
        "heartbeat_interval_seconds": HEARTBEAT,
        "dead_after_seconds": 6 * HEARTBEAT,
        "horizon_seconds": HORIZON,
        "crashed_nodes": list(CRASHED),
        "results": results,
        "comparisons": {
            "mttd_ratio_gossip_vs_central": (
                gossip["mttd_seconds"] / central["mttd_seconds"]),
            "central_bytes_scaling_10x_nodes": central_ratio,
            "gossip_bytes_scaling_10x_nodes": gossip_ratio,
            "partition_central_false_deaths": blind["false_deaths"],
            "partition_gossip_false_deaths": live["false_deaths"],
        },
    }
    write_bench_artifact(_ARTIFACT_PATH, payload, required=("results",))

    lines = ["E23: gossip vs central at 10^4 nodes"]
    for label in ("central_crash", "gossip_crash"):
        row = results[label]
        lines.append(
            f"  {label:>17}: MTTD {row['mttd_seconds'] * 1e3:.0f} ms  "
            f"false {row['false_deaths']}  "
            f"{row['events_per_second']:>10,.0f} ev/s")
    lines.append(
        f"  partition: central false deaths "
        f"{blind['false_deaths']:,} (blind), gossip "
        f"{live['false_deaths']} (live, real crash detected)")
    lines.append(
        f"  bytes scaling 10^3->10^4: central x{central_ratio:.1f} "
        f"(O(n)), gossip x{gossip_ratio:.2f} (O(1) per node)")
    print("\n" + "\n".join(lines))
