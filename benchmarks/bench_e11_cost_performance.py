"""E11 / Table 5 — the commodity price/performance premise.

Keynote claim (the founding Beowulf premise the talk builds on): commodity
clusters win on price/performance against integrated systems, and the gap
compounds because cluster $/FLOPS rides the commodity curve.

Regenerates: full-system $/GFLOPS (cluster, with network/racks/
integration) vs an integrated-MPP comparator at a range of premium
factors, 2003-2010; plus the TCO view (purchase + power) that dense
low-power nodes start winning late in the decade.  Shape assertions:
cluster $/GFLOPS falls ~exponentially; the MPP premium keeps the
comparator above the cluster at every sampled premium >= 2; SoC beats
conventional on 4-year TCO per FLOPS by 2008.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series, Table
from repro.cluster import (
    CostModel,
    cluster_metrics,
    design_cluster,
    pack_cluster,
)
from repro.tech import get_scenario

YEARS = [2003.0, 2005.0, 2007.0, 2009.0, 2010.0]
PREMIUMS = [2.0, 5.0, 10.0]
NODES = 512


def compute_costs():
    roadmap = get_scenario("nominal")
    cost_model = CostModel()
    rows = {}
    for year in YEARS:
        spec = design_cluster("c", roadmap, year, NODES, "conventional")
        packaging = pack_cluster(spec)
        cluster_dpf = cost_model.dollars_per_flops(spec, packaging)
        rows[year] = {
            "cluster": cluster_dpf,
            "mpp": {premium: cluster_dpf * premium for premium in PREMIUMS},
        }

    # TCO comparison: conventional vs SoC at equal peak, 2008.
    tco = {}
    for architecture in ("conventional", "soc"):
        spec = design_cluster("t", roadmap, 2008.0, 1000, architecture,
                              "infiniband_4x")
        packaging = pack_cluster(spec)
        tco[architecture] = {
            "purchase_per_gf": (cost_model.purchase(spec, packaging)
                                .total_dollars / spec.peak_flops * 1e9),
            "tco4_per_gf": (cost_model.tco(spec, packaging, 4.0)
                            / spec.peak_flops * 1e9),
        }
    return rows, tco


def test_e11_cost_performance(benchmark, show):
    rows, tco = benchmark(compute_costs)

    report = ExperimentReport(
        "E11 / Tab. 5", "Price/performance: commodity cluster vs MPP",
        "the commodity curve keeps clusters a constant multiple cheaper "
        "per FLOPS; power enters the ledger late in the decade",
    )
    table = Table(["year", "cluster $/GF", "MPP 2x", "MPP 5x", "MPP 10x"],
                  formats={"year": "{:.0f}",
                           **{c: "{:.2f}" for c in
                              ("cluster $/GF", "MPP 2x", "MPP 5x", "MPP 10x")}})
    for year in YEARS:
        row = rows[year]
        table.add_row([year, row["cluster"] * 1e9]
                      + [row["mpp"][p] * 1e9 for p in PREMIUMS])
    report.add_table(table)

    tco_table = Table(["arch", "purchase $/GF (2008)", "4y TCO $/GF"],
                      formats={"purchase $/GF (2008)": "{:.2f}",
                               "4y TCO $/GF": "{:.2f}"},
                      title="TCO view, 1000 nodes, 2008")
    for architecture, values in tco.items():
        tco_table.add_row([architecture, values["purchase_per_gf"],
                           values["tco4_per_gf"]])
    report.add_table(tco_table)

    # Shape claims -----------------------------------------------------
    cluster_curve = [rows[year]["cluster"] for year in YEARS]
    # Falls monotonically and roughly exponentially.
    assert cluster_curve == sorted(cluster_curve, reverse=True)
    log_curve = np.log(cluster_curve)
    assert np.all(np.diff(log_curve) < 0)
    halvings = (log_curve[0] - log_curve[-1]) / np.log(2)
    assert halvings > 3  # more than 3 halvings over 7 years
    # The MPP comparator never catches up at any sampled premium.
    for year in YEARS:
        for premium in PREMIUMS:
            assert rows[year]["mpp"][premium] > rows[year]["cluster"]
    # SoC's power frugality wins the 4-year TCO per FLOPS by 2008 even
    # though both are cheap to buy per FLOPS.
    assert tco["soc"]["tco4_per_gf"] < tco["conventional"]["tco4_per_gf"]
    # Power is a visible fraction of conventional TCO by 2008.
    conventional_power_share = 1 - (tco["conventional"]["purchase_per_gf"]
                                    / tco["conventional"]["tco4_per_gf"])
    assert conventional_power_share > 0.15
    report.add_note(f"cluster $/GFLOPS falls {np.exp(log_curve[0]-log_curve[-1]):.0f}x "
                    "over 2003-10; 4-year power+cooling is "
                    f"{conventional_power_share:.0%} of conventional TCO by "
                    "2008 — why the keynote's power curve belongs next to "
                    "the cost curve")
    show(report)
