"""E21 — the failure-detector timeout trade-off: detect fast and be
wrong, or detect slow and pay zombies.

The detection-driven campaign replaces E20's oracle with a heartbeat
monitor running through the same fabric as the application.  A link
outage silences a perfectly healthy node for 1 ms; a real crash strikes
a different rank later.  Sweeping the detector's dead-declaration
timeout (in heartbeat intervals) exposes the classic trade-off:

* **tight timeouts** declare the partitioned node dead (false
  positives, each costing a spurious rollback) but detect the real
  crash almost immediately;
* **loose timeouts** ride out the partition (no false positives) but
  let the dead node's peers spin for milliseconds before rollback —
  mean time-to-detect (MTTD) and lost work grow with the timeout.

A phi-accrual row shows the adaptive detector landing mid-curve
without hand-tuned absolute thresholds.

Shape assertions: every configuration — including every spurious
rollback — recovers bit-identically; MTTD increases monotonically with
the timeout; false deaths are non-increasing; the tightest timeout
produces at least one false death and the loosest none; detector
metrics (MTTD, false positives, availability) are published through
``repro.obs``.
"""

import math

import repro.apps.campaigns  # noqa: F401  (registers the kernels)
from repro.analysis import ExperimentReport, Series, Table
from repro.fault import (
    CampaignSpec,
    LinkFaultSpec,
    NodeFaultSpec,
    run_campaign,
)
from repro.health import DetectionSpec
from repro.obs import Observability

RANKS = 4
HEARTBEAT = 1e-4
#: Dead-declaration timeout, in heartbeat intervals.
TIMEOUT_MULTIPLIERS = [2, 4, 8, 16]

#: Severs host 1's only access link for 1 ms — longer than every tight
#: timeout's patience, shorter than the loosest — so tight detectors
#: falsely declare node 1 dead while application traffic survives on
#: reliable retries.
PARTITION = LinkFaultSpec(start=6e-4, duration=1e-3,
                          a=("h", 1), b=("s", 0))

#: The real crash, after the partition has healed.
CRASH = NodeFaultSpec(time=2.5e-3, rank=2)


def make_spec(detection, name):
    """The E21 campaign: one partition, one real crash, one detector."""
    return CampaignSpec(
        kernel="stencil2d", ranks=RANKS,
        name=name,
        app_args=(("n", 12), ("iterations", 6)),
        node_faults=(CRASH,),
        link_faults=(PARTITION,),
        checkpoint_write_seconds=1e-4,
        restart_seconds=2e-4,
        seed=7,
        detection=detection,
    )


def fixed_detection(multiplier):
    """Fixed-timeout spec: dead after ``multiplier`` silent intervals."""
    return DetectionSpec(
        detector="fixed",
        heartbeat_interval=HEARTBEAT,
        suspect_after=multiplier * HEARTBEAT / 2.0,
        dead_after=multiplier * HEARTBEAT,
    )


def run_sweep():
    """Campaign report per detector configuration."""
    rows = {}
    for multiplier in TIMEOUT_MULTIPLIERS:
        rows[f"fixed x{multiplier}"] = run_campaign(
            make_spec(fixed_detection(multiplier),
                      f"e21-fixed-{multiplier}"))
    rows["phi accrual"] = run_campaign(
        make_spec(DetectionSpec(detector="phi",
                                heartbeat_interval=HEARTBEAT),
                  "e21-phi"))
    return rows


def test_e21_detection_tradeoff(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E21", "failure-detector timeout vs lost work and false "
               "positives (2D stencil, 4 ranks, 1 ms partition)",
        "tight timeouts buy fast detection with spurious rollbacks; "
        "loose timeouts buy certainty with zombie time — and every "
        "point on the curve recovers bit-identically",
    )
    table = Table(["detector", "deaths", "false", "MTTD (ms)",
                   "lost work (ms)", "availability", "goodput",
                   "bit-identical"],
                  formats={"MTTD (ms)": "{:.3f}",
                           "lost work (ms)": "{:.3f}",
                           "availability": "{:.4f}",
                           "goodput": "{:.3f}"})
    for label, outcome in rows.items():
        detection = outcome.faulty.detection
        table.add_row([
            label,
            len(detection.detections),
            detection.false_deaths,
            detection.mttd_seconds * 1e3,
            outcome.faulty.lost_work_seconds * 1e3,
            detection.availability,
            outcome.goodput,
            outcome.answers_match,
        ])
    report.add_table(table)
    fixed_labels = [f"fixed x{m}" for m in TIMEOUT_MULTIPLIERS]
    report.add_series(
        [Series("MTTD (ms)",
                x=TIMEOUT_MULTIPLIERS,
                y=[rows[label].faulty.detection.mttd_seconds * 1e3
                   for label in fixed_labels]),
         Series("false deaths",
                x=TIMEOUT_MULTIPLIERS,
                y=[float(rows[label].faulty.detection.false_deaths)
                   for label in fixed_labels])],
        x_label="dead-after timeout (heartbeat intervals)",
        title="the detection trade-off")
    show(report)

    # Shape claims -----------------------------------------------------
    # Safety: every rollback — real or spurious — is bit-identical.
    for outcome in rows.values():
        assert outcome.answers_match
        assert outcome.faulty.detection is not None

    mttd = [rows[label].faulty.detection.mttd_seconds
            for label in fixed_labels]
    false_deaths = [rows[label].faulty.detection.false_deaths
                    for label in fixed_labels]
    # The real crash is detected under every configuration.
    assert all(not math.isnan(value) for value in mttd)
    # Looser timeouts detect strictly later...
    assert all(a < b for a, b in zip(mttd, mttd[1:]))
    # ...but suffer no more false positives.
    assert all(a >= b for a, b in zip(false_deaths, false_deaths[1:]))
    # The trade-off's endpoints: the tightest timeout is fooled by the
    # partition, the loosest rides it out.
    assert false_deaths[0] >= 1
    assert false_deaths[-1] == 0
    # Every false death forced an extra (safe) rollback.
    for label in fixed_labels:
        outcome = rows[label]
        assert (outcome.faulty.incarnations - 1
                == len(outcome.faulty.detection.detections))


def test_e21_metrics_published():
    """Detector measurements flow through repro.obs gauges."""
    obs = Observability()
    report = run_campaign(make_spec(fixed_detection(8), "e21-metrics"),
                          obs=obs)
    assert report.answers_match
    gauges = {name: value for (name, _labels), value
              in obs.metrics.snapshot().gauges.items()}
    for name in ("health.mttd_mean_seconds", "health.deaths",
                 "health.false_deaths", "health.availability",
                 "health.heartbeats.sent"):
        assert name in gauges, f"missing gauge {name}"
    assert gauges["health.deaths"] == 2.0
    assert gauges["health.false_deaths"] == 1.0
    assert 0.9 < gauges["health.availability"] < 1.0
