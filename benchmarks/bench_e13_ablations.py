"""E13 / Table 6 — design-choice ablations.

The modelling decisions DESIGN.md calls out, each run both ways so the
choice is justified by measurement rather than assertion:

* allreduce algorithm (recursive doubling vs ring vs Rabenseifner) as a
  function of vector size — drives the CG results;
* fabric contention model on vs off under alltoall pressure — drives the
  FFT results;
* backfill reservation depth (EASY's single reservation vs conservative's
  full queue) — drives the E7 results;
* fat-tree oversubscription 1:1 vs 2:1 vs 4:1 under alltoall.
"""

import numpy as np

from repro.analysis import ExperimentReport, Table
from repro.messaging import SUM, run_spmd
from repro.network import FatTreeTopology
from repro.scheduler import (
    BatchSimulator,
    WorkloadGenerator,
    WorkloadParams,
    evaluate_schedule,
    get_policy,
)
from repro.sim import RandomStreams

RANKS = 16
ALGORITHMS = ["recursive_doubling", "ring", "rabenseifner"]
VECTOR_BYTES = [64, 8 * 1024, 1024 * 1024]


def time_allreduce(algorithm, nbytes):
    def body(comm):
        vector = np.zeros(nbytes // 8)
        start = comm.sim.now
        for _ in range(3):
            yield from comm.allreduce(vector, SUM, algorithm=algorithm)
        return (comm.sim.now - start) / 3

    outcome = run_spmd(RANKS, body, technology="infiniband_4x")
    return max(outcome.results)


def time_alltoall(topology, contention):
    def body(comm):
        payload = [np.zeros(1 << 14, dtype=np.uint8)
                   for _ in range(comm.size)]
        start = comm.sim.now
        yield from comm.alltoall(payload)
        return comm.sim.now - start

    outcome = run_spmd(16, body, technology="infiniband_4x",
                       topology=topology, contention=contention)
    return max(outcome.results)


def compute_ablations():
    collective = {
        (algorithm, nbytes): time_allreduce(algorithm, nbytes)
        for algorithm in ALGORITHMS for nbytes in VECTOR_BYTES
    }

    contention = {
        ("full", True): time_alltoall(
            FatTreeTopology(16, hosts_per_leaf=4), True),
        ("full", False): time_alltoall(
            FatTreeTopology(16, hosts_per_leaf=4), False),
        ("2:1", True): time_alltoall(
            FatTreeTopology(16, hosts_per_leaf=4, spines=2), True),
        ("4:1", True): time_alltoall(
            FatTreeTopology(16, hosts_per_leaf=4, spines=1), True),
    }

    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=128, offered_load=0.9),
        RandomStreams(seed=55))
    jobs = generator.generate(1000)
    backfill = {
        policy: evaluate_schedule(
            BatchSimulator(128, get_policy(policy)).run(jobs))
        for policy in ("fcfs", "easy", "conservative")
    }
    return collective, contention, backfill


def test_e13_ablations(benchmark, show):
    collective, contention, backfill = benchmark.pedantic(
        compute_ablations, rounds=1, iterations=1)

    report = ExperimentReport(
        "E13 / Tab. 6", "Design-choice ablations",
        "each modelling/algorithm choice is justified by running it both "
        "ways",
    )
    algo_table = Table(["bytes"] + ALGORITHMS,
                       formats={a: "{:.1f}" for a in ALGORITHMS},
                       title="allreduce time (us), 16 ranks, IB 4x")
    for nbytes in VECTOR_BYTES:
        algo_table.add_row([nbytes] + [collective[(a, nbytes)] * 1e6
                                       for a in ALGORITHMS])
    report.add_table(algo_table)

    contention_table = Table(["fabric", "contention", "alltoall us"],
                             formats={"alltoall us": "{:.1f}"},
                             title="16-rank 16 KiB alltoall")
    for (fabric, on), value in contention.items():
        contention_table.add_row([fabric, "on" if on else "off",
                                  value * 1e6])
    report.add_table(contention_table)

    backfill_table = Table(["policy", "utilization", "mean bsld"],
                           formats={"utilization": "{:.3f}",
                                    "mean bsld": "{:.1f}"},
                           title="reservation-depth ablation, rho=0.9")
    for policy, metrics in backfill.items():
        backfill_table.add_row([policy, metrics.utilization,
                                metrics.mean_bounded_slowdown])
    report.add_table(backfill_table)

    # Shape claims -----------------------------------------------------
    # Small vectors: recursive doubling (fewest rounds) wins or ties.
    small = {a: collective[(a, 64)] for a in ALGORITHMS}
    assert small["recursive_doubling"] <= min(small.values()) * 1.05
    # Large vectors: the bandwidth-optimal algorithms win clearly.
    large = {a: collective[(a, 1024 * 1024)] for a in ALGORITHMS}
    assert large["ring"] < large["recursive_doubling"] / 1.5
    assert large["rabenseifner"] < large["recursive_doubling"] / 1.5
    # Contention model only ever adds time, and oversubscription makes
    # it worse monotonically.
    assert contention[("full", True)] >= contention[("full", False)]
    assert (contention[("4:1", True)] > contention[("2:1", True)]
            > contention[("full", True)] * 0.99)
    # Reservation depth: both backfillers crush FCFS; conservative gives
    # up a little utilization vs EASY for its guarantees (or ties).
    assert backfill["easy"].utilization > backfill["fcfs"].utilization + 0.1
    assert (backfill["conservative"].utilization
            > backfill["fcfs"].utilization + 0.1)
    report.add_note("algorithm selection is size-dependent (exactly why "
                    "MPI libraries switch at thresholds); contention and "
                    "oversubscription ablations bound how much the fabric "
                    "model itself contributes to E4/E5 conclusions")
    show(report)
