"""E12 / Figure 7 — Top500-style extrapolation with the HPL model.

Keynote claim: the trajectory of commodity clusters points "toward the
trans-Petaflops performance regime" — a claim the community always reads
off the Top500 Rmax trend line.

Regenerates: HPL-model Rmax for a national-lab-class ($100M) and a
departmental-class ($2M) commodity cluster, 2003-2012, using each year's
best purchasable interconnect; the Rmax-crossing year for 1 PFLOPS; and
the HPL efficiency trend.  Shape assertions: exponential Rmax growth at
roughly the historical Top500 slope (~1.8-2x/year for fixed budget),
a petaflops Rmax inside 2008-2012 for the $100M machine (Roadrunner was
2008), and efficiency staying inside the published 50-85 % band.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series, Table
from repro.apps import HplModel
from repro.cluster import design_to_budget
from repro.tech import get_scenario

YEARS = list(np.arange(2003.0, 2012.5, 1.0))
BUDGETS = {"lab ($100M)": 100e6, "department ($2M)": 2e6}


def compute_extrapolation():
    roadmap = get_scenario("nominal")
    model = HplModel()
    series = {}
    for label, budget in BUDGETS.items():
        points = []
        for year in YEARS:
            spec = design_to_budget(budget, roadmap, year, "conventional")
            estimate = model.estimate(spec)
            points.append((year, estimate))
        series[label] = points
    return series


def test_e12_top500_extrapolation(benchmark, show):
    series = benchmark.pedantic(compute_extrapolation, rounds=1,
                                iterations=1)

    report = ExperimentReport(
        "E12 / Fig. 7", "HPL Rmax extrapolation for commodity budgets",
        "the Top500 trend carries commodity clusters into the petaflops "
        "regime before the decade's end",
    )
    report.add_series(
        [Series(label, x=[y for y, _e in points],
                y=[e.rmax_flops / 1e12 for _y, e in points])
         for label, points in series.items()],
        x_label="year", title="Rmax (TFLOPS)")
    table = Table(["year", "lab Rmax TF", "lab eff", "dept Rmax TF"],
                  formats={"year": "{:.0f}", "lab Rmax TF": "{:.0f}",
                           "lab eff": "{:.2f}", "dept Rmax TF": "{:.1f}"})
    lab = dict((y, e) for y, e in series["lab ($100M)"])
    dept = dict((y, e) for y, e in series["department ($2M)"])
    for year in YEARS:
        table.add_row([year, lab[year].rmax_flops / 1e12,
                       lab[year].efficiency,
                       dept[year].rmax_flops / 1e12])
    report.add_table(table)

    # Shape claims -----------------------------------------------------
    lab_rmax = np.array([e.rmax_flops for _y, e in series["lab ($100M)"]])
    # Exponential growth at the historical fixed-budget slope (the Moore
    # part of the Top500 slope; the rest came from growing budgets).
    yearly = (lab_rmax[-1] / lab_rmax[0]) ** (1.0 / (YEARS[-1] - YEARS[0]))
    assert 1.4 < yearly < 2.2
    # The $100M machine crosses 1 PFLOPS Rmax in 2008-2012 (Roadrunner
    # did it in 2008 at ~$120M).
    crossing = Series("rmax", x=YEARS, y=list(lab_rmax)).crossing(1e15)
    assert 2007.0 < crossing < 2012.5
    # Efficiency stays in the published commodity band throughout.
    for _label, points in series.items():
        for _year, estimate in points:
            assert 0.45 < estimate.efficiency < 0.9
    # The departmental machine trails the lab machine by a roughly
    # constant factor (same curve, shifted) — budget buys position on
    # the list, not a different slope.
    dept_rmax = np.array([e.rmax_flops for _y, e in
                          series["department ($2M)"]])
    ratios = lab_rmax / dept_rmax
    assert ratios.max() / ratios.min() < 2.0
    report.add_note(f"$100M commodity Rmax crosses 1 PFLOPS in "
                    f"{crossing:.1f} (Roadrunner: 2008.5); fixed-budget "
                    f"slope {yearly:.2f}x/yr matches the Moore component "
                    "of the historical Top500 trend")
    show(report)
