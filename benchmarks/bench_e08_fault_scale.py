"""E8 / Figure 5 — fault recovery as system scale explodes.

Keynote claim: "As system scale explodes even for moderate cost systems,
the software tools to manage them will take on new responsibilities
alleviating much of the burden" — fault recovery chief among them.

Regenerates: system MTBF, Daly-optimal checkpoint interval, and effective
(useful-work) utilization vs node count from 10 to 100,000, analytically
and with Monte-Carlo validation at selected scales.  Shape assertions:
the 1/n MTBF law, monotone efficiency collapse, and MC-vs-analytic
agreement.
"""

import numpy as np

from repro.analysis import ExperimentReport, Series, Table
from repro.fault import (
    CheckpointParams,
    ExponentialFailures,
    daly_interval,
    efficiency,
    simulate_checkpoint_run,
    system_mtbf,
)
from repro.sim import RandomStreams

NODE_MTBF = 3 * 365.25 * 86400.0     # 3 years/node, the era's rule of thumb
CHECKPOINT = 300.0                    # 5 min to drain memory to disk
RESTART = 600.0
SCALES = [10, 100, 1_000, 10_000, 100_000]
MC_SCALES = [1_000, 10_000]
MC_REPS = 12
MC_WORK = 24 * 3600.0


def compute_scaling():
    analytic = {}
    for nodes in SCALES:
        mtbf = system_mtbf(NODE_MTBF, nodes)
        params = CheckpointParams(CHECKPOINT, RESTART, mtbf)
        tau = daly_interval(params)
        analytic[nodes] = {
            "mtbf": mtbf,
            "tau": tau,
            "efficiency": efficiency(params, tau),
        }
    monte_carlo = {}
    for nodes in MC_SCALES:
        mtbf = system_mtbf(NODE_MTBF, nodes)
        params = CheckpointParams(CHECKPOINT, RESTART, mtbf)
        tau = daly_interval(params)
        runs = [
            simulate_checkpoint_run(MC_WORK, params, tau,
                                    ExponentialFailures(mtbf),
                                    RandomStreams(77), rep)
            for rep in range(MC_REPS)
        ]
        monte_carlo[nodes] = float(np.mean([r.efficiency for r in runs]))
    return analytic, monte_carlo


def test_e08_fault_scale(benchmark, show):
    analytic, monte_carlo = benchmark.pedantic(compute_scaling, rounds=1,
                                               iterations=1)

    report = ExperimentReport(
        "E8 / Fig. 5", "MTBF collapse and checkpointing at scale",
        "system MTBF falls as 1/n; without smarter recovery software, "
        "effective utilization collapses at the scales petaflops needs",
    )
    table = Table(["nodes", "system MTBF (h)", "Daly tau (min)",
                   "efficiency", "MC efficiency"],
                  formats={"system MTBF (h)": "{:.2f}",
                           "Daly tau (min)": "{:.1f}",
                           "efficiency": "{:.3f}",
                           "MC efficiency": lambda v: ("-" if v is None
                                                       else f"{v:.3f}")})
    for nodes in SCALES:
        row = analytic[nodes]
        table.add_row([nodes, row["mtbf"] / 3600.0, row["tau"] / 60.0,
                       row["efficiency"], monte_carlo.get(nodes)])
    report.add_table(table)
    report.add_series(
        [Series("efficiency", x=[float(n) for n in SCALES],
                y=[analytic[n]["efficiency"] for n in SCALES])],
        x_label="nodes")

    # Shape claims -----------------------------------------------------
    # MTBF is exactly 1/n.
    for nodes in SCALES:
        assert analytic[nodes]["mtbf"] * nodes == NODE_MTBF
    # Efficiency collapses monotonically with scale...
    curve = [analytic[n]["efficiency"] for n in SCALES]
    assert curve == sorted(curve, reverse=True)
    # ...from near-perfect to fault-dominated.
    assert curve[0] > 0.98
    assert curve[-1] < 0.35
    # Checkpoint interval shrinks with scale (sqrt law).
    taus = [analytic[n]["tau"] for n in SCALES]
    assert taus == sorted(taus, reverse=True)
    # Monte Carlo validates the analytic curve within a few percent.
    for nodes, measured in monte_carlo.items():
        np.testing.assert_allclose(measured,
                                   analytic[nodes]["efficiency"], rtol=0.06)
    report.add_note("3-year nodes: at 10k nodes the system fails every "
                    f"{analytic[10_000]['mtbf']/3600:.1f} h and loses "
                    f"{1-analytic[10_000]['efficiency']:.0%} of its cycles "
                    "to checkpoint/restart even at the optimal interval — "
                    "the keynote's 'new responsibilities' quantified")
    show(report)
