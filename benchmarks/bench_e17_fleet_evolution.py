"""E17 / Table 10 — fleet procurement: the market-trend endgame.

Keynote claim: "The talk will conclude with a look at some more bizarre
possibilities driven by other market and product trends."  The
possibility that became standard practice: commodity churn makes the
cluster a *rolling fleet* — procurement becomes continuous, and the
machine is permanently heterogeneous.

Regenerates: 2003-2010 fleet timelines for a $2M/year budget under
rolling replacement (4-year node lifetime) and forklift replacement at
2/3/4-year cadences — time-averaged peak, end-of-decade peak, fleet
heterogeneity, and power.  Shape assertions: rolling wins the
time-average against every forklift cadence; forklift cadence has an
*interior* optimum (banking longer buys later, better silicon in bigger
chunks); heterogeneity is rolling's standing price.
"""

from repro.analysis import ExperimentReport, Series, Table
from repro.cluster import simulate_fleet, time_averaged_peak
from repro.tech import get_scenario

BUDGET = 2e6
SPAN = (2003.0, 2010.0)


def compute_fleets():
    roadmap = get_scenario("nominal")
    timelines = {
        "rolling (4y life)": simulate_fleet(
            roadmap, *SPAN, BUDGET, strategy="rolling", lifetime_years=4.0),
    }
    for interval in (2.0, 3.0, 4.0):
        timelines[f"forklift {interval:.0f}y"] = simulate_fleet(
            roadmap, *SPAN, BUDGET, strategy="forklift",
            forklift_interval_years=interval)
    return timelines


def test_e17_fleet_evolution(benchmark, show):
    timelines = benchmark(compute_fleets)

    report = ExperimentReport(
        "E17 / Tab. 10", "Procurement strategies for a commodity fleet",
        "commodity churn turns the cluster into a rolling, heterogeneous "
        "fleet — continuous procurement beats episodic replacement",
    )
    table = Table(["strategy", "time-avg peak (TF)", "2010 peak (TF)",
                   "max cohorts", "2010 power (kW)"],
                  formats={"time-avg peak (TF)": "{:.0f}",
                           "2010 peak (TF)": "{:.0f}",
                           "2010 power (kW)": "{:.0f}"})
    summary = {}
    for label, timeline in timelines.items():
        average = time_averaged_peak(timeline)
        summary[label] = average
        table.add_row([
            label,
            average / 1e12,
            timeline[-1].peak_flops / 1e12,
            max(fy.cohort_count for fy in timeline),
            timeline[-1].power_watts / 1e3,
        ])
    report.add_table(table)
    report.add_series(
        [Series(label, x=[fy.year for fy in timeline],
                y=[fy.peak_flops / 1e12 for fy in timeline])
         for label, timeline in timelines.items()],
        x_label="year", title="fleet peak (TFLOPS)")

    # Shape claims -----------------------------------------------------
    rolling = summary["rolling (4y life)"]
    forklifts = {label: value for label, value in summary.items()
                 if label.startswith("forklift")}
    # Rolling beats every forklift cadence on lived capability.
    assert all(rolling > value for value in forklifts.values())
    # Forklift cadence has an interior optimum over this horizon.
    assert forklifts["forklift 3y"] > forklifts["forklift 2y"]
    assert forklifts["forklift 3y"] > forklifts["forklift 4y"]
    # Heterogeneity is the price: the rolling fleet carries 4 hardware
    # generations at steady state; forklifts carry 1.
    rolling_timeline = timelines["rolling (4y life)"]
    assert max(fy.cohort_count for fy in rolling_timeline) == 4
    for label, timeline in timelines.items():
        if label.startswith("forklift"):
            assert max(fy.cohort_count for fy in timeline) == 1
    # Rolling never goes dark: its peak is monotone non-decreasing.
    peaks = [fy.peak_flops for fy in rolling_timeline]
    assert peaks == sorted(peaks)
    report.add_note(f"rolling averages {rolling/1e12:.0f} TF vs the best "
                    f"forklift's {max(forklifts.values())/1e12:.0f} TF on "
                    "the same dollars, at the cost of 4 concurrent "
                    "hardware generations — the heterogeneity burden the "
                    "keynote's system-software thread inherits")
    show(report)
