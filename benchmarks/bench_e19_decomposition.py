"""E19 / Table 12 — decomposition ablation: 1D slabs vs 2D blocks.

The surface-to-volume argument every parallel-programming course of the
era taught, measured end-to-end: a row-decomposed (1D) stencil moves two
O(n) halo rows per rank per iteration regardless of scale, while a
2D-block decomposition moves four O(n/√p) edges.  1D wins at small scale
(fewer, larger messages; latency counts), 2D wins at large scale (the
perimeter shrinks) — the crossover is the lesson.

Regenerates: 1D vs 2D stencil time at p = 4..64 on Gigabit Ethernet and
InfiniBand 4x, 2048² grid, roofline-free flat compute.  Shape
assertions: 2D wins at 64 ranks on both fabrics; the 2D advantage grows
monotonically with scale; and the advantage is larger on the
higher-latency fabric's *bandwidth* side (GigE) than on IB at the
largest scale.
"""

from repro.analysis import ExperimentReport, Series, Table
from repro.apps import ComputeCharge, run_stencil, run_stencil2d

N = 2048
ITERATIONS = 3
RANKS = [4, 16, 64]
FABRICS = ["gigabit_ethernet", "infiniband_4x"]


def charge():
    return ComputeCharge(effective_flops=3e9)


def measure():
    """elapsed[fabric][(decomposition, ranks)]"""
    results = {}
    for fabric in FABRICS:
        per = {}
        for p in RANKS:
            per[("1d", p)] = run_stencil(
                p, n=N, iterations=ITERATIONS, charge=charge(),
                technology=fabric).elapsed
            per[("2d", p)] = run_stencil2d(
                p, n=N, iterations=ITERATIONS, charge=charge(),
                technology=fabric).elapsed
        results[fabric] = per
    return results


def test_e19_decomposition(benchmark, show):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = ExperimentReport(
        "E19 / Tab. 12", "Stencil decomposition: 1D slabs vs 2D blocks",
        "surface-to-volume: block decompositions win once the machine is "
        "big enough for perimeters to beat slab edges",
    )
    for fabric in FABRICS:
        table = Table(["ranks", "1D (ms)", "2D (ms)", "2D advantage"],
                      formats={"1D (ms)": "{:.2f}", "2D (ms)": "{:.2f}",
                               "2D advantage": "{:.2f}x"},
                      title=fabric)
        for p in RANKS:
            one = results[fabric][("1d", p)]
            two = results[fabric][("2d", p)]
            table.add_row([p, one * 1e3, two * 1e3, one / two])
        report.add_table(table)
    report.add_series(
        [Series(fabric, x=[float(p) for p in RANKS],
                y=[results[fabric][("1d", p)] / results[fabric][("2d", p)]
                   for p in RANKS])
         for fabric in FABRICS],
        x_label="ranks", title="1D/2D time ratio (>1 means 2D wins)")

    # Shape claims -----------------------------------------------------
    for fabric in FABRICS:
        advantage = [results[fabric][("1d", p)] / results[fabric][("2d", p)]
                     for p in RANKS]
        # The 2D advantage grows with scale...
        assert advantage == sorted(advantage)
        # ...and 2D wins outright at 64 ranks.
        assert advantage[-1] > 1.0
    # On the bandwidth-starved fabric the perimeter shrinkage matters
    # more: GigE's 64-rank advantage exceeds IB's.
    gige_advantage = (results["gigabit_ethernet"][("1d", 64)]
                      / results["gigabit_ethernet"][("2d", 64)])
    ib_advantage = (results["infiniband_4x"][("1d", 64)]
                    / results["infiniband_4x"][("2d", 64)])
    assert gige_advantage > ib_advantage
    report.add_note(f"at 64 ranks 2D beats 1D by {gige_advantage:.1f}x on "
                    f"GigE and {ib_advantage:.1f}x on IB-4x — the "
                    "surface-to-volume crossover lands where the textbook "
                    "says, and matters most on the cheapest fabric")
    show(report)
