"""E15 / Table 8 — batch operation under failures: the integrated story.

Keynote claim (the two software threads joined): resource management and
fault recovery are one problem in production — the scheduler keeps a
*failing* machine busy, and checkpoint restart decides how much of the
killed work comes back.

Regenerates: goodput utilization, waste fraction, and mean response of a
1024-node machine running a Feitelson workload under EASY backfilling,
sweeping node MTBF (10y → 0.25y, i.e. system MTBF ~3.5 days → ~2 h) with
and without hourly checkpoint restart.  Shape assertions: waste grows as
MTBF falls; checkpointing recovers most of it; goodput with checkpointing
degrades gracefully where scratch-restart collapses.
"""

from repro.analysis import ExperimentReport, Series, Table
from repro.scheduler import (
    FaultyBatchSimulator,
    WorkloadGenerator,
    WorkloadParams,
    get_policy,
)
from repro.sim import RandomStreams

NODES = 1024
YEAR = 365.25 * 86400.0
MTBF_YEARS = [10.0, 2.0, 0.5, 0.25]
JOBS = 800


def run_sweep():
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=NODES, offered_load=0.8),
        RandomStreams(seed=41))
    jobs = generator.generate(JOBS)
    rows = {}
    for mtbf_years in MTBF_YEARS:
        for label, interval in (("scratch", None), ("hourly", 3600.0)):
            simulator = FaultyBatchSimulator(
                NODES, get_policy("easy"),
                node_mtbf_seconds=mtbf_years * YEAR,
                repair_seconds=1800.0,
                checkpoint_interval=interval,
                streams=RandomStreams(seed=97))
            rows[(mtbf_years, label)] = simulator.run(jobs)
    return rows


def test_e15_fault_aware_operation(benchmark, show):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E15 / Tab. 8", "EASY backfilling on a failing 1024-node machine",
        "scheduling and fault recovery compose: checkpoint restart keeps "
        "a failing machine's goodput near its healthy level",
    )
    table = Table(["node MTBF (y)", "recovery", "failures", "kills",
                   "waste", "goodput util", "mean resp (h)"],
                  formats={"waste": "{:.3f}", "goodput util": "{:.3f}",
                           "mean resp (h)": "{:.1f}",
                           "node MTBF (y)": "{:.2f}"})
    for mtbf_years in MTBF_YEARS:
        for label in ("scratch", "hourly"):
            result = rows[(mtbf_years, label)]
            table.add_row([mtbf_years, label, result.failures,
                           result.job_kills, result.waste_fraction,
                           result.goodput_utilization,
                           result.mean_response() / 3600.0])
    report.add_table(table)
    report.add_series(
        [Series(label, x=MTBF_YEARS,
                y=[rows[(m, label)].waste_fraction for m in MTBF_YEARS])
         for label in ("scratch", "hourly")],
        x_label="node MTBF (years)", title="waste fraction")

    # Shape claims -----------------------------------------------------
    # Waste grows as MTBF falls, for both recovery modes.
    for label in ("scratch", "hourly"):
        waste = [rows[(m, label)].waste_fraction for m in MTBF_YEARS]
        assert waste == sorted(waste)
    # Checkpointing strictly reduces waste once failures matter.
    for mtbf_years in MTBF_YEARS[1:]:
        assert (rows[(mtbf_years, "hourly")].waste_fraction
                <= rows[(mtbf_years, "scratch")].waste_fraction + 1e-12)
    # At the hostile end the difference is the machine: scratch restart
    # loses over a quarter of all cycles, hourly checkpointing less than
    # half that, and goodput stays a big step higher.
    hostile_scratch = rows[(0.25, "scratch")]
    hostile_hourly = rows[(0.25, "hourly")]
    assert hostile_scratch.waste_fraction > 0.15
    assert hostile_hourly.waste_fraction < hostile_scratch.waste_fraction / 2
    assert (hostile_hourly.goodput_utilization
            > hostile_scratch.goodput_utilization + 0.10)
    # Healthy-machine baseline: nearly nothing wasted.
    assert rows[(10.0, "hourly")].waste_fraction < 0.02
    report.add_note(f"at 0.25-year nodes (system MTBF ~2 h) scratch "
                    f"restart wastes {hostile_scratch.waste_fraction:.0%} "
                    f"of all cycles vs {hostile_hourly.waste_fraction:.0%} "
                    "with hourly checkpoints — recovery software, not "
                    "hardware, decides the goodput of an exploding-scale "
                    "machine")
    show(report)
