"""E3 / Table 2 — the revolutionary node structures, head to head.

Keynote claim: "Perhaps of more impact are the changes anticipated in
hardware architecture including blade technology, system and SMP on a
chip, [and] processor in memory architecture".

Regenerates: a 2006 node-architecture comparison table — attainable
GFLOPS on the reference kernels (roofline), plus GFLOPS/W, GFLOPS/$ and
GFLOPS/rack-U.  Shape assertions encode who is supposed to win what:
PIM on memory-bound kernels, conventional/SMP on raw compute, SoC on
efficiency, blade on density.
"""

from repro.analysis import ExperimentReport, Table
from repro.nodes import REFERENCE_KERNELS, RooflineModel, node_family
from repro.tech import get_scenario

YEAR = 2006.0


def compute_comparison():
    roadmap = get_scenario("nominal")
    family = node_family(roadmap, YEAR)
    rows = []
    for node in family:
        model = RooflineModel(node)
        attainable = {kernel.name: model.attainable_flops(kernel)
                      for kernel in REFERENCE_KERNELS}
        rows.append({
            "node": node,
            "attainable": attainable,
            "gflops_per_watt": node.flops_per_watt / 1e9,
            "gflops_per_dollar": node.flops_per_dollar / 1e9,
            "gflops_per_u": node.peak_flops / node.rack_units / 1e9,
        })
    return rows


def test_e03_node_architectures(benchmark, show):
    rows = benchmark(compute_comparison)
    by_arch = {row["node"].architecture: row for row in rows}

    report = ExperimentReport(
        "E3 / Tab. 2", f"Node architectures, {YEAR:.0f} roadmap point",
        "blades, SoC and PIM each win a different figure of merit; no "
        "architecture dominates",
    )
    kernel_names = [k.name for k in REFERENCE_KERNELS]
    table = Table(["arch", "peak GF", "balance F/B"] +
                  [f"{k} GF" for k in kernel_names],
                  formats={"peak GF": "{:.1f}", "balance F/B": "{:.2f}",
                           **{f"{k} GF": "{:.2f}" for k in kernel_names}})
    for row in rows:
        node = row["node"]
        table.add_row([node.architecture, node.peak_flops / 1e9,
                       node.machine_balance] +
                      [row["attainable"][k] / 1e9 for k in kernel_names])
    report.add_table(table)

    efficiency = Table(["arch", "GFLOPS/W", "GFLOPS/k$", "GFLOPS/rack-U"],
                       formats={"GFLOPS/W": "{:.3f}",
                                "GFLOPS/k$": "{:.1f}",
                                "GFLOPS/rack-U": "{:.1f}"},
                       title="efficiency figures of merit")
    for row in rows:
        efficiency.add_row([row["node"].architecture,
                            row["gflops_per_watt"],
                            row["gflops_per_dollar"] * 1e3,
                            row["gflops_per_u"]])
    report.add_table(efficiency)

    # Shape claims -----------------------------------------------------
    # PIM dominates every memory-bound kernel...
    for kernel in ("stream_triad", "spmv", "stencil27"):
        best = max(by_arch, key=lambda a: by_arch[a]["attainable"][kernel])
        assert best == "pim", f"{kernel} won by {best}, expected pim"
    # ...but loses blocked DGEMM to the fat architectures.
    assert (by_arch["smp"]["attainable"]["dgemm_blocked"]
            > by_arch["pim"]["attainable"]["dgemm_blocked"])
    # SoC wins performance/watt; blade and SoC beat conventional density.
    assert by_arch["soc"]["gflops_per_watt"] == max(
        r["gflops_per_watt"] for r in rows)
    assert by_arch["blade"]["gflops_per_u"] > by_arch["conventional"]["gflops_per_u"]
    assert by_arch["soc"]["gflops_per_u"] > by_arch["conventional"]["gflops_per_u"]
    # SMP has the highest absolute peak; the non-commodity parts (SMP,
    # PIM) pay for it in cost efficiency vs thin commodity nodes.
    assert by_arch["smp"]["node"].peak_flops == max(
        r["node"].peak_flops for r in rows)
    for premium_arch in ("smp", "pim"):
        assert (by_arch[premium_arch]["gflops_per_dollar"]
                < by_arch["conventional"]["gflops_per_dollar"])
    report.add_note("no dominator: PIM takes all memory-bound kernels, "
                    "SMP takes raw peak, SoC takes GFLOPS/W, blade/SoC "
                    "take density, thin nodes take GFLOPS/$ — exactly the "
                    "keynote's 'revolutionary structures' diversification")
    show(report)
