"""RandomStreams: reproducibility and independence."""

import numpy as np
import pytest

from repro.sim import RandomStreams


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("x").random(100)
        b = RandomStreams(seed=7).get("x").random(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=7).get("x").random(100)
        b = RandomStreams(seed=8).get("x").random(100)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(seed=3)
        forward.get("a")
        sample_forward = forward.get("b").random(50)

        backward = RandomStreams(seed=3)
        sample_backward = backward.get("b").random(50)
        assert np.array_equal(sample_forward, sample_backward)

    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=1)
        assert streams.get("x") is streams.get("x")


class TestIndependence:
    def test_named_streams_uncorrelated(self):
        streams = RandomStreams(seed=42)
        a = streams.get("alpha").standard_normal(20_000)
        b = streams.get("beta").standard_normal(20_000)
        correlation = abs(np.corrcoef(a, b)[0, 1])
        assert correlation < 0.03

    def test_fork_gives_independent_universe(self):
        base = RandomStreams(seed=9)
        fork = base.fork(1)
        a = base.get("s").random(1000)
        b = fork.get("s").random(1000)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = RandomStreams(seed=9).fork(5).get("s").random(100)
        b = RandomStreams(seed=9).fork(5).get("s").random(100)
        assert np.array_equal(a, b)

    def test_forks_differ_by_salt(self):
        base = RandomStreams(seed=9)
        a = base.fork(1).get("s").random(100)
        b = base.fork(2).get("s").random(100)
        assert not np.array_equal(a, b)


class TestBookkeeping:
    def test_names_sorted(self):
        streams = RandomStreams(seed=0)
        streams.get("zeta")
        streams.get("alpha")
        assert streams.names() == ["alpha", "zeta"]

    def test_distribution_sanity(self):
        """Uniformity check: KS-style bounds on a large sample."""
        sample = RandomStreams(seed=11).get("u").random(50_000)
        assert 0.49 < sample.mean() < 0.51
        assert sample.min() >= 0.0 and sample.max() <= 1.0
