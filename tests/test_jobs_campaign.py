"""Campaign spec validation, report plumbing, and the shared fault-plan
builder."""

import pytest

from repro.fault import LinkFaultSpec, build_fault_plan
from repro.jobs import (
    DuplicateSubmitSpec,
    JobRequest,
    JobsCampaignSpec,
    ServiceConfig,
    SupervisorCrashSpec,
    WorkerCrashSpec,
    WorkerStallSpec,
    prove_determinism,
    run_jobs_campaign,
)
from repro.sim.rng import RandomStreams

REQS = (JobRequest(tenant="t", key="a"),
        JobRequest(tenant="t", key="b"))


class TestSpecValidation:
    def test_needs_requests(self):
        with pytest.raises(ValueError, match="at least one request"):
            JobsCampaignSpec(requests=())

    def test_crash_host_must_exist(self):
        with pytest.raises(ValueError, match="total hosts"):
            JobsCampaignSpec(
                requests=REQS,
                service=ServiceConfig(workers=2, spare_workers=0),
                worker_crashes=(WorkerCrashSpec(time=1e-3, host=5),))

    def test_crash_host_cannot_be_supervisor(self):
        with pytest.raises(ValueError, match="not the"):
            WorkerCrashSpec(time=1e-3, host=0)

    def test_stall_host_must_exist(self):
        with pytest.raises(ValueError, match="total hosts"):
            JobsCampaignSpec(
                requests=REQS,
                service=ServiceConfig(workers=1, spare_workers=0),
                worker_stalls=(WorkerStallSpec(time=1e-3, host=3,
                                               duration=1e-3),))

    def test_duplicate_index_must_exist(self):
        with pytest.raises(ValueError, match="requests"):
            JobsCampaignSpec(
                requests=REQS,
                duplicate_submits=(DuplicateSubmitSpec(time=0.0,
                                                       index=2),))

    def test_supervisor_outages_cannot_overlap(self):
        with pytest.raises(ValueError, match="overlapping"):
            JobsCampaignSpec(
                requests=REQS,
                supervisor_crashes=(
                    SupervisorCrashSpec(time=1e-3, restart_after=5e-3),
                    SupervisorCrashSpec(time=2e-3, restart_after=1e-3)))

    def test_actions_past_horizon_fail_loudly(self):
        spec = JobsCampaignSpec(
            requests=REQS, horizon=1e-3,
            worker_crashes=(WorkerCrashSpec(time=5e-3, host=1),))
        with pytest.raises(ValueError, match="horizon"):
            run_jobs_campaign(spec)

    def test_unknown_kernel_fails_at_submission(self):
        spec = JobsCampaignSpec(
            requests=(JobRequest(tenant="t", key="a",
                                 kernel="no-such-kernel"),))
        with pytest.raises(KeyError, match="no-such-kernel"):
            run_jobs_campaign(spec)


class TestServiceConfigValidation:
    def test_lease_must_exceed_renew_interval(self):
        with pytest.raises(ValueError, match="renew"):
            ServiceConfig(lease_seconds=1e-3, renew_every=1e-3)

    def test_monitor_must_live_on_supervisor_host(self):
        from repro.health import DetectionSpec
        with pytest.raises(ValueError, match="monitor host"):
            ServiceConfig(detection=DetectionSpec(monitor_host=2))

    def test_total_hosts_counts_supervisor(self):
        config = ServiceConfig(workers=3, spare_workers=2)
        assert config.total_hosts == 6


class TestWithoutFaults:
    def test_clears_every_fault_class(self):
        spec = JobsCampaignSpec(
            requests=REQS, name="noisy",
            worker_crashes=(WorkerCrashSpec(time=1e-3, host=1),),
            worker_stalls=(WorkerStallSpec(time=1e-3, host=1,
                                           duration=1e-3),),
            supervisor_crashes=(SupervisorCrashSpec(time=1e-3,
                                                    restart_after=1e-3),),
            duplicate_submits=(DuplicateSubmitSpec(time=0.0, index=0),),
            drop_probability=0.1, corrupt_probability=0.1)
        clean = spec.without_faults()
        assert clean.worker_crashes == ()
        assert clean.worker_stalls == ()
        assert clean.supervisor_crashes == ()
        assert clean.link_faults == ()
        assert clean.drop_probability == 0.0
        assert clean.corrupt_probability == 0.0
        # Duplicates are client behavior, not faults: they stay.
        assert clean.duplicate_submits == spec.duplicate_submits
        assert clean.name == "noisy-clean"

    def test_topology_covers_all_hosts(self):
        spec = JobsCampaignSpec(
            requests=REQS,
            service=ServiceConfig(workers=4, spare_workers=3))
        assert spec.topology().hosts >= 8


class TestFaultPlanBuilder:
    def test_no_faults_means_no_plan(self):
        spec = JobsCampaignSpec(requests=REQS)
        assert build_fault_plan(spec.topology()) is None

    def test_unknown_link_fails_loudly(self):
        spec = JobsCampaignSpec(requests=REQS)
        with pytest.raises(ValueError, match="no such link"):
            build_fault_plan(
                spec.topology(),
                link_faults=(LinkFaultSpec(start=0.0, duration=1.0,
                                           a=("h", 0), b=("h", 99)),))

    def test_probabilistic_faults_need_streams(self):
        spec = JobsCampaignSpec(requests=REQS)
        with pytest.raises(ValueError, match="RandomStreams"):
            build_fault_plan(spec.topology(), drop_probability=0.5)
        plan = build_fault_plan(spec.topology(), drop_probability=0.5,
                                streams=RandomStreams(seed=1))
        assert plan is not None

    def test_declared_link_fault_builds_a_plan(self):
        spec = JobsCampaignSpec(requests=REQS)
        topology = spec.topology()
        leaf = next(iter(topology.graph.neighbors(("h", 0))))
        plan = build_fault_plan(
            topology,
            link_faults=(LinkFaultSpec(start=0.0, duration=1.0,
                                       a=("h", 0), b=leaf),))
        assert plan is not None


class TestDeterminismProof:
    def test_needs_two_runs(self):
        spec = JobsCampaignSpec(requests=REQS)
        with pytest.raises(ValueError, match="two runs"):
            prove_determinism(spec, runs=1)

    def test_proof_over_three_runs(self):
        spec = JobsCampaignSpec(requests=REQS, horizon=0.1)
        proof = prove_determinism(spec, runs=3)
        assert proof.identical
        assert len(proof.reports) == 3


class TestReport:
    def test_summary_mentions_the_load_bearing_numbers(self):
        report = run_jobs_campaign(
            JobsCampaignSpec(requests=REQS, name="demo", horizon=0.1))
        text = report.summary()
        assert "'demo'" in text
        assert "2 completed" in text
        assert "violations=0" in text
        assert report.clean
