"""Roofline model: ridge points, attainable rates, architecture contrasts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nodes import (
    KernelCharacter,
    NodeSpec,
    REFERENCE_KERNELS,
    RooflineModel,
    make_node,
)


def flat_node(peak=1e10, bandwidth=2e9):
    return NodeSpec(
        architecture="test", year=2005.0, peak_flops=peak, sockets=1,
        cores_per_socket=1, memory_bytes=2 * 2**30,
        memory_bandwidth=bandwidth, power_watts=100.0, cost_dollars=1000.0,
        rack_units=1.0,
    )


class TestKernelCharacter:
    def test_intensity(self):
        kernel = KernelCharacter("k", flops=100.0, bytes_moved=50.0)
        assert kernel.arithmetic_intensity == pytest.approx(2.0)

    def test_from_intensity(self):
        kernel = KernelCharacter.from_intensity("k", 0.25)
        assert kernel.arithmetic_intensity == pytest.approx(0.25)

    def test_working_set_defaults_to_traffic(self):
        kernel = KernelCharacter("k", flops=10.0, bytes_moved=40.0)
        assert kernel.working_set_bytes == 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelCharacter("k", flops=0.0, bytes_moved=1.0)
        with pytest.raises(ValueError):
            KernelCharacter.from_intensity("k", -1.0)

    def test_reference_kernels_span_the_ridge(self):
        intensities = [k.arithmetic_intensity for k in REFERENCE_KERNELS]
        assert min(intensities) < 0.5 < 8.0 <= max(intensities)


class TestRoofline:
    def test_ridge_point(self):
        model = RooflineModel(flat_node(peak=1e10, bandwidth=2e9))
        assert model.ridge_point == pytest.approx(5.0)

    def test_memory_bound_below_ridge(self):
        model = RooflineModel(flat_node())
        # Big working set so the DRAM roof applies.
        kernel = KernelCharacter("k", flops=1e9, bytes_moved=1e9,
                                 working_set_bytes=1e9)
        assert model.is_memory_bound(kernel)
        assert model.attainable_flops(kernel) == pytest.approx(2e9)

    def test_compute_bound_above_ridge(self):
        model = RooflineModel(flat_node())
        kernel = KernelCharacter("k", flops=1e10, bytes_moved=1e8,
                                 working_set_bytes=1e9)
        assert not model.is_memory_bound(kernel)
        assert model.attainable_flops(kernel) == pytest.approx(1e10)

    def test_cache_resident_kernel_rides_higher_roof(self):
        node = flat_node()
        model = RooflineModel(node)
        streaming = KernelCharacter("s", flops=1e6, bytes_moved=4e6,
                                    working_set_bytes=1e9)
        cached = KernelCharacter("c", flops=1e6, bytes_moved=4e6,
                                 working_set_bytes=8e3)  # fits in L1
        assert (model.attainable_flops(cached)
                > model.attainable_flops(streaming))

    def test_execution_time_is_flops_over_attainable(self):
        model = RooflineModel(flat_node())
        kernel = KernelCharacter("k", flops=4e9, bytes_moved=4e9,
                                 working_set_bytes=4e9)
        expected = 4e9 / model.attainable_flops(kernel)
        assert model.execution_time(kernel) == pytest.approx(expected)

    def test_attainable_curve_monotone_then_flat(self):
        model = RooflineModel(flat_node())
        intensities = np.logspace(-2, 3, 50)
        curve = model.attainable_curve(intensities)
        assert np.all(np.diff(curve) >= -1e-9)          # non-decreasing
        assert curve[-1] == pytest.approx(1e10)          # hits peak
        assert curve[0] == pytest.approx(intensities[0] * 2e9)

    def test_curve_rejects_nonpositive_intensity(self):
        model = RooflineModel(flat_node())
        with pytest.raises(ValueError):
            model.attainable_curve([0.0, 1.0])

    @given(st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=100, deadline=None)
    def test_attainable_never_exceeds_either_roof(self, intensity):
        node = flat_node()
        model = RooflineModel(node)
        kernel = KernelCharacter.from_intensity("k", intensity)
        attainable = model.attainable_flops(kernel)
        assert attainable <= node.peak_flops + 1e-6
        assert attainable <= (intensity * model.bandwidth_for(kernel)
                              * (1 + 1e-9))
        assert 0 < model.efficiency(kernel) <= 1.0


class TestArchitectureContrast:
    """The E3/E10 headline shapes, asserted as invariants."""

    def test_pim_wins_left_of_conventional_ridge(self, nominal):
        pim = RooflineModel(make_node("pim", nominal, 2006))
        conventional = RooflineModel(make_node("conventional", nominal, 2006))
        memory_bound = KernelCharacter.from_intensity("triad", 1 / 12,
                                                      flops=1e9)
        assert (pim.attainable_flops(memory_bound)
                > 10 * conventional.attainable_flops(memory_bound))

    def test_conventional_wins_compute_bound(self, nominal):
        pim = RooflineModel(make_node("pim", nominal, 2006))
        conventional = RooflineModel(make_node("conventional", nominal, 2006))
        dgemm = KernelCharacter.from_intensity("dgemm", 32.0, flops=1e9)
        assert (conventional.attainable_flops(dgemm)
                > pim.attainable_flops(dgemm))

    def test_crossover_exists_between_ridges(self, nominal):
        """Somewhere between the two ridge points the winner flips."""
        pim = RooflineModel(make_node("pim", nominal, 2006))
        conventional = RooflineModel(make_node("conventional", nominal, 2006))
        intensities = np.logspace(-2, 2, 200)
        pim_wins = (pim.attainable_curve(intensities)
                    > conventional.attainable_curve(intensities))
        assert pim_wins[0] and not pim_wins[-1]
        flip = int(np.argmin(pim_wins))
        crossover = intensities[flip]
        assert pim.ridge_point / 2 < crossover < conventional.ridge_point * 2
