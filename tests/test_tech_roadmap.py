"""Roadmap scenarios: anchors, derived curves, scenario ordering."""

import pytest

from repro.tech import BASE_YEAR, SCENARIOS, get_scenario, technology_curve
from repro.tech.roadmap import ANCHORS_2002, TechnologyRoadmap


class TestAnchors:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_scenario_agrees_at_base_year(self, scenario):
        """All scenarios share the 2002 operating point; they only differ
        in growth rates."""
        roadmap = get_scenario(scenario)
        for quantity, anchor in ANCHORS_2002.items():
            assert roadmap.value(quantity, BASE_YEAR) == pytest.approx(anchor)

    def test_2002_node_is_dual_xeon_class(self):
        roadmap = get_scenario("nominal")
        assert roadmap.value("node_peak_flops", BASE_YEAR) == pytest.approx(9.6e9)
        assert roadmap.value("node_cost_dollars", BASE_YEAR) == 3000.0


class TestScenarioOrdering:
    def test_aggressive_beats_nominal_beats_conservative(self):
        """The defining property of the scenario family."""
        year = 2008.0
        conservative = get_scenario("conservative")
        nominal = get_scenario("nominal")
        aggressive = get_scenario("aggressive")
        for roadmaps in [(conservative, nominal), (nominal, aggressive)]:
            low, high = roadmaps
            assert (low.value("node_peak_flops", year)
                    < high.value("node_peak_flops", year))
            assert (low.value("link_bandwidth_bytes", year)
                    < high.value("link_bandwidth_bytes", year))

    def test_latency_improves_in_every_scenario(self):
        for name in SCENARIOS:
            roadmap = get_scenario(name)
            assert (roadmap.value("link_latency_seconds", 2008)
                    < roadmap.value("link_latency_seconds", 2003))

    def test_conservative_density_stalls_after_2007(self):
        roadmap = get_scenario("conservative")
        assert roadmap.value("node_size_rack_units", 2009) == pytest.approx(
            roadmap.value("node_size_rack_units", 2007.5))


class TestDerivedCurves:
    def test_dollars_per_flops_falls(self, nominal):
        assert nominal.dollars_per_flops(2008) < nominal.dollars_per_flops(2003)

    def test_watts_per_flops_falls(self, nominal):
        assert nominal.watts_per_flops(2008) < nominal.watts_per_flops(2003)

    def test_machine_balance_worsens(self, nominal):
        """Memory bandwidth lags flops: bytes/flops shrinks — the memory
        wall that motivates PIM."""
        assert nominal.bytes_per_flops(2008) < nominal.bytes_per_flops(2003)

    def test_density_improves(self, nominal):
        assert nominal.flops_per_rack_unit(2008) > nominal.flops_per_rack_unit(2003)


class TestPetaflopsArithmetic:
    def test_year_of_cluster_peak_monotone_in_node_count(self, nominal):
        sooner = nominal.year_of_cluster_peak(1e15, 50_000)
        later = nominal.year_of_cluster_peak(1e15, 10_000)
        assert sooner < later

    def test_petaflops_lands_mid_decade_for_large_machines(self, nominal):
        """25k nodes reach 1 PFLOPS peak somewhere in 2004-2010 under the
        18-month cadence — the keynote's 'this decade' claim."""
        year = nominal.year_of_cluster_peak(1e15, 25_000)
        assert 2004.0 < year < 2010.0

    def test_affordable_nodes_scale_with_budget(self, nominal):
        small = nominal.affordable_nodes(1e6, 2005)
        large = nominal.affordable_nodes(1e7, 2005)
        assert 9 <= large / max(small, 1) <= 11

    def test_affordable_nodes_validation(self, nominal):
        with pytest.raises(ValueError):
            nominal.affordable_nodes(-5.0, 2005)
        with pytest.raises(ValueError):
            nominal.year_of_cluster_peak(1e15, 0)


class TestRoadmapContract:
    def test_unknown_scenario_lists_options(self):
        with pytest.raises(KeyError, match="nominal"):
            get_scenario("wildly_optimistic")

    def test_unknown_quantity_lists_options(self, nominal):
        with pytest.raises(KeyError, match="node_peak_flops"):
            nominal.quantity("node_speed")

    def test_missing_projection_rejected(self, nominal):
        with pytest.raises(ValueError, match="missing"):
            TechnologyRoadmap(name="broken", projections={})

    def test_curve_helper_matches_roadmap(self, nominal):
        years = [2003.0, 2005.0, 2007.0]
        curve = technology_curve(nominal, "node_peak_flops", years)
        for year, value in zip(years, curve):
            assert value == pytest.approx(nominal.value("node_peak_flops", year))

    def test_derived_curve_by_name(self, nominal):
        curve = technology_curve(nominal, "dollars_per_flops", [2004.0])
        assert curve[0] == pytest.approx(nominal.dollars_per_flops(2004.0))
