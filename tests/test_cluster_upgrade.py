"""Fleet evolution: rolling vs forklift procurement."""

import pytest

from repro.cluster import simulate_fleet, time_averaged_peak
from repro.cluster.upgrade import Cohort
from repro.nodes import make_node


class TestFleetMechanics:
    def test_rolling_retires_at_lifetime(self, nominal):
        timeline = simulate_fleet(nominal, 2003, 2010, 1e6,
                                  strategy="rolling", lifetime_years=3.0)
        # After warm-up the fleet holds exactly `lifetime` cohorts.
        assert [fy.cohort_count for fy in timeline[:3]] == [1, 2, 3]
        assert all(fy.cohort_count == 3 for fy in timeline[3:])
        for fleet_year in timeline:
            for cohort in fleet_year.cohorts:
                assert fleet_year.year - cohort.purchase_year < 3.0

    def test_forklift_single_cohort_and_cadence(self, nominal):
        timeline = simulate_fleet(nominal, 2003, 2010, 1e6,
                                  strategy="forklift",
                                  forklift_interval_years=3.0)
        assert all(fy.cohort_count == 1 for fy in timeline)
        purchases = [fy.year for fy in timeline if fy.spent_dollars > 0]
        assert purchases == [2003.0, 2006.0, 2009.0]
        # Banked budget is spent in full at each forklift.
        assert timeline[3].spent_dollars == pytest.approx(3e6)

    def test_rolling_spends_every_year(self, nominal):
        timeline = simulate_fleet(nominal, 2003, 2008, 1e6,
                                  strategy="rolling")
        assert all(fy.spent_dollars == pytest.approx(1e6)
                   for fy in timeline)

    def test_budgets_buy_more_later(self, nominal):
        """Constant dollars + falling $/FLOPS: each rolling cohort out-
        peaks the previous one."""
        timeline = simulate_fleet(nominal, 2003, 2010, 1e6,
                                  strategy="rolling")
        newest = [fy.cohorts[-1].peak_flops for fy in timeline]
        assert newest == sorted(newest)

    def test_validation(self, nominal):
        with pytest.raises(ValueError):
            simulate_fleet(nominal, 2003, 2010, -1.0)
        with pytest.raises(ValueError):
            simulate_fleet(nominal, 2010, 2003, 1e6)
        with pytest.raises(ValueError):
            simulate_fleet(nominal, 2003, 2010, 1e6, strategy="teleport")
        with pytest.raises(ValueError):
            simulate_fleet(nominal, 2003, 2010, 1e6, lifetime_years=0.0)
        with pytest.raises(ValueError):
            time_averaged_peak([])


class TestStrategyTrade:
    def test_rolling_beats_forklift_on_time_average(self, nominal):
        """The headline: same dollars, more lived capability."""
        rolling = simulate_fleet(nominal, 2003, 2010, 2e6,
                                 strategy="rolling")
        forklift = simulate_fleet(nominal, 2003, 2010, 2e6,
                                  strategy="forklift",
                                  forklift_interval_years=3.0)
        assert (time_averaged_peak(rolling)
                > time_averaged_peak(forklift))

    def test_rolling_beats_every_forklift_cadence(self, nominal):
        """Forklift cadence is non-monotone (banking longer buys later,
        better tech in bigger chunks — there is an interior optimum),
        but no cadence catches the rolling fleet over this horizon."""
        rolling = time_averaged_peak(simulate_fleet(
            nominal, 2003, 2010, 2e6, strategy="rolling"))
        forklift = {
            interval: time_averaged_peak(simulate_fleet(
                nominal, 2003, 2010, 2e6, strategy="forklift",
                forklift_interval_years=interval))
            for interval in (2.0, 3.0, 4.0)
        }
        assert all(rolling > value for value in forklift.values())
        # The interior optimum: 3-year banking beats both neighbours here.
        assert forklift[3.0] > forklift[2.0]
        assert forklift[3.0] > forklift[4.0]

    def test_heterogeneity_is_the_price(self, nominal):
        rolling = simulate_fleet(nominal, 2003, 2010, 2e6,
                                 strategy="rolling", lifetime_years=4.0)
        forklift = simulate_fleet(nominal, 2003, 2010, 2e6,
                                  strategy="forklift")
        assert max(fy.cohort_count for fy in rolling) > \
            max(fy.cohort_count for fy in forklift)


class TestCohort:
    def test_aggregates(self, nominal):
        node = make_node("conventional", nominal, 2005)
        cohort = Cohort(2005.0, 10, node)
        assert cohort.peak_flops == pytest.approx(10 * node.peak_flops)
        assert cohort.power_watts == pytest.approx(10 * node.power_watts)
