"""Fault-aware batch operation: failures, repairs, checkpoint restart."""

import math

import pytest

from repro.scheduler import (
    FaultyBatchSimulator,
    Job,
    WorkloadGenerator,
    WorkloadParams,
    get_policy,
)
from repro.sim import RandomStreams

YEAR = 365.25 * 86400.0


def workload(count=200, nodes=64, load=0.7, seed=3):
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=nodes, offered_load=load),
        RandomStreams(seed))
    return generator.generate(count)


class TestNoFailureEquivalence:
    def test_infinite_mtbf_matches_plain_simulator(self):
        """With failures off, the fault-aware simulator must reproduce
        the plain simulator's outcome exactly."""
        from repro.scheduler import BatchSimulator, evaluate_schedule

        jobs = workload()
        plain = BatchSimulator(64, get_policy("easy")).run(jobs)
        faulty = FaultyBatchSimulator(64, get_policy("easy"),
                                      math.inf).run(jobs)
        assert faulty.failures == 0
        assert faulty.job_kills == 0
        assert faulty.lost_node_seconds == 0.0
        assert len(faulty.completions) == len(jobs)
        plain_metrics = evaluate_schedule(plain)
        assert faulty.goodput_utilization == pytest.approx(
            plain_metrics.utilization, rel=1e-6)
        for record in plain.records:
            submit, end = faulty.completions[record.job.job_id]
            assert end == pytest.approx(record.end_time)


class TestFailureSemantics:
    def test_all_jobs_still_finish(self):
        result = FaultyBatchSimulator(
            64, get_policy("easy"), node_mtbf_seconds=0.02 * YEAR,
            streams=RandomStreams(5)).run(workload())
        assert len(result.completions) == 200
        assert result.failures > 0

    def test_goodput_conserved(self):
        """Total goodput equals total submitted work, failures or not —
        everything eventually completes and durable work is credited
        exactly once."""
        jobs = workload(count=150)
        total_work = sum(job.node_seconds for job in jobs)
        for ckpt in (None, 1800.0):
            result = FaultyBatchSimulator(
                64, get_policy("easy"), node_mtbf_seconds=0.1 * YEAR,
                checkpoint_interval=ckpt,
                streams=RandomStreams(8)).run(jobs)
            assert result.goodput_node_seconds == pytest.approx(total_work,
                                                                rel=1e-9)

    def test_failures_extend_responses(self):
        jobs = workload(count=150)
        clean = FaultyBatchSimulator(64, get_policy("easy"),
                                     math.inf).run(jobs)
        faulty = FaultyBatchSimulator(
            64, get_policy("easy"), node_mtbf_seconds=0.05 * YEAR,
            streams=RandomStreams(4)).run(jobs)
        assert faulty.job_kills > 0
        assert faulty.mean_response() > clean.mean_response()

    def test_checkpointing_reduces_waste(self):
        jobs = workload(count=200)
        outcomes = {}
        for label, ckpt in (("none", None), ("hourly", 3600.0)):
            outcomes[label] = FaultyBatchSimulator(
                64, get_policy("easy"), node_mtbf_seconds=0.02 * YEAR,
                checkpoint_interval=ckpt,
                streams=RandomStreams(11)).run(jobs)
        assert (outcomes["hourly"].lost_node_seconds
                < outcomes["none"].lost_node_seconds)
        assert (outcomes["hourly"].waste_fraction
                < outcomes["none"].waste_fraction)

    def test_lower_mtbf_more_waste(self):
        jobs = workload(count=150)

        def waste(mtbf):
            return FaultyBatchSimulator(
                64, get_policy("easy"), node_mtbf_seconds=mtbf,
                streams=RandomStreams(13)).run(jobs).waste_fraction

        assert waste(0.02 * YEAR) > waste(0.5 * YEAR)

    def test_wide_jobs_die_more(self):
        """Kill probability proportional to width: with one huge job and
        many tiny ones running, the huge one takes most of the hits."""
        jobs = [Job(0, 0.0, nodes=60, runtime=50_000.0, estimate=60_000.0)]
        jobs += [Job(i, 0.0, nodes=1, runtime=50_000.0, estimate=60_000.0)
                 for i in range(1, 5)]
        result = FaultyBatchSimulator(
            64, get_policy("fcfs"), node_mtbf_seconds=30_000.0 * 64,
            checkpoint_interval=10_000.0,
            streams=RandomStreams(17)).run(jobs)
        # All jobs complete despite the hostile environment.
        assert len(result.completions) == 5

    def test_virtual_time_guard(self):
        """A machine whose MTBF is far below the only job's runtime can
        never finish without checkpointing — the guard must fire."""
        job = Job(0, 0.0, nodes=4, runtime=1e6, estimate=1e6)
        simulator = FaultyBatchSimulator(
            4, get_policy("fcfs"), node_mtbf_seconds=4e4,  # sys MTBF 1e4
            repair_seconds=10.0, streams=RandomStreams(23))
        with pytest.raises(RuntimeError, match="guard|drain"):
            simulator.run([job], max_virtual_seconds=3e7)

    def test_checkpoint_rescues_impossible_job(self):
        """The same hopeless job finishes once checkpoint restart keeps
        its durable progress."""
        job = Job(0, 0.0, nodes=4, runtime=1e6, estimate=1e6)
        result = FaultyBatchSimulator(
            4, get_policy("fcfs"), node_mtbf_seconds=4e4,
            repair_seconds=10.0, checkpoint_interval=2000.0,
            streams=RandomStreams(23)).run([job])
        assert 0 in result.completions
        assert result.job_kills > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultyBatchSimulator(0, get_policy("fcfs"), 1e6)
        with pytest.raises(ValueError):
            FaultyBatchSimulator(4, get_policy("fcfs"), 0.0)
        with pytest.raises(ValueError):
            FaultyBatchSimulator(4, get_policy("fcfs"), 1e6,
                                 checkpoint_interval=0.0)
        with pytest.raises(ValueError):
            FaultyBatchSimulator(4, get_policy("fcfs"), 1e6).run([])


class TestEdgeCases:
    """Deterministic single-event scenarios, built by replaying the
    simulator's RNG stream (first draw = first failure time, a gap draw
    precedes the struck-in-use uniform) to place strikes exactly."""

    def draws(self, seed, mtbf, total_nodes):
        rng = RandomStreams(seed).get("scheduler.failures")
        mean = mtbf / total_nodes
        first = float(rng.exponential(mean))
        gap = float(rng.exponential(mean))
        return first, first + gap

    def test_idle_node_strike_kills_nothing(self):
        """A failure with nothing running must strike idle: capacity
        dips, no job dies, no work is lost."""
        mtbf, total = 40_000.0, 4
        first, second = self.draws(0, mtbf, total)
        assert second > first + 102.0  # only the first strike matters
        # Submit mid-repair: the machine is idle at the strike.
        job = Job(0, first + 0.5, nodes=4, runtime=100.0, estimate=100.0)
        result = FaultyBatchSimulator(
            total, get_policy("fcfs"), node_mtbf_seconds=mtbf,
            repair_seconds=1.0, streams=RandomStreams(0)).run([job])
        assert result.failures == 1
        assert result.job_kills == 0
        assert result.lost_node_seconds == 0.0
        # The full-width job waits out the 1 s repair, nothing more.
        assert result.completions[0][1] == pytest.approx(
            first + 1.0 + 100.0)

    def test_repair_same_instant_as_completion(self):
        """A repair landing at the exact instant a job completes: both
        events batch before the scheduling pass, so a full-width
        successor starts immediately — no deadlock, no overcommit."""
        mtbf, total = 1_000_000.0, 2
        first, second = self.draws(0, mtbf, total)
        submit = first + 10.0       # strike lands while all is idle
        completion = submit + 50.0  # job 0: one node, 50 s
        repair = completion - first  # repair ends exactly at completion
        assert second > completion + 100.0
        jobs = [Job(0, submit, nodes=1, runtime=50.0, estimate=50.0),
                Job(1, completion, nodes=2, runtime=30.0, estimate=30.0)]
        result = FaultyBatchSimulator(
            total, get_policy("fcfs"), node_mtbf_seconds=mtbf,
            repair_seconds=repair, streams=RandomStreams(0)).run(jobs)
        assert result.failures == 1
        assert result.job_kills == 0
        assert result.completions[0][1] == pytest.approx(completion)
        # Job 1 needs both nodes; they are whole again at its arrival.
        assert result.completions[1][1] == pytest.approx(completion + 30.0)

    def test_stale_generation_completion_is_ignored(self):
        """A killed attempt's completion event still sits in the heap;
        when it fires during the restarted attempt it must be discarded
        by the generation check, not complete the job early."""
        mtbf, total = 20_000.0, 1
        first, second = self.draws(1, mtbf, total)
        runtime = first + 5_000.0   # strike lands mid-run
        repair = 100.0
        restart_done = first + repair + runtime
        assert second > restart_done
        # The only node is struck while the job runs, so the original
        # completion event (at ``runtime``) fires inside the restarted
        # attempt's window whenever repair < 5000.
        job = Job(0, 0.0, nodes=1, runtime=runtime, estimate=runtime)
        result = FaultyBatchSimulator(
            total, get_policy("fcfs"), node_mtbf_seconds=mtbf,
            repair_seconds=repair, streams=RandomStreams(1)).run([job])
        assert result.job_kills == 1
        assert result.completions[0][1] == pytest.approx(restart_done)
        # No checkpoint: the whole first attempt is lost, and goodput
        # credits the second attempt exactly once.
        assert result.lost_node_seconds == pytest.approx(first)
        assert result.goodput_node_seconds == pytest.approx(runtime)


class TestDegradedScheduling:
    def test_policies_work_degraded(self):
        """Every policy keeps functioning while nodes are down (the
        pseudo-job repair representation)."""
        jobs = workload(count=100, nodes=32)
        for policy in ("fcfs", "easy", "conservative", "sjf"):
            result = FaultyBatchSimulator(
                32, get_policy(policy), node_mtbf_seconds=0.05 * YEAR,
                repair_seconds=7200.0,
                streams=RandomStreams(29)).run(jobs)
            assert len(result.completions) == 100

    def test_full_width_job_waits_for_repair(self):
        """A job needing the whole machine must wait out a repair window
        rather than deadlock or overcommit."""
        jobs = [Job(0, 0.0, nodes=8, runtime=5000.0, estimate=5000.0),
                Job(1, 100.0, nodes=8, runtime=5000.0, estimate=5000.0)]
        result = FaultyBatchSimulator(
            8, get_policy("easy"), node_mtbf_seconds=8 * 2000.0,
            repair_seconds=3600.0, checkpoint_interval=500.0,
            streams=RandomStreams(31)).run(jobs)
        assert set(result.completions) == {0, 1}
