"""End-to-end job service under fault campaigns.

Each test drives a real :class:`~repro.jobs.service.JobService` — real
fabric transfers, real heartbeat detection — through one engineered
race, then asserts both the *outcome* (jobs complete exactly once) and
the *proof* (the log replay checker finds no violations).
"""

from repro.fault import LinkFaultSpec
from repro.health import DetectionSpec
from repro.jobs import (
    DuplicateSubmitSpec,
    JobRequest,
    JobsCampaignSpec,
    ServiceConfig,
    SupervisorCrashSpec,
    WorkerCrashSpec,
    WorkerStallSpec,
    prove_determinism,
    run_jobs_campaign,
)
from repro.obs import Observability

FAST_DETECTION = DetectionSpec(detector="fixed", heartbeat_interval=1e-4,
                               suspect_after=3e-4, dead_after=6e-4,
                               monitor_host=0)


def requests(count, work=1e-3, stagger=0.0, kernel="sum"):
    """``count`` sum-kernel submissions with payload value = index."""
    return tuple(
        JobRequest(tenant=f"t{i % 3}", key=f"job-{i}", kernel=kernel,
                   payload=(("x", i),), work_seconds=work,
                   submit_time=i * stagger)
        for i in range(count))


def assert_exactly_once(report):
    """The at-most-once core: replay-clean, every job closed, and the
    jobs that completed did so exactly once."""
    assert report.violations == ()
    assert report.unfinished == 0
    assert report.completed + report.failed == report.jobs


class TestHappyPath:
    def test_all_jobs_complete_without_faults(self):
        report = run_jobs_campaign(
            JobsCampaignSpec(requests=requests(6), horizon=0.2))
        assert_exactly_once(report)
        assert report.completed == 6
        assert report.failed == 0
        assert report.fencing_rejections == 0
        assert report.goodput > 0

    def test_effect_values_come_from_the_kernel(self):
        report = run_jobs_campaign(
            JobsCampaignSpec(requests=requests(3), horizon=0.2))
        for i in range(3):
            assert f"value={i}\n" in report.log_text or \
                f"value={i} " in report.log_text


class TestDuplicateSubmissions:
    def test_duplicates_dedup_and_apply_once(self):
        spec = JobsCampaignSpec(
            requests=requests(4, stagger=2e-4),
            duplicate_submits=(DuplicateSubmitSpec(time=1e-4, index=0),
                               DuplicateSubmitSpec(time=3e-4, index=1),
                               DuplicateSubmitSpec(time=5e-3, index=2)),
            horizon=0.2)
        report = run_jobs_campaign(spec)
        assert_exactly_once(report)
        assert report.jobs == 4          # dedup created no new rows
        assert report.dedup_hits == 3
        assert report.completed == 4
        assert report.log_text.count("dedup job=") == 3
        # Exactly one effect record per job, ever.
        assert report.log_text.count("\n") == report.log_records
        for job_id in range(1, 5):
            assert report.log_text.count(f"effect job={job_id} ") == 1


class TestLeaseExpiryRaces:
    def test_stalled_worker_is_fenced_out(self):
        """A stall past lease expiry triggers re-grants; every write
        the zombie makes under an old token is rejected as stale."""
        spec = JobsCampaignSpec(
            requests=requests(2), horizon=0.2,
            service=ServiceConfig(workers=1, spare_workers=0),
            worker_stalls=(WorkerStallSpec(time=3e-4, host=1,
                                           duration=4e-3),))
        report = run_jobs_campaign(spec)
        assert_exactly_once(report)
        assert report.completed == 2
        assert report.expiries >= 1
        assert report.rejections_stale >= 1
        # Despite the thrash, each job has exactly one durable effect.
        for job_id in (1, 2):
            assert report.log_text.count(f"effect job={job_id} ") == 1

    def test_late_write_accepted_while_token_still_current(self):
        """A partition silences the only worker's heartbeats: falsely
        declared dead, its job requeues — but with nobody to re-grant
        to, the token never moves, so the survivor's late write is
        accepted (REQUEUED -> COMPLETED) and work is not redone."""
        service = ServiceConfig(workers=1, spare_workers=0,
                                repair_seconds=5e-3,
                                detection=FAST_DETECTION)
        spec = JobsCampaignSpec(requests=requests(1, work=3e-3),
                                horizon=0.2, service=service)
        leaf = next(iter(spec.topology().graph.neighbors(("h", 1))))
        spec = JobsCampaignSpec(
            requests=requests(1, work=3e-3), horizon=0.2,
            service=service,
            link_faults=(LinkFaultSpec(start=5e-4, duration=2e-3,
                                       a=("h", 1), b=leaf),))
        report = run_jobs_campaign(spec)
        assert_exactly_once(report)
        assert report.completed == 1
        assert report.false_deaths == 1
        assert report.requeues == 1
        assert report.rejections_stale == 0
        assert "requeue job=1" in report.log_text
        assert "effect job=1 token=1" in report.log_text


class TestSupervisorCrash:
    def test_crash_inside_the_grant_commit_gap(self):
        """The crash lands between the durable grant and the grant
        message: the orphaned lease expires, the restarted supervisor
        rebuilds its table from the log, and the job is re-granted."""
        spec = JobsCampaignSpec(
            requests=requests(2), horizon=0.2,
            service=ServiceConfig(workers=2, spare_workers=0,
                                  grant_commit_gap=1e-4),
            supervisor_crashes=(SupervisorCrashSpec(time=1.5e-4,
                                                    restart_after=1e-3),))
        report = run_jobs_campaign(spec)
        assert_exactly_once(report)
        assert report.completed == 2
        assert report.supervisor_restarts == 1
        assert report.expiries >= 1       # the orphaned lease
        assert report.grants > report.jobs


class TestWorkerCrashes:
    def test_declared_death_requeues_and_activates_spare(self):
        spec = JobsCampaignSpec(
            requests=requests(6, work=1.5e-3), horizon=0.2,
            service=ServiceConfig(workers=2, spare_workers=1,
                                  detection=FAST_DETECTION),
            worker_crashes=(WorkerCrashSpec(time=7e-4, host=1),))
        report = run_jobs_campaign(spec)
        assert_exactly_once(report)
        assert report.completed == 6
        assert report.deaths_declared == 1
        assert report.false_deaths == 0
        assert report.spare_activations == 1
        assert "cause=death-declared" in report.log_text


class TestFullCampaign:
    """The ISSUE's acceptance scenario: every fault class at once."""

    def spec(self):
        return JobsCampaignSpec(
            requests=requests(12, work=1.2e-3, stagger=2e-4),
            name="full-campaign", horizon=0.5, seed=7,
            service=ServiceConfig(workers=4, spare_workers=2),
            worker_crashes=(WorkerCrashSpec(time=1.1e-3, host=1),
                            WorkerCrashSpec(time=4.3e-3, host=3)),
            worker_stalls=(WorkerStallSpec(time=1.6e-3, host=2,
                                           duration=3e-3),),
            supervisor_crashes=(SupervisorCrashSpec(time=2.2e-3,
                                                    restart_after=1.5e-3),),
            duplicate_submits=(DuplicateSubmitSpec(time=9e-4, index=1),
                               DuplicateSubmitSpec(time=3e-3, index=5)),
            drop_probability=0.02)

    def test_effects_exactly_once_under_full_campaign(self):
        report = run_jobs_campaign(self.spec())
        assert_exactly_once(report)
        assert report.completed == 12
        assert report.dedup_hits == 2
        assert report.supervisor_restarts == 1
        assert report.spare_activations == 2
        assert report.fencing_rejections >= 1
        for job_id in range(1, 13):
            assert report.log_text.count(f"effect job={job_id} ") == 1

    def test_same_seed_runs_are_byte_identical(self):
        proof = prove_determinism(self.spec())
        assert proof.identical
        assert len(proof.digests) == 2
        assert proof.reports[0].log_text == proof.reports[1].log_text

    def test_faulty_goodput_below_clean_baseline(self):
        spec = self.spec()
        faulty = run_jobs_campaign(spec)
        clean = run_jobs_campaign(spec.without_faults())
        assert clean.violations == ()
        assert clean.completed == 12
        # Faults cost goodput; they must never cost correctness.
        assert faulty.elapsed > clean.elapsed

    def test_metrics_are_published(self):
        obs = Observability()
        report = run_jobs_campaign(self.spec(), obs=obs)
        gauges = {}
        for gauge in obs.metrics.gauges():
            name = gauge.key[0]
            gauges.setdefault(name, 0.0)
            gauges[name] += gauge.value
        assert gauges["jobs.completed"] == report.completed
        assert gauges["jobs.lease_renewals"] == report.renewals
        assert gauges["jobs.requeues"] == report.requeues
        assert gauges["jobs.fencing_rejections"] == \
            report.fencing_rejections
        assert gauges["jobs.supervisor_restarts"] == 1.0
        assert gauges["jobs.goodput"] == report.goodput
