"""scan / exscan / reduce_scatter collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging import MAX, SUM, run_spmd

SIZES = [1, 2, 3, 5, 8, 13]


class TestScan:
    @pytest.mark.parametrize("size", SIZES)
    def test_inclusive_prefix_sum(self, size):
        def body(comm):
            value = yield from comm.scan(comm.rank + 1, SUM)
            return value

        result = run_spmd(size, body)
        expected = [sum(range(1, r + 2)) for r in range(size)]
        assert result.results == expected

    def test_array_payloads(self):
        def body(comm):
            value = yield from comm.scan(np.full(10, float(comm.rank)), SUM)
            return value

        result = run_spmd(4, body)
        for rank, value in enumerate(result.results):
            assert np.allclose(value, sum(range(rank + 1)))

    def test_max_scan(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]

        def body(comm):
            out = yield from comm.scan(values[comm.rank], MAX)
            return out

        result = run_spmd(8, body)
        assert result.results == [3, 3, 4, 4, 5, 9, 9, 9]

    def test_non_commutative_op_rank_order(self):
        """Scan must combine strictly in rank order even for a
        non-commutative operation (string concatenation)."""
        def body(comm):
            out = yield from comm.scan(chr(ord("a") + comm.rank),
                                       lambda x, y: x + y)
            return out

        result = run_spmd(5, body)
        assert result.results == ["a", "ab", "abc", "abcd", "abcde"]

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_scan_equals_numpy_cumsum(self, size, seed):
        values = np.random.default_rng(seed).integers(-100, 100, size=size)

        def body(comm):
            out = yield from comm.scan(int(values[comm.rank]), SUM)
            return out

        result = run_spmd(size, body)
        assert result.results == list(np.cumsum(values))


class TestExscan:
    @pytest.mark.parametrize("size", SIZES)
    def test_exclusive_prefix(self, size):
        def body(comm):
            value = yield from comm.exscan(comm.rank + 1, SUM)
            return value

        result = run_spmd(size, body)
        assert result.results[0] is None
        for rank in range(1, size):
            assert result.results[rank] == sum(range(1, rank + 1))

    def test_exscan_plus_own_equals_scan(self):
        def body(comm):
            inclusive = yield from comm.scan(comm.rank * 2 + 1, SUM)
            exclusive = yield from comm.exscan(comm.rank * 2 + 1, SUM)
            return inclusive, exclusive

        result = run_spmd(6, body)
        for rank, (inclusive, exclusive) in enumerate(result.results):
            own = rank * 2 + 1
            if rank == 0:
                assert exclusive is None
            else:
                assert exclusive + own == inclusive


class TestReduceScatter:
    @pytest.mark.parametrize("size", SIZES)
    def test_scalar_blocks(self, size):
        def body(comm):
            # objs[d] is the contribution of this rank to destination d.
            contributions = [comm.rank * 100 + d for d in range(comm.size)]
            value = yield from comm.reduce_scatter(contributions, SUM)
            return value

        result = run_spmd(size, body)
        for dest in range(size):
            expected = sum(src * 100 + dest for src in range(size))
            assert result.results[dest] == expected

    def test_array_blocks(self):
        def body(comm):
            contributions = [np.full(5, float(comm.rank + dest))
                             for dest in range(comm.size)]
            value = yield from comm.reduce_scatter(contributions, SUM)
            return value

        result = run_spmd(4, body)
        for dest, value in enumerate(result.results):
            expected = sum(src + dest for src in range(4))
            assert np.allclose(value, expected)

    def test_matches_reduce_then_scatter(self):
        def body(comm):
            contributions = [(comm.rank + 1) * (dest + 1)
                             for dest in range(comm.size)]
            fast = yield from comm.reduce_scatter(contributions, SUM)
            total = yield from comm.reduce(contributions,
                                           lambda a, b: [x + y for x, y
                                                         in zip(a, b)],
                                           root=0)
            slow_parts = yield from comm.scatter(total, root=0)
            return fast, slow_parts

        result = run_spmd(5, body)
        for fast, slow in result.results:
            assert fast == slow

    def test_length_validated(self):
        def body(comm):
            yield from comm.reduce_scatter([1], SUM)

        with pytest.raises(ValueError, match="exactly"):
            run_spmd(3, body)
