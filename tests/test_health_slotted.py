"""Slotted heartbeat scheduling: one timer wheel for the whole fleet.

``DetectionSpec.heartbeat_slots`` replaces N per-node sender processes
with a single driver that walks S phase slots per interval and fires
the beats of every live node in each slot.  That is an engine-load
optimisation, not a semantic change — these tests pin the equivalence:
same detections as the legacy per-node mode, deterministic across
runs, correct crash/restore behaviour, and strictly fewer engine
events at fleet scale.
"""

import pytest

from repro.health import DetectionSpec, HeartbeatMonitor, NodeHealthState
from repro.network import Fabric, FabricFaultPlan, get_interconnect
from repro.sim import Simulator
from tests.conftest import small_fat_tree

HB = 1e-4


def make_monitor(plan=None, nodes=4, topology=None, **spec_kwargs):
    """Monitor over a fat tree on gigabit ethernet; pass
    ``heartbeat_slots`` to get the slotted sender."""
    sim = Simulator()
    fabric = Fabric(sim, topology or small_fat_tree(),
                    get_interconnect("gigabit_ethernet"), fault_plan=plan)
    base = dict(detector="fixed", heartbeat_interval=HB,
                suspect_after=3 * HB, dead_after=6 * HB)
    base.update(spec_kwargs)
    monitor = HeartbeatMonitor(sim, fabric, nodes,
                               spec=DetectionSpec(**base))
    monitor.start()
    return sim, monitor


def _campaign(monitor_factory):
    """Crash node 2 mid-run, then restore it; return the observable
    record (deaths, membership log, beat counters, final clock)."""
    sim, monitor = monitor_factory()
    sim.run(until=2e-3)
    monitor.crash(2)
    sim.run(until=4e-3)
    monitor.repair(2)
    monitor.restore(2)
    sim.run(until=6e-3)
    return {
        "deaths": [(d.node, d.false_positive) for d in monitor.deaths],
        "log": [e.line() for e in monitor.membership.events],
        "sent": monitor.heartbeats_sent,
        "delivered": monitor.heartbeats_delivered,
        "state2": monitor.membership.state_of(2),
        "now": sim.now,
    }


class TestSpecValidation:
    def test_zero_or_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            DetectionSpec(heartbeat_slots=0)
        with pytest.raises(ValueError):
            DetectionSpec(heartbeat_slots=-3)

    def test_none_and_positive_slots_accepted(self):
        assert DetectionSpec().heartbeat_slots is None
        assert DetectionSpec(heartbeat_slots=1).heartbeat_slots == 1
        assert DetectionSpec(heartbeat_slots=16).heartbeat_slots == 16


class TestDetectionEquivalence:
    def test_crash_detected_like_legacy(self):
        slotted = _campaign(lambda: make_monitor(heartbeat_slots=2))
        legacy = _campaign(lambda: make_monitor())
        assert slotted["deaths"] == legacy["deaths"] == [(2, False)]
        assert slotted["state2"] is NodeHealthState.HEALTHY

    def test_false_positive_under_partition(self):
        """A severed access link silences node 1's beats in slotted mode
        exactly as in legacy mode: a false death."""
        plan = FabricFaultPlan().link_down(("h", 1), ("s", 0),
                                           6e-4, 6e-4 + 1e-3)
        sim, monitor = make_monitor(plan=plan, heartbeat_slots=2)
        sim.run(until=2e-3)
        deaths = monitor.pop_deaths()
        assert [d.node for d in deaths] == [1]
        assert deaths[0].false_positive
        assert monitor.crashed_nodes == ()

    def test_single_slot_degenerates_to_bursts(self):
        """slots=1 fires the whole fleet once per interval; detection
        still works."""
        record = _campaign(lambda: make_monitor(heartbeat_slots=1))
        assert record["deaths"] == [(2, False)]


class TestDeterminism:
    def test_same_seed_double_run_identical(self):
        first = _campaign(lambda: make_monitor(heartbeat_slots=4))
        second = _campaign(lambda: make_monitor(heartbeat_slots=4))
        assert first == second

    def test_membership_transitions_match_legacy(self):
        """The health state machine sees the same transition sequence
        for the crashed node, whichever sender drives the beats.
        (Timestamps may shift inside one interval because slot phases
        differ from the legacy per-node phases.)"""
        transitions = {}
        for slots in (None, 2):
            sim, monitor = make_monitor(heartbeat_slots=slots)
            sim.run(until=2e-3)
            monitor.crash(2)
            sim.run(until=4e-3)
            transitions[slots] = [(e.node, e.old, e.new)
                                  for e in monitor.membership.events]
        assert transitions[2] == transitions[None] == [
            (2, NodeHealthState.HEALTHY, NodeHealthState.SUSPECTED),
            (2, NodeHealthState.SUSPECTED, NodeHealthState.DEAD),
        ]


class TestCrashRestore:
    def test_crashed_node_stops_beating(self):
        sim, monitor = make_monitor(heartbeat_slots=2)
        sim.run(until=1e-3)
        monitor.crash(2)
        sim.run(until=4e-3)
        assert monitor.membership.state_of(2) is NodeHealthState.DEAD
        # And stays dead: no phantom beats from the slot driver.
        sim.run(until=8e-3)
        assert monitor.membership.state_of(2) is NodeHealthState.DEAD

    def test_restore_rejoins_the_wheel(self):
        sim, monitor = make_monitor(heartbeat_slots=2)
        sim.run(until=2e-3)
        monitor.crash(2)
        sim.run(until=4e-3)
        monitor.pop_deaths()
        monitor.repair(2)
        monitor.restore(2)
        epoch = monitor.membership.epoch
        sim.run(until=8e-3)
        # Beats resumed from the shared driver: no new suspicion.
        assert monitor.membership.epoch == epoch
        assert monitor.membership.state_of(2) is NodeHealthState.HEALTHY

    def test_stop_quiesces_the_driver(self):
        sim, monitor = make_monitor(heartbeat_slots=2)
        sim.run(until=1e-3)
        monitor.stop()
        sent = monitor.heartbeats_sent
        sim.run(until=sim.now + 5e-3)
        assert monitor.heartbeats_sent == sent


class TestEngineLoad:
    def test_slotted_mode_schedules_fewer_events(self):
        """At fleet scale the single driver beats N sender processes:
        strictly fewer engine events for the same horizon."""
        from repro.network import FatTreeTopology
        counts = {}
        for slots in (None, 8):
            # Wider timeouts: 60 nodes funnel beats into one monitor
            # link, so delivery latency is higher than at 4 nodes.
            sim, monitor = make_monitor(nodes=60,
                                        topology=FatTreeTopology(60),
                                        heartbeat_slots=slots,
                                        suspect_after=15 * HB,
                                        dead_after=30 * HB)
            sim.run(until=5e-3)
            counts[slots] = sim.events_executed
            assert monitor.deaths == []
        assert counts[8] < counts[None]

    def test_beat_counters_comparable_to_legacy(self):
        """Both modes send roughly interval-rate beats per node."""
        sent = {}
        for slots in (None, 4):
            sim, monitor = make_monitor(heartbeat_slots=slots)
            sim.run(until=5e-3)
            sent[slots] = monitor.heartbeats_sent
        # 4 nodes x ~50 intervals; allow one interval of phase slack.
        assert sent[4] == pytest.approx(sent[None], rel=0.1)
