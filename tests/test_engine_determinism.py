"""Determinism regression for the calendar-queue kernel, at campaign scale.

The engine overhaul (event wheel, pooling, plain-mode fast loop) is
admissible only if full experiment campaigns remain bit-repeatable and
queue-implementation-independent.  These tests run the E20-style fault
campaign (SUMMA under node + link faults) and the E22-style jobs
campaign (control-plane faults) twice under DetSan, and once per queue
implementation, asserting byte-identical digests and Chrome traces.

``DEFAULT_QUEUE`` is module-level precisely so this file can force the
whole stack — fabric, campaign runner, monitor, jobs service — onto the
heap oracle without threading a parameter through every constructor.
"""

import pytest

import repro.sim.engine as engine
from repro.fault.campaign import run_workload
from repro.jobs import (
    JobRequest,
    JobsCampaignSpec,
    ServiceConfig,
    SupervisorCrashSpec,
    WorkerCrashSpec,
    run_jobs_campaign,
)
from repro.obs import Observability, chrome_trace_json
from repro.sim import DetSanRecorder
from repro.sim.detsan import first_divergence
from tests.conftest import make_summa_spec


def jobs_spec():
    """A small E22-style campaign: worker + supervisor crashes on a
    staggered workload (timings mirror the proven full-campaign spec)."""
    return JobsCampaignSpec(
        requests=tuple(JobRequest(tenant=f"t{i % 3}", key=f"job-{i}",
                                  kernel="sum", payload=(("x", i),),
                                  work_seconds=1.2e-3,
                                  submit_time=i * 2e-4)
                       for i in range(8)),
        name="detsan-jobs",
        service=ServiceConfig(workers=4, spare_workers=2),
        worker_crashes=(WorkerCrashSpec(time=1.1e-3, host=1),),
        supervisor_crashes=(SupervisorCrashSpec(time=2.2e-3,
                                                restart_after=1.5e-3),),
        horizon=0.5,
        seed=7,
    )


def _fault_campaign_digest():
    recorder = DetSanRecorder()
    outcome = run_workload(make_summa_spec(), detsan=recorder)
    return recorder, outcome


def _jobs_campaign_digest():
    recorder = DetSanRecorder()
    report = run_jobs_campaign(jobs_spec(), detsan=recorder)
    return recorder, report


class TestSameSeedDoubleRun:
    def test_fault_campaign_detsan_digest_repeats(self):
        first, out1 = _fault_campaign_digest()
        second, out2 = _fault_campaign_digest()
        assert first.events_folded == second.events_folded > 0
        assert first.digest == second.digest
        assert first_divergence(first, second) is None
        assert out1.elapsed == out2.elapsed
        assert out1.fault_trace == out2.fault_trace

    def test_jobs_campaign_detsan_digest_repeats(self):
        first, rep1 = _jobs_campaign_digest()
        second, rep2 = _jobs_campaign_digest()
        assert first.events_folded == second.events_folded > 0
        assert first.digest == second.digest
        assert first_divergence(first, second) is None


class TestHeapOracle:
    """The wheel must be observationally identical to the heap, all the
    way up at campaign scale."""

    @pytest.fixture
    def force_heap(self, monkeypatch):
        def apply():
            monkeypatch.setattr(engine, "DEFAULT_QUEUE", "heap")
        return apply

    def test_fault_campaign_digest_matches_heap(self, force_heap):
        wheel, wheel_out = _fault_campaign_digest()
        force_heap()
        heap, heap_out = _fault_campaign_digest()
        assert wheel.digest == heap.digest
        assert first_divergence(wheel, heap) is None
        assert wheel_out.elapsed == heap_out.elapsed
        assert wheel_out.fault_trace == heap_out.fault_trace
        import numpy as np
        for a, b in zip(wheel_out.answers, heap_out.answers):
            assert np.array_equal(a, b)

    def test_jobs_campaign_digest_matches_heap(self, force_heap):
        wheel, wheel_rep = _jobs_campaign_digest()
        force_heap()
        heap, heap_rep = _jobs_campaign_digest()
        assert wheel.digest == heap.digest
        assert first_divergence(wheel, heap) is None

    def test_chrome_trace_bytes_match_heap(self, force_heap):
        """Golden-trace check: the exported Chrome trace of an
        instrumented campaign is byte-identical across queue kinds."""
        def trace():
            obs = Observability()
            run_workload(make_summa_spec(), obs=obs)
            return chrome_trace_json(obs)

        wheel_json = trace()
        force_heap()
        heap_json = trace()
        assert wheel_json == heap_json
