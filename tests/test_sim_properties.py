"""Property-based tests on the event kernel (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sim import RecordingTracer, Resource, Simulator, Store


@st.composite
def delay_lists(draw):
    return draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=30,
    ))


class TestTimeMonotonicity:
    @given(delay_lists())
    @settings(max_examples=50, deadline=None)
    def test_delivery_times_never_decrease(self, delays):
        tracer = RecordingTracer()
        sim = Simulator(tracer=tracer)
        for delay in delays:
            sim.timeout(delay)
        sim.run()
        times = [record.time for record in tracer.records]
        assert times == sorted(times)
        assert sim.now == max(delays)

    @given(delay_lists())
    @settings(max_examples=30, deadline=None)
    def test_nested_sleep_sums(self, delays):
        sim = Simulator()

        def body(sim):
            for delay in delays:
                yield sim.timeout(delay)
            return sim.now

        total = sim.run_process(body(sim))
        assert abs(total - sum(delays)) < 1e-6 * max(1.0, sum(delays))


class TestResourceInvariants:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                 max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, capacity, holds):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        violations = []

        def user(sim, resource, hold):
            yield resource.request()
            if resource.in_use > capacity:
                violations.append(resource.in_use)
            yield sim.timeout(hold)
            resource.release()

        for hold in holds:
            sim.process(user(sim, resource, hold))
        sim.run()
        assert not violations
        assert resource.in_use == 0
        assert resource.queue_length == 0

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2,
                 max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_grants_are_fifo(self, capacity, holds):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        grant_order = []

        def user(sim, resource, index, hold):
            yield resource.request()
            grant_order.append(index)
            yield sim.timeout(hold)
            resource.release()

        for index, hold in enumerate(holds):
            sim.process(user(sim, resource, index, hold))
        sim.run()
        # All requests arrive at t=0 in index order, so grants (whenever
        # they happen) must be in index order too.
        assert grant_order == sorted(grant_order)


class TestStoreInvariants:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_items_conserved_and_ordered(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer(sim, store):
            for item in items:
                yield store.put(item)

        def consumer(sim, store):
            for _ in range(len(items)):
                received.append((yield store.get()))

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert received == items
        assert len(store) == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                 max_size=30),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_store_never_overfills(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        max_seen = []

        def producer(sim, store):
            for item in items:
                yield store.put(item)
                max_seen.append(len(store))

        def consumer(sim, store):
            for _ in range(len(items)):
                yield sim.timeout(0.1)
                yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert max(max_seen) <= capacity
