"""One-way link loss: grey failures the routing layer cannot see.

A symmetric outage is at least *visible* — transfers fail fast or
re-route.  The nastier production failure is asymmetric: one direction
of a link silently eats packets while the other keeps working.  The
fabric models this with oriented blackhole windows
(:meth:`FabricFaultPlan.link_down_oneway`), deliberately without
reroute: nothing reported the loss, so the routing layer has nothing
to avoid.

The detection-layer consequence is the point of the exercise: the
central :class:`HeartbeatMonitor` only sees the node -> monitor
direction, so a blackhole on that path manufactures honest suspicion
(and honest refutation on heal), while the reverse direction is
completely invisible to it.
"""

from repro.health import DetectionSpec, HeartbeatMonitor, NodeHealthState
from repro.network import (
    Fabric,
    FabricFaultPlan,
    TransferDropped,
    get_interconnect,
)
from repro.sim import Simulator
from tests.conftest import drive_transfer, small_fat_tree

HB = 1e-4

#: h3's access link, in each orientation (h3 sits on leaf s1).
UPLINK = (("h", 3), ("s", 1))
DOWNLINK = (("s", 1), ("h", 3))


def make_fabric(plan):
    sim = Simulator()
    return sim, Fabric(sim, small_fat_tree(),
                       get_interconnect("gigabit_ethernet"),
                       fault_plan=plan)


def make_monitor(plan=None, nodes=4, **spec_kwargs):
    sim = Simulator()
    fabric = Fabric(sim, small_fat_tree(),
                    get_interconnect("gigabit_ethernet"), fault_plan=plan)
    base = dict(detector="fixed", heartbeat_interval=HB,
                suspect_after=3 * HB, dead_after=6 * HB)
    base.update(spec_kwargs)
    monitor = HeartbeatMonitor(sim, fabric, nodes,
                               spec=DetectionSpec(**base))
    monitor.start()
    return sim, monitor


class TestFabricBlackhole:
    def test_blackhole_eats_one_direction_only(self):
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, 0.0, 1.0)
        sim, fabric = make_fabric(plan)
        outbound = drive_transfer(sim, fabric, 3, 0)
        assert isinstance(outbound.get("error"), TransferDropped)
        inbound = drive_transfer(sim, fabric, 0, 3)
        assert "outcome" in inbound
        assert plan.blackholes == 1
        assert plan.drops == 1

    def test_no_reroute_around_a_blackhole(self):
        """Unlike a down link, a blackhole triggers zero route
        recomputation: the transfer pays the full traversal and loses."""
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, 0.0, 1.0)
        sim, fabric = make_fabric(plan)
        outbound = drive_transfer(sim, fabric, 3, 0)
        assert isinstance(outbound.get("error"), TransferDropped)
        assert plan.reroutes == 0

    def test_window_expiry_restores_delivery(self):
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, 0.0, 1e-3)
        sim, fabric = make_fabric(plan)
        late = drive_transfer(sim, fabric, 3, 0, delay=2e-3)
        assert "outcome" in late
        assert plan.blackholes == 0

    def test_other_hosts_are_untouched(self):
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, 0.0, 1.0)
        sim, fabric = make_fabric(plan)
        assert "outcome" in drive_transfer(sim, fabric, 1, 2)
        assert "outcome" in drive_transfer(sim, fabric, 2, 3)


class TestAsymmetricPartitionCentral:
    def silence_uplink(self, start=1e-3, end=1.45e-3):
        """Blackhole h3 -> monitor for ~4.5 heartbeats: long enough to
        suspect (3 HB), healed before the death verdict (6 HB)."""
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, start, end)
        return make_monitor(plan=plan)

    def test_uplink_loss_draws_honest_suspicion(self):
        sim, monitor = self.silence_uplink()
        sim.run(until=1.4e-3)
        assert monitor.membership.state_of(3) is NodeHealthState.SUSPECTED
        # Honest: node 3 is alive, so the books call it false —
        # but every missed heartbeat really was lost on the wire.
        assert monitor.false_suspicions == 1
        assert monitor.heartbeats_lost > 0

    def test_refutation_on_heal(self):
        sim, monitor = self.silence_uplink()
        sim.run(until=3e-3)
        assert monitor.membership.state_of(3) is NodeHealthState.HEALTHY
        assert monitor.deaths == []
        log = monitor.membership.render_log()
        assert "missed-heartbeats" in log
        assert "heartbeat-resumed" in log

    def test_downlink_loss_is_invisible_to_the_monitor(self):
        """Heartbeats flow node -> monitor only; killing the reverse
        direction for the whole run changes nothing."""
        plan = FabricFaultPlan()
        plan.link_down_oneway(*DOWNLINK, 0.0, 1.0)
        sim, monitor = make_monitor(plan=plan)
        sim.run(until=3e-3)
        assert monitor.membership.epoch == 0
        assert monitor.false_suspicions == 0
        assert monitor.deaths == []

    def test_long_blackhole_is_an_honest_false_death(self):
        """Past the death budget the monitor buries a live node — the
        no-oracle contract, now reachable with one oriented edge."""
        plan = FabricFaultPlan()
        plan.link_down_oneway(*UPLINK, 1e-3, 2.5e-3)
        sim, monitor = make_monitor(plan=plan)
        sim.run(until=2.2e-3)
        deaths = monitor.pop_deaths()
        assert [d.node for d in deaths] == [3]
        assert deaths[0].false_positive

    def test_health_log_is_byte_identical_across_runs(self):
        logs = []
        for _ in range(2):
            sim, monitor = self.silence_uplink()
            sim.run(until=3e-3)
            logs.append(monitor.membership.render_log())
        assert logs[0] == logs[1]
        assert "missed-heartbeats" in logs[0]
