"""Parallel file system: striping geometry, timing, scaling, checkpoint
integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fault import daly_interval, efficiency
from repro.io import (
    DiskModel,
    ParallelFileSystem,
    checkpoint_write_time,
    derive_checkpoint_params,
    simulate_checkpoint_write,
)
from repro.network import Fabric, SingleSwitchTopology, get_interconnect
from repro.sim import Simulator


def make_pfs(servers=2, stripe=64 * 1024, hosts=8, disk=DiskModel(),
             technology="infiniband_4x"):
    sim = Simulator()
    fabric = Fabric(sim, SingleSwitchTopology(hosts),
                    get_interconnect(technology))
    pfs = ParallelFileSystem(
        sim, fabric,
        server_hosts=list(range(hosts - servers, hosts)),
        stripe_bytes=stripe, disk=disk,
    )
    return sim, pfs


class TestDiskModel:
    def test_access_time_components(self):
        disk = DiskModel(seek_seconds=0.01, transfer_bytes_per_second=50e6)
        assert disk.access_time(50e6) == pytest.approx(1.01)
        assert disk.access_time(50e6, sequential=True) == pytest.approx(1.0)

    def test_streaming_bandwidth_approaches_media_rate(self):
        disk = DiskModel()
        small = disk.streaming_bandwidth(4 * 1024)
        large = disk.streaming_bandwidth(64 * 1024 * 1024)
        assert small < 0.05 * disk.transfer_bytes_per_second
        assert large > 0.95 * disk.transfer_bytes_per_second

    def test_scaled(self):
        newer = DiskModel().scaled(4.0)
        assert newer.transfer_bytes_per_second == pytest.approx(160e6)
        assert newer.seek_seconds == DiskModel().seek_seconds  # mechanics

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(transfer_bytes_per_second=0.0)
        with pytest.raises(ValueError):
            DiskModel().access_time(-1)


class TestStriping:
    def test_round_robin_layout(self):
        _sim, pfs = make_pfs(servers=2, stripe=100)
        chunks = pfs.map_range(0, 400)
        assert [(c.server_index, c.server_offset, c.nbytes)
                for c in chunks] == [
            (0, 0, 100), (1, 0, 100), (0, 100, 100), (1, 100, 100),
        ]

    def test_unaligned_range(self):
        _sim, pfs = make_pfs(servers=2, stripe=100)
        chunks = pfs.map_range(50, 400)
        assert chunks[0].nbytes == 50          # partial first stripe
        assert chunks[0].server_offset == 50
        assert sum(c.nbytes for c in chunks) == 400

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=100, deadline=None)
    def test_chunks_cover_range_exactly(self, offset, nbytes, servers,
                                        stripe):
        _sim, pfs = make_pfs(servers=servers, stripe=stripe,
                             hosts=servers + 2)
        chunks = pfs.map_range(offset, nbytes)
        assert sum(c.nbytes for c in chunks) == nbytes
        # Replay the chunks against the striping arithmetic: walking the
        # file positions must visit servers round-robin by stripe index.
        position = offset
        for chunk in chunks:
            stripe_index = position // stripe
            assert chunk.server_index == stripe_index % servers
            assert 0 < chunk.nbytes <= stripe
            position += chunk.nbytes

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=16, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_server_regions_disjoint(self, servers, stripe):
        """No two chunks of one range may overlap on a server."""
        _sim, pfs = make_pfs(servers=servers, stripe=stripe,
                             hosts=servers + 2)
        chunks = pfs.map_range(0, 40 * stripe + 7)
        seen = {}
        for chunk in chunks:
            spans = seen.setdefault(chunk.server_index, [])
            new = (chunk.server_offset, chunk.server_offset + chunk.nbytes)
            for old in spans:
                assert new[1] <= old[0] or new[0] >= old[1]
            spans.append(new)


class TestIoTiming:
    def test_write_timing_order_of_magnitude(self):
        sim, pfs = make_pfs(servers=4, stripe=1 << 20)

        def client():
            yield from pfs.write(0, 0, 16 << 20)
            return sim.now

        elapsed = sim.run_process(client())
        # 16 MiB over 4 servers: disk-bound floor is 4 MiB/40 MB/s ~ 0.1 s;
        # one client link at 1 GB/s adds ~16 ms; seeks add 16 x 13 ms / 4.
        assert 0.1 < elapsed < 0.5

    def test_more_servers_faster(self):
        def run(servers):
            sim, pfs = make_pfs(servers=servers, stripe=1 << 20,
                                hosts=servers + 4)

            def client():
                yield from pfs.write(0, 0, 64 << 20)
                return sim.now

            return sim.run_process(client())

        assert run(8) < run(2) / 2

    def test_tiny_stripes_are_seek_bound(self):
        """The classic misconfiguration: small stripes turn a streaming
        write into a seek storm."""
        def run(stripe):
            sim, pfs = make_pfs(servers=2, stripe=stripe)

            def client():
                yield from pfs.write(0, 0, 1 << 20)
                return sim.now

            return sim.run_process(client())

        assert run(4 * 1024) > 10 * run(1 << 20)

    def test_read_returns_and_accounts(self):
        sim, pfs = make_pfs(servers=2)

        def client():
            wrote = yield from pfs.write(0, 0, 1 << 20)
            read = yield from pfs.read(1, 0, 1 << 20)
            return wrote, read

        wrote, read = sim.run_process(client())
        assert wrote == read == 1 << 20
        assert pfs.total_bytes_written == 1 << 20
        assert pfs.total_bytes_read == 1 << 20

    def test_zero_byte_io_is_free(self):
        sim, pfs = make_pfs()

        def client():
            result = yield from pfs.write(0, 0, 0)
            return result, sim.now

        result, now = sim.run_process(client())
        assert result == 0 and now == 0.0

    def test_balance_even_for_aligned_writes(self):
        sim, pfs = make_pfs(servers=4, stripe=1 << 16)

        def client():
            yield from pfs.write(0, 0, 64 << 16)
            return None

        sim.run_process(client())
        assert pfs.server_balance() == pytest.approx(1.0)

    def test_concurrent_clients_share_servers(self):
        sim, pfs = make_pfs(servers=2, stripe=1 << 20, hosts=8)
        finish = {}

        def client(host):
            yield from pfs.write(host, host * (8 << 20), 8 << 20)
            finish[host] = sim.now

        for host in range(4):
            sim.process(client(host))
        sim.run()
        solo_sim, solo_pfs = make_pfs(servers=2, stripe=1 << 20, hosts=8)

        def solo(host=0):
            yield from solo_pfs.write(0, 0, 8 << 20)
            return solo_sim.now

        solo_time = solo_sim.run_process(solo())
        # Four clients over the same two disks: much slower than one.
        assert max(finish.values()) > 2 * solo_time

    def test_validation(self):
        sim, pfs = make_pfs()
        with pytest.raises(ValueError):
            pfs.map_range(-1, 10)
        with pytest.raises(ValueError):
            ParallelFileSystem(sim, pfs.fabric, server_hosts=[])
        with pytest.raises(ValueError):
            ParallelFileSystem(sim, pfs.fabric, server_hosts=[1, 1])
        with pytest.raises(ValueError):
            ParallelFileSystem(sim, pfs.fabric, server_hosts=[99])


class TestCheckpointIo:
    def test_analytic_bottleneck_selection(self):
        disk = DiskModel(transfer_bytes_per_second=40e6)
        # Few servers: disks bind.
        disk_bound = checkpoint_write_time(1e9, 64, 4, 1e9, disk)
        assert disk_bound == pytest.approx(64e9 / (4 * 40e6))
        # Many servers: the client's own link binds.
        client_bound = checkpoint_write_time(1e9, 64, 10_000, 1e9, disk)
        assert client_bound == pytest.approx(1.0)

    def test_simulated_within_factor_of_analytic(self):
        technology = get_interconnect("infiniband_4x")
        for servers in (2, 8):
            analytic = checkpoint_write_time(
                1 << 20, 16, servers, technology.loggp.bandwidth)
            simulated = simulate_checkpoint_write(16, servers, 1 << 20,
                                                  technology)
            assert analytic <= simulated < 4 * analytic

    def test_simulated_scales_with_servers(self):
        technology = get_interconnect("infiniband_4x")
        slow = simulate_checkpoint_write(16, 2, 1 << 20, technology)
        fast = simulate_checkpoint_write(16, 8, 1 << 20, technology)
        assert fast < slow / 2

    def test_derived_params_feed_daly(self):
        params = derive_checkpoint_params(
            memory_bytes_per_node=2 * 2**30,
            node_count=1024,
            server_count=32,
            link_bandwidth=1e9,
            node_mtbf_seconds=3 * 365.25 * 86400,
        )
        tau = daly_interval(params)
        assert params.checkpoint_seconds > 0
        assert params.restart_seconds == pytest.approx(
            2 * params.checkpoint_seconds)
        assert 0 < efficiency(params, tau) < 1

    def test_fixed_io_collapses_with_scale(self):
        """The E14 phenomenon in miniature: fixed servers, growing
        machine -> efficiency collapse; scaled servers -> graceful."""
        def eff(nodes, servers):
            params = derive_checkpoint_params(
                2 * 2**30, nodes, servers, 1e9, 3 * 365.25 * 86400)
            return efficiency(params, daly_interval(params))

        fixed = [eff(n, 16) for n in (256, 2048, 16384)]
        scaled = [eff(n, max(16, n // 64)) for n in (256, 2048, 16384)]
        assert fixed == sorted(fixed, reverse=True)
        assert fixed[-1] < 0.3
        assert scaled[-1] > fixed[-1] + 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            checkpoint_write_time(-1, 1, 1, 1e9)
        with pytest.raises(ValueError):
            derive_checkpoint_params(1e9, 10, 2, 1e9, 1e8, dump_fraction=0.0)
        with pytest.raises(ValueError):
            derive_checkpoint_params(1e9, 10, 2, 1e9, 1e8, restart_factor=0.5)
