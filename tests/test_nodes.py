"""Node specs, memory hierarchies, and the architecture factories."""

import pytest

from repro.nodes import (
    ARCHITECTURES,
    BladeEnclosure,
    MemoryHierarchy,
    MemoryLevel,
    NodeSpec,
    make_blade_node,
    make_node,
    make_pim_node,
    make_soc_node,
    node_family,
)


def spec_kwargs(**overrides):
    base = dict(
        architecture="test", year=2005.0, peak_flops=1e10, sockets=2,
        cores_per_socket=1, memory_bytes=2 * 2**30, memory_bandwidth=2e9,
        power_watts=250.0, cost_dollars=3000.0, rack_units=1.0,
    )
    base.update(overrides)
    return base


class TestNodeSpec:
    def test_derived_figures(self):
        node = NodeSpec(**spec_kwargs())
        assert node.total_cores == 2
        assert node.machine_balance == pytest.approx(5.0)
        assert node.flops_per_watt == pytest.approx(4e7)
        assert node.flops_per_dollar == pytest.approx(1e10 / 3000)
        assert node.bytes_per_flops == pytest.approx(2 * 2**30 / 1e10)

    @pytest.mark.parametrize("field", [
        "peak_flops", "memory_bytes", "memory_bandwidth", "power_watts",
        "cost_dollars", "rack_units",
    ])
    def test_positive_fields_enforced(self, field):
        with pytest.raises(ValueError):
            NodeSpec(**spec_kwargs(**{field: 0.0}))

    def test_socket_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(**spec_kwargs(sockets=0))

    def test_default_hierarchy_built(self):
        node = NodeSpec(**spec_kwargs())
        names = [level.name for level in node.memory.levels]
        assert names == ["L1", "L2", "DRAM"]
        assert node.memory.main_memory.bandwidth_bytes == pytest.approx(2e9)

    def test_with_overrides_rebuilds_hierarchy(self):
        node = NodeSpec(**spec_kwargs())
        faster = node.with_overrides(memory_bandwidth=8e9)
        assert faster.memory.main_memory.bandwidth_bytes == pytest.approx(8e9)
        assert faster.peak_flops == node.peak_flops


class TestMemoryHierarchy:
    def build(self):
        return MemoryHierarchy(levels=(
            MemoryLevel("L1", 64e3, 100e9, 1e-9),
            MemoryLevel("L2", 1e6, 50e9, 5e-9),
            MemoryLevel("DRAM", 2e9, 2e9, 100e-9),
        ))

    def test_level_selection_by_working_set(self):
        hierarchy = self.build()
        assert hierarchy.level_for(10e3).name == "L1"
        assert hierarchy.level_for(500e3).name == "L2"
        assert hierarchy.level_for(1e9).name == "DRAM"

    def test_oversized_working_set_maps_to_dram(self):
        assert self.build().level_for(1e12).name == "DRAM"

    def test_effective_bandwidth(self):
        hierarchy = self.build()
        assert hierarchy.effective_bandwidth(10e3) == pytest.approx(100e9)
        assert hierarchy.effective_bandwidth(1e9) == pytest.approx(2e9)

    def test_capacity_must_grow(self):
        with pytest.raises(ValueError, match="grow"):
            MemoryHierarchy(levels=(
                MemoryLevel("L1", 1e6, 100e9, 1e-9),
                MemoryLevel("L2", 1e6, 50e9, 5e-9),
            ))

    def test_bandwidth_must_shrink(self):
        with pytest.raises(ValueError, match="slow"):
            MemoryHierarchy(levels=(
                MemoryLevel("L1", 64e3, 10e9, 1e-9),
                MemoryLevel("L2", 1e6, 50e9, 5e-9),
            ))

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            self.build().level_for(-1.0)


class TestArchitectureFactories:
    def test_all_architectures_registered(self):
        assert set(ARCHITECTURES) == {
            "conventional", "blade", "smp", "soc", "pim"
        }

    def test_unknown_architecture_lists_options(self, nominal):
        with pytest.raises(KeyError, match="blade"):
            make_node("quantum", nominal, 2006)

    @pytest.mark.parametrize("architecture", sorted(ARCHITECTURES))
    def test_specs_are_positive_and_labeled(self, nominal, architecture):
        node = make_node(architecture, nominal, 2006)
        assert node.architecture == architecture
        assert node.peak_flops > 0 and node.power_watts > 0

    def test_availability_windows(self, nominal):
        with pytest.raises(ValueError, match="2004"):
            make_soc_node(nominal, 2003.0)
        with pytest.raises(ValueError, match="2005"):
            make_pim_node(nominal, 2004.0)

    def test_node_family_respects_availability(self, nominal):
        early = {n.architecture for n in node_family(nominal, 2003)}
        late = {n.architecture for n in node_family(nominal, 2006)}
        assert "pim" not in early and "soc" not in early
        assert late == set(ARCHITECTURES)

    def test_pim_bandwidth_dominates(self, nominal):
        """The PIM premise: order(s)-of-magnitude more memory bandwidth."""
        family = {n.architecture: n for n in node_family(nominal, 2006)}
        assert (family["pim"].memory_bandwidth
                > 10 * family["conventional"].memory_bandwidth)
        assert family["pim"].peak_flops < family["conventional"].peak_flops
        assert family["pim"].machine_balance < 1.0

    def test_blade_is_denser_and_cooler(self, nominal):
        family = {n.architecture: n for n in node_family(nominal, 2006)}
        assert family["blade"].rack_units < family["conventional"].rack_units
        assert family["blade"].power_watts < family["conventional"].power_watts

    def test_soc_wins_performance_per_watt(self, nominal):
        family = {n.architecture: n for n in node_family(nominal, 2006)}
        assert family["soc"].flops_per_watt > family["conventional"].flops_per_watt
        assert family["soc"].flops_per_watt > family["smp"].flops_per_watt

    def test_smp_costs_a_premium(self, nominal):
        family = {n.architecture: n for n in node_family(nominal, 2006)}
        smp_per_flop = family["smp"].cost_dollars / family["smp"].peak_flops
        thin_per_flop = (family["conventional"].cost_dollars
                         / family["conventional"].peak_flops)
        assert smp_per_flop > 2 * thin_per_flop

    def test_specs_track_roadmap_growth(self, nominal):
        early = make_node("conventional", nominal, 2003)
        late = make_node("conventional", nominal, 2009)
        assert late.peak_flops > 8 * early.peak_flops
        assert late.cost_dollars == pytest.approx(early.cost_dollars)


class TestBladeEnclosure:
    def test_amortisation(self):
        enclosure = BladeEnclosure(slots=14, rack_units=7.0,
                                   chassis_cost_dollars=2800.0,
                                   overhead_watts=280.0)
        assert enclosure.rack_units_per_blade == pytest.approx(0.5)
        assert enclosure.amortised_cost() == pytest.approx(200.0)
        assert enclosure.amortised_power() == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BladeEnclosure(slots=0)
        with pytest.raises(ValueError):
            BladeEnclosure(rack_units=0.0)

    def test_enclosure_shapes_blade_spec(self, nominal):
        small = BladeEnclosure(slots=7, rack_units=7.0)
        large = BladeEnclosure(slots=28, rack_units=7.0)
        dense = make_blade_node(nominal, 2006, enclosure=large)
        sparse = make_blade_node(nominal, 2006, enclosure=small)
        assert dense.rack_units < sparse.rack_units
