"""Span-tree well-formedness over randomized instrumented runs.

Seeded-RNG property tests (deliberately hypothesis-free: the cases are
a plain ``random.Random`` walk, so a failure reproduces from the module
constant alone).  Each case builds a real campaign — kernel, fault
times, loss rate and seed all randomized — runs it instrumented, and
asserts the resulting span forest is properly nested: children lie
inside their parents, same-track spans never partially overlap, and
every id/parent/track reference is consistent.
"""

import itertools
import math
import random

import pytest

from repro.fault import NodeFaultSpec
from repro.fault.campaign import run_workload
from repro.obs import Observability
from tests.conftest import make_stencil_spec, make_summa_spec

#: One fixed seed generates every case below; bump to explore new ones.
CASE_SEED = 20260806


def _random_cases(count):
    rng = random.Random(CASE_SEED)
    cases = []
    for index in range(count):
        kernel = rng.choice(["summa", "stencil2d"])
        faults = rng.randrange(0, 3)
        node_faults = tuple(
            NodeFaultSpec(time=rng.uniform(2e-4, 2e-3),
                          rank=rng.randrange(4))
            for _ in range(faults)
        )
        cases.append(dict(
            kernel=kernel,
            node_faults=node_faults,
            drop_probability=rng.choice([0.0, 0.0, 0.1]),
            seed=rng.randrange(10_000),
        ))
    return cases


CASES = _random_cases(6)


def run_instrumented(case):
    """Run one randomized campaign case; return its finalized trace."""
    make_spec = (make_summa_spec if case["kernel"] == "summa"
                 else make_stencil_spec)
    spec = make_spec(node_faults=case["node_faults"],
                     drop_probability=case["drop_probability"],
                     seed=case["seed"])
    obs = Observability()
    run_workload(spec, obs=obs)
    obs.finalize()
    return obs


def assert_well_formed(obs):
    """The full span-forest contract, checked over every track."""
    by_id = {}
    for span in obs.spans:
        assert span.span_id not in by_id, "span ids must be unique"
        by_id[span.span_id] = span

    for span in obs.spans:
        assert span.status in ("ok", "error", "open", "abandoned")
        assert not math.isnan(span.start) and not math.isnan(span.end)
        assert span.end >= span.start, f"negative span: {span}"
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.track == span.track, (
                f"cross-track parent: {span} under {parent}")
            assert parent.start <= span.start, (
                f"child {span.name} starts before parent {parent.name}")
            assert span.end <= parent.end, (
                f"child {span.name} outlives parent {parent.name}")

    # Same-track spans must nest or be disjoint — no partial overlap,
    # whether or not a parent link connects them (retroactive spans
    # like campaign.lost_work have no parent but share the track).
    for track, records in obs.span_tree().items():
        for a, b in itertools.combinations(records, 2):
            # records are sorted by (start, -duration): a opens first,
            # or at the same instant with the longer extent.
            if b.start < a.end:
                assert b.end <= a.end, (
                    f"partial overlap on {track!r}: "
                    f"{a.name}[{a.start},{a.end}] vs "
                    f"{b.name}[{b.start},{b.end}]")


@pytest.mark.parametrize("case", CASES,
                         ids=[f"case{i}" for i in range(len(CASES))])
def test_randomized_run_yields_well_formed_span_forest(case):
    assert_well_formed(run_instrumented(case))


def test_faulty_campaign_has_campaign_track_structure():
    """The supervisor's explicit track keeps the same contract: one
    incarnation span per attempt, lost-work inside the struck one."""
    spec = make_summa_spec()
    obs = Observability()
    outcome = run_workload(spec, obs=obs)
    obs.finalize()
    assert_well_formed(obs)

    campaign = obs.span_tree()["campaign"]
    incarnations = [s for s in campaign if s.name == "campaign.incarnation"]
    lost = [s for s in campaign if s.name == "campaign.lost_work"]
    assert len(incarnations) == outcome.incarnations
    assert len(lost) == len(outcome.fault_trace)
    for loss in lost:
        enclosing = [s for s in incarnations
                     if s.start <= loss.start and loss.end <= s.end]
        assert enclosing, f"lost work outside every incarnation: {loss}"


def test_process_spans_cover_their_children():
    """Every rank's kernel-step spans sit under its process span."""
    obs = run_instrumented(dict(kernel="summa", node_faults=(),
                                drop_probability=0.0, seed=11))
    steps = [s for s in obs.spans if s.name == "summa.step"]
    assert steps, "instrumented kernel produced no step spans"
    assert all(s.parent_id is not None for s in steps)
