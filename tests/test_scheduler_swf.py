"""SWF trace import/export."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import BatchSimulator, WorkloadGenerator, WorkloadParams, get_policy
from repro.scheduler.swf import dump_swf, format_swf, load_swf, parse_swf
from repro.sim import RandomStreams

#: A tiny hand-written trace in the archive's style.
SAMPLE = """\
; Sample trace
; MaxProcs: 64
; UnixStartTime: 0
1 0 5 120 8 -1 -1 8 300 -1 1 1 1 1 -1 -1 -1 -1
2 30 -1 600 16 -1 -1 16 900 -1 1 2 1 1 -1 -1 -1 -1
3 60 -1 -1 4 -1 -1 4 100 -1 0 3 1 1 -1 -1 -1 -1
4 90 -1 45 1 -1 -1 1 -1 -1 1 4 1 1 -1 -1 -1 -1
"""


class TestParse:
    def test_parses_valid_jobs(self):
        jobs = parse_swf(SAMPLE)
        # Job 3 has unknown runtime (-1) and is skipped.
        assert [job.job_id for job in jobs] == [1, 2, 4]

    def test_field_mapping(self):
        job = parse_swf(SAMPLE)[0]
        assert job.submit_time == 0.0
        assert job.runtime == 120.0
        assert job.nodes == 8
        assert job.estimate == 300.0

    def test_missing_estimate_falls_back_to_runtime(self):
        job = next(j for j in parse_swf(SAMPLE) if j.job_id == 4)
        assert job.estimate == job.runtime == 45.0

    def test_comments_and_blanks_ignored(self):
        jobs = parse_swf(";only comments\n\n; more\n")
        assert jobs == []

    def test_sorted_by_submit(self):
        shuffled = "\n".join(reversed(SAMPLE.splitlines()))
        jobs = parse_swf(shuffled)
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="expected 18"):
            parse_swf("1 2 3\n")
        with pytest.raises(ValueError, match="non-numeric"):
            parse_swf("x " + " ".join(["-1"] * 17) + "\n")


class TestRoundTrip:
    def test_format_then_parse_preserves_jobs(self, streams):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=32, offered_load=0.5), streams)
        original = generator.generate(50)
        recovered = parse_swf(format_swf(original, max_nodes=32))
        assert len(recovered) == 50
        for before, after in zip(original, recovered):
            assert after.job_id == before.job_id
            assert after.nodes == before.nodes
            # Times are rounded to whole seconds on export.
            assert after.submit_time == pytest.approx(before.submit_time,
                                                      abs=0.5)
            assert after.runtime == pytest.approx(before.runtime, abs=0.5)

    def test_stream_io(self, streams):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=16, offered_load=0.5), streams)
        jobs = generator.generate(10)
        buffer = io.StringIO()
        dump_swf(jobs, buffer, max_nodes=16, comment="round trip")
        buffer.seek(0)
        assert len(load_swf(buffer)) == 10

    def test_file_io(self, streams, tmp_path):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=16, offered_load=0.5), streams)
        jobs = generator.generate(10)
        path = str(tmp_path / "trace.swf")
        dump_swf(jobs, path, max_nodes=16)
        assert len(load_swf(path)) == 10

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_any_size(self, count):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=64, offered_load=0.7),
            RandomStreams(seed=count))
        jobs = generator.generate(count)
        assert len(parse_swf(format_swf(jobs))) == count


class TestEndToEnd:
    def test_imported_trace_schedules(self):
        """A trace loaded from SWF runs through the batch simulator."""
        jobs = parse_swf(SAMPLE)
        result = BatchSimulator(64, get_policy("easy")).run(jobs)
        assert len(result.records) == 3
