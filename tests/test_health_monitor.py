"""Heartbeat monitor: detection through the fabric, with no oracle.

The load-bearing scenario is the false positive: a link outage silences
a healthy node's heartbeats and the monitor *wrongly* declares it dead,
because the monitor only knows what the fabric delivers.
"""

import math

import pytest

from repro.health import (
    DetectionSpec,
    HeartbeatMonitor,
    NodeHealthState,
)
from repro.network import Fabric, FabricFaultPlan, get_interconnect
from repro.sim import Simulator
from tests.conftest import small_fat_tree

HB = 1e-4


def make_monitor(plan=None, nodes=4, **spec_kwargs):
    """Monitor over the 4-host fat tree on gigabit ethernet."""
    sim = Simulator()
    fabric = Fabric(sim, small_fat_tree(),
                    get_interconnect("gigabit_ethernet"), fault_plan=plan)
    base = dict(detector="fixed", heartbeat_interval=HB,
                suspect_after=3 * HB, dead_after=6 * HB)
    base.update(spec_kwargs)
    monitor = HeartbeatMonitor(sim, fabric, nodes,
                               spec=DetectionSpec(**base))
    monitor.start()
    return sim, monitor


class TestHealthyOperation:
    def test_no_transitions_without_silence(self):
        sim, monitor = make_monitor()
        sim.run(until=5e-3)
        assert monitor.membership.epoch == 0
        assert monitor.heartbeats_sent > 0
        assert monitor.heartbeats_delivered > 0
        assert monitor.deaths == []
        assert math.isnan(monitor.mttd_seconds())

    def test_monitor_host_never_self_reports(self):
        """Node 0 is the monitor host; its self-heartbeats still count
        as delivered (zero-hop transfer)."""
        sim, monitor = make_monitor()
        sim.run(until=2e-3)
        assert monitor.membership.state_of(0) is NodeHealthState.HEALTHY

    def test_stop_quiesces(self):
        sim, monitor = make_monitor()
        sim.run(until=1e-3)
        monitor.stop()
        sim.run(until=sim.now)
        monitor.stop()  # idempotent on dead processes
        sent = monitor.heartbeats_sent
        sim.run(until=sim.now + 5e-3)
        assert monitor.heartbeats_sent == sent


class TestRealCrash:
    def test_crash_is_detected_within_the_timeout(self):
        sim, monitor = make_monitor()
        sim.run(until=2e-3)
        notice = monitor.death_notice()
        monitor.crash(2)
        assert monitor.crashed_nodes == (2,)
        sim.run(until=4e-3)
        assert notice.triggered
        deaths = monitor.pop_deaths()
        assert [d.node for d in deaths] == [2]
        record = deaths[0]
        assert not record.false_positive
        assert record.crashed_at == pytest.approx(2e-3)
        # Silence is measured from the last delivered heartbeat, and the
        # checker polls every half interval.
        assert 6 * HB - HB <= record.detect_seconds <= 6 * HB + 2 * HB
        assert monitor.membership.state_of(2) is NodeHealthState.DEAD
        assert monitor.pop_deaths() == []  # drained

    def test_suspicion_precedes_death(self):
        sim, monitor = make_monitor()
        sim.run(until=2e-3)
        monitor.crash(2)
        sim.run(until=4e-3)
        causes = [(e.node, e.old, e.new)
                  for e in monitor.membership.events if e.node == 2]
        assert causes == [
            (2, NodeHealthState.HEALTHY, NodeHealthState.SUSPECTED),
            (2, NodeHealthState.SUSPECTED, NodeHealthState.DEAD),
        ]
        # A real silence is not a false suspicion.
        assert monitor.false_suspicions == 0
        assert monitor.false_deaths == 0

    def test_repair_restore_cycle_resumes_heartbeats(self):
        sim, monitor = make_monitor()
        sim.run(until=2e-3)
        monitor.crash(2)
        sim.run(until=4e-3)
        monitor.pop_deaths()
        monitor.repair(2)
        assert (monitor.membership.state_of(2)
                is NodeHealthState.REPAIRING)
        sim.run(until=4.5e-3)
        monitor.restore(2)
        assert monitor.crashed_nodes == ()
        epoch = monitor.membership.epoch
        sim.run(until=8e-3)
        # Heartbeats resumed: no new suspicion of the restored node.
        assert monitor.membership.epoch == epoch
        assert monitor.membership.state_of(2) is NodeHealthState.HEALTHY

    def test_crash_is_idempotent(self):
        sim, monitor = make_monitor()
        sim.run(until=1e-3)
        monitor.crash(2)
        monitor.crash(2)
        sim.run(until=3e-3)
        assert len(monitor.deaths) == 1


class TestFalsePositives:
    def outage_plan(self, duration):
        """Sever host 1's only access link (h0,h1 share leaf s0)."""
        return FabricFaultPlan().link_down(("h", 1), ("s", 0),
                                           6e-4, 6e-4 + duration)

    def test_partition_causes_false_death(self):
        sim, monitor = make_monitor(plan=self.outage_plan(1e-3))
        sim.run(until=2e-3)
        deaths = monitor.pop_deaths()
        assert [d.node for d in deaths] == [1]
        assert deaths[0].false_positive
        assert math.isnan(deaths[0].detect_seconds)
        assert monitor.false_deaths == 1
        assert monitor.false_suspicions >= 1
        # Ground truth: nothing actually crashed.
        assert monitor.crashed_nodes == ()
        assert math.isnan(monitor.mttd_seconds())

    def test_falsely_declared_node_restores_with_live_sender(self):
        sim, monitor = make_monitor(plan=self.outage_plan(1e-3))
        sim.run(until=2e-3)
        monitor.pop_deaths()
        monitor.repair(1)
        monitor.restore(1)
        epoch = monitor.membership.epoch
        sim.run(until=5e-3)  # outage long over; heartbeats flow again
        assert monitor.membership.epoch == epoch
        assert monitor.membership.state_of(1) is NodeHealthState.HEALTHY

    def test_short_outage_only_suspects_then_refutes(self):
        sim, monitor = make_monitor(plan=self.outage_plan(4e-4),
                                    dead_after=8 * HB)
        sim.run(until=3e-3)
        assert monitor.deaths == []
        assert monitor.false_suspicions >= 1
        events = [(e.new, e.cause) for e in monitor.membership.events
                  if e.node == 1]
        assert (NodeHealthState.SUSPECTED, "missed-heartbeats") in events
        assert (NodeHealthState.HEALTHY, "heartbeat-resumed") in events
        assert monitor.membership.state_of(1) is NodeHealthState.HEALTHY

    def test_heartbeats_lost_counted(self):
        sim, monitor = make_monitor(plan=self.outage_plan(1e-3))
        sim.run(until=3e-3)
        assert monitor.heartbeats_lost > 0


class TestAdministrative:
    def test_drain_undrain(self):
        sim, monitor = make_monitor()
        sim.run(until=1e-3)
        monitor.drain(3)
        assert monitor.membership.state_of(3) is NodeHealthState.DRAINING
        assert monitor.membership.is_available(3)
        sim.run(until=2e-3)
        monitor.undrain(3)
        assert monitor.membership.state_of(3) is NodeHealthState.HEALTHY


class TestOutcome:
    def test_outcome_freezes_the_run(self):
        sim, monitor = make_monitor()
        sim.run(until=2e-3)
        monitor.crash(2)
        sim.run(until=4e-3)
        out = monitor.outcome()
        assert [d.node for d in out.detections] == [2]
        assert out.false_deaths == 0
        assert out.epoch == monitor.membership.epoch
        assert out.health_log == tuple(
            e.line() for e in monitor.membership.events)
        assert out.heartbeats_sent >= out.heartbeats_delivered
        assert 0.9 < out.availability <= 1.0


class TestValidation:
    def test_constructor_guards(self):
        sim = Simulator()
        fabric = Fabric(sim, small_fat_tree(),
                        get_interconnect("gigabit_ethernet"))
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, fabric, 0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, fabric, 5)  # only 4 hosts
        with pytest.raises(ValueError):
            HeartbeatMonitor(sim, fabric, 4,
                             spec=DetectionSpec(monitor_host=4))

    def test_double_start_raises(self):
        sim, monitor = make_monitor()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_spec_validation_and_defaults(self):
        with pytest.raises(ValueError):
            DetectionSpec(detector="psychic")
        with pytest.raises(ValueError):
            DetectionSpec(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            DetectionSpec(dead_after=-1.0)
        spec = DetectionSpec(heartbeat_interval=2e-4)
        assert spec.effective_check_interval == pytest.approx(1e-4)
        assert spec.effective_suspect_after == pytest.approx(6e-4)
        assert spec.effective_dead_after == pytest.approx(16e-4)

    def test_build_detector_dispatch(self):
        from repro.health import FixedTimeoutDetector, PhiAccrualDetector
        assert isinstance(DetectionSpec(detector="fixed").build_detector(),
                          FixedTimeoutDetector)
        assert isinstance(DetectionSpec(detector="phi").build_detector(),
                          PhiAccrualDetector)
