"""Chrome trace_event export: schema validity and byte-stability.

The golden property is determinism: two runs with one seed must render
byte-identical JSON, because trace diffs are how regressions in the
fault machinery get spotted.  Schema checks are structural (the keys
and phase codes Perfetto/chrome://tracing require), not a fixture file,
so legitimate instrumentation changes don't invalidate a blob.
"""

import json

from repro.fault.campaign import run_workload
from repro.obs import (
    Observability,
    chrome_trace,
    chrome_trace_json,
    render_metrics,
    write_chrome_trace,
    write_metrics,
)
from tests.conftest import make_summa_spec


def traced_campaign(seed=7):
    """One standard instrumented SUMMA campaign; returns its trace."""
    obs = Observability()
    run_workload(make_summa_spec(seed=seed), obs=obs)
    return obs


class TestSchema:
    def test_document_shape(self):
        doc = chrome_trace(traced_campaign())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"], "campaign produced an empty trace"

    def test_every_event_has_required_keys(self):
        for event in chrome_trace(traced_campaign())["traceEvents"]:
            assert event["ph"] in ("M", "X", "i")
            assert event["pid"] == 1
            assert isinstance(event["tid"], int) and event["tid"] >= 1
            assert isinstance(event["name"], str) and event["name"]
            if event["ph"] == "M":
                assert event["name"] == "thread_name"
                assert event["args"]["name"]
            else:
                assert event["ts"] >= 0.0
                assert isinstance(event["args"], dict)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_timestamps_monotone_per_tid(self):
        rows = [e for e in chrome_trace(traced_campaign())["traceEvents"]
                if e["ph"] != "M"]
        last = {}
        for event in rows:
            tid = event["tid"]
            assert event["ts"] >= last.get(tid, 0.0), (
                f"ts went backwards on tid {tid}: {event}")
            last[tid] = event["ts"]

    def test_json_round_trips(self):
        text = chrome_trace_json(traced_campaign())
        doc = json.loads(text)
        assert doc["traceEvents"]


class TestDeterminism:
    def test_byte_identical_across_same_seed_runs(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(traced_campaign(), str(first))
        write_chrome_trace(traced_campaign(), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_changes_the_trace(self):
        assert (chrome_trace_json(traced_campaign(seed=7))
                != chrome_trace_json(traced_campaign(seed=8)))

    def test_metrics_dump_identical_across_same_seed_runs(self, tmp_path):
        first, second = tmp_path / "a.txt", tmp_path / "b.txt"
        write_metrics(traced_campaign().metrics, str(first))
        write_metrics(traced_campaign().metrics, str(second))
        assert first.read_bytes() == second.read_bytes()
        text = first.read_text()
        assert "counter ckpt.commits" in text
        assert "gauge campaign.incarnations" in text


class TestMetricsRender:
    def test_label_sets_render_sorted_and_greppable(self):
        text = render_metrics(traced_campaign().metrics)
        lines = text.splitlines()
        for kind in ("counter", "gauge", "histogram"):
            keys = [line.split(" ")[1] for line in lines
                    if line.startswith(kind + " ")]
            assert keys == sorted(keys), f"{kind} series out of order"
        ops = [line for line in lines
               if line.startswith("counter comm.ops{")]
        assert ops and all("op=" in line and "rank=" in line
                           for line in ops)

    def test_empty_registry_renders_empty(self):
        assert render_metrics(Observability().metrics) == ""
