"""Spare pools: the health-layer core and the detector-driven wrapper.

The wrapper's contract is the satellite fix from the ISSUE: spares
activate on *declared* deaths (a :class:`DeathRecord` from the
monitor), never on ground truth — passing anything else is a type
error, by design.
"""

import pytest

from repro.fault import DetectorDrivenSparePool
from repro.health import SparePool
from repro.health.monitor import DeathRecord


class TestSparePool:
    def test_activates_lowest_id_first(self):
        pool = SparePool([7, 5, 9])
        assert pool.activate() == 5
        assert pool.activate() == 7
        assert pool.activate() == 9
        assert pool.activate() is None

    def test_depth_and_min_depth_track_activations(self):
        pool = SparePool([1, 2])
        assert pool.depth == 2
        pool.activate()
        assert pool.depth == 1
        assert pool.min_depth == 1
        pool.refill(1)
        assert pool.depth == 2
        assert pool.min_depth == 1   # the low-water mark sticks

    def test_refill_rejects_present_node(self):
        pool = SparePool([1])
        with pytest.raises(ValueError):
            pool.refill(1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SparePool([3, 3])

    def test_discard_removes_a_pooled_spare(self):
        pool = SparePool([1, 2])
        assert pool.discard(2)
        assert not pool.discard(2)
        assert pool.ids == (1,)


class TestDetectorDrivenSparePool:
    def declared(self, node, false=False):
        return DeathRecord(node=node, declared_at=1.0,
                           crashed_at=None if false else 0.5)

    def test_activation_requires_a_death_record(self):
        pool = DetectorDrivenSparePool([10, 11])
        with pytest.raises(TypeError, match="DeathRecord"):
            pool.activate(3)

    def test_declared_death_activates_a_spare(self):
        pool = DetectorDrivenSparePool([10, 11])
        assert pool.activate(self.declared(2)) == 10
        assert pool.activations == 1
        assert pool.false_activations == 0
        assert [record.node for record in pool.records] == [2]

    def test_false_declaration_still_activates_but_is_counted(self):
        # The whole point: the supervisor cannot tell a partition from
        # a crash, so it must act — and the accounting records the lie.
        pool = DetectorDrivenSparePool([10])
        assert pool.activate(self.declared(2, false=True)) == 10
        assert pool.false_activations == 1

    def test_exhausted_pool_returns_none(self):
        pool = DetectorDrivenSparePool([10])
        pool.activate(self.declared(1))
        assert pool.activate(self.declared(2)) is None
        assert pool.min_depth == 0

    def test_refill_and_membership_delegate(self):
        pool = DetectorDrivenSparePool([10])
        node = pool.activate(self.declared(1))
        assert node not in pool
        pool.refill(node)
        assert node in pool
        assert pool.depth == 1
