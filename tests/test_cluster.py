"""Cluster spec, packaging, power, cost, metrics, designers."""

import pytest

from repro.cluster import (
    ClusterSpec,
    CostModel,
    MPP_PREMIUM_FACTOR,
    PowerModel,
    RackConfig,
    cluster_metrics,
    design_cluster,
    design_to_budget,
    design_to_peak,
    pack_cluster,
)
from repro.network import get_interconnect
from repro.nodes import make_node


@pytest.fixture
def small_cluster(nominal):
    return design_cluster("test", nominal, 2005, 64, "conventional",
                          "infiniband_4x")


class TestClusterSpec:
    def test_aggregates(self, nominal):
        node = make_node("conventional", nominal, 2005)
        spec = ClusterSpec("c", node, 100, get_interconnect("gigabit_ethernet"),
                           2005)
        assert spec.peak_flops == pytest.approx(100 * node.peak_flops)
        assert spec.memory_bytes == pytest.approx(100 * node.memory_bytes)
        assert spec.total_cores == 100 * node.total_cores

    def test_interconnect_availability_enforced(self, nominal):
        node = make_node("conventional", nominal, 2002.75)
        with pytest.raises(ValueError, match="not available"):
            ClusterSpec("c", node, 10, get_interconnect("infiniband_12x"),
                        2002.75)

    def test_node_count_validated(self, nominal):
        node = make_node("conventional", nominal, 2005)
        with pytest.raises(ValueError):
            ClusterSpec("c", node, 0, get_interconnect("gigabit_ethernet"),
                        2005)


class TestPackaging:
    def test_packing_obeys_both_constraints(self, small_cluster):
        rack = RackConfig()
        packaging = pack_cluster(small_cluster, rack)
        by_space = int(rack.usable_units // small_cluster.node.rack_units)
        by_power = int(rack.power_limit_watts
                       // small_cluster.node.power_watts)
        assert packaging.nodes_per_rack == min(by_space, by_power)
        assert packaging.power_limited == (by_power < by_space)
        assert packaging.racks == -(-64 // packaging.nodes_per_rack)

    def test_generous_power_feed_makes_space_bind(self, small_cluster):
        rack = RackConfig(power_limit_watts=100_000)
        packaging = pack_cluster(small_cluster, rack)
        assert not packaging.power_limited
        assert packaging.nodes_per_rack == int(rack.usable_units)

    def test_power_limited_packing(self, nominal):
        """Dense blades hit the rack power feed before the rack height —
        the blade-era phenomenon."""
        spec = design_cluster("dense", nominal, 2006, 500, "blade",
                              "infiniband_4x")
        packaging = pack_cluster(spec, RackConfig(power_limit_watts=5_000))
        assert packaging.power_limited

    def test_floor_area_scales_with_racks(self, small_cluster):
        rack = RackConfig()
        packaging = pack_cluster(small_cluster, rack)
        assert packaging.floor_area_m2 == pytest.approx(
            packaging.racks * rack.floor_area_m2)

    def test_rack_validation(self):
        with pytest.raises(ValueError):
            RackConfig(total_units=4.0, overhead_units=5.0)


class TestPowerModel:
    def test_breakdown_sums(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        breakdown = PowerModel(pue=2.0).breakdown(small_cluster, packaging)
        assert breakdown.total_watts == pytest.approx(
            breakdown.it_watts * 2.0)
        assert breakdown.nodes_watts == pytest.approx(
            small_cluster.node.power_watts * 64)

    def test_pue_one_means_no_cooling(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        breakdown = PowerModel(pue=1.0).breakdown(small_cluster, packaging)
        assert breakdown.cooling_watts == 0.0

    def test_pue_validated(self):
        with pytest.raises(ValueError):
            PowerModel(pue=0.5)

    def test_annual_energy(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        model = PowerModel()
        joules = model.annual_energy_joules(small_cluster, packaging)
        watts = model.breakdown(small_cluster, packaging).total_watts
        assert joules == pytest.approx(watts * 365.25 * 86400)


class TestCostModel:
    def test_purchase_breakdown(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        cost = CostModel(integration_fraction=0.1).purchase(
            small_cluster, packaging)
        hardware = (cost.nodes_dollars + cost.network_dollars
                    + cost.racks_dollars)
        assert cost.integration_dollars == pytest.approx(0.1 * hardware)
        assert cost.total_dollars == pytest.approx(hardware * 1.1)

    def test_tco_grows_with_years(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        model = CostModel()
        assert (model.tco(small_cluster, packaging, 3.0)
                > model.tco(small_cluster, packaging, 1.0)
                > model.tco(small_cluster, packaging, 0.0))

    def test_mpp_premium(self, small_cluster):
        packaging = pack_cluster(small_cluster)
        model = CostModel()
        assert model.mpp_dollars_per_flops(
            small_cluster, packaging) == pytest.approx(
            MPP_PREMIUM_FACTOR * model.dollars_per_flops(small_cluster,
                                                         packaging))

    def test_validation(self, small_cluster):
        with pytest.raises(ValueError):
            CostModel(dollars_per_kwh=0.0)
        packaging = pack_cluster(small_cluster)
        with pytest.raises(ValueError):
            CostModel().tco(small_cluster, packaging, -1.0)


class TestDesigners:
    def test_budget_designer_respects_budget(self, nominal):
        budget = 2e6
        spec = design_to_budget(budget, nominal, 2005)
        metrics = cluster_metrics(spec)
        assert metrics.purchase_dollars <= budget
        # Adding one node would bust the budget.
        bigger = design_cluster("x", nominal, 2005, spec.node_count + 1,
                                interconnect=spec.interconnect)
        assert cluster_metrics(bigger).purchase_dollars > budget

    def test_budget_too_small_raises(self, nominal):
        with pytest.raises(ValueError, match="budget"):
            design_to_budget(100.0, nominal, 2005)

    def test_peak_designer_minimal(self, nominal):
        spec = design_to_peak(1e13, nominal, 2005, "conventional",
                              "infiniband_4x")
        assert spec.peak_flops >= 1e13
        assert (spec.node_count - 1) * spec.node.peak_flops < 1e13

    def test_default_interconnect_is_best_available(self, nominal):
        spec_2002 = design_cluster("a", nominal, 2002.9, 16)
        spec_2006 = design_cluster("b", nominal, 2006, 16)
        assert spec_2002.interconnect.name == "quadrics_elan3"
        assert spec_2006.interconnect.name == "infiniband_12x"

    def test_more_budget_more_nodes(self, nominal):
        small = design_to_budget(1e6, nominal, 2005)
        large = design_to_budget(1e7, nominal, 2005)
        assert large.node_count > 5 * small.node_count


class TestMetrics:
    def test_metrics_consistency(self, small_cluster):
        metrics = cluster_metrics(small_cluster)
        assert metrics.dollars_per_flops == pytest.approx(
            metrics.purchase_dollars / metrics.peak_flops)
        assert metrics.watts_per_flops == pytest.approx(
            metrics.total_watts / metrics.peak_flops)
        assert metrics.gflops_per_kw == pytest.approx(
            (metrics.peak_flops / 1e9) / (metrics.total_watts / 1e3))

    def test_blade_density_beats_conventional(self, nominal):
        blade = cluster_metrics(design_cluster(
            "b", nominal, 2006, 512, "blade", "infiniband_4x"))
        conventional = cluster_metrics(design_cluster(
            "c", nominal, 2006, 512, "conventional", "infiniband_4x"))
        assert blade.flops_per_m2 > conventional.flops_per_m2
        assert blade.packaging.racks < conventional.packaging.racks
