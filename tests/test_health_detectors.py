"""Failure detectors as pure virtual-time functions."""

import pytest

from repro.health import (
    FixedTimeoutDetector,
    PhiAccrualDetector,
    Verdict,
)


class TestFixedTimeout:
    def make(self):
        return FixedTimeoutDetector(suspect_after=3.0, dead_after=8.0)

    def test_thresholds(self):
        d = self.make()
        d.observe(0, 10.0)
        assert d.assess(0, 12.0) is Verdict.TRUST
        assert d.assess(0, 13.0) is Verdict.SUSPECT
        assert d.assess(0, 17.9) is Verdict.SUSPECT
        assert d.assess(0, 18.0) is Verdict.DEAD

    def test_arrival_restarts_the_clock(self):
        d = self.make()
        d.observe(0, 0.0)
        assert d.assess(0, 5.0) is Verdict.SUSPECT
        d.observe(0, 5.0)
        assert d.assess(0, 7.0) is Verdict.TRUST

    def test_unknown_node_is_trusted(self):
        assert self.make().assess(9, 100.0) is Verdict.TRUST

    def test_reset_grants_grace_period(self):
        d = self.make()
        d.observe(0, 0.0)
        assert d.assess(0, 20.0) is Verdict.DEAD
        d.reset(0, 20.0)
        assert d.assess(0, 21.0) is Verdict.TRUST

    def test_per_node_isolation(self):
        d = self.make()
        d.observe(0, 0.0)
        d.observe(1, 9.0)
        assert d.assess(0, 10.0) is Verdict.DEAD
        assert d.assess(1, 10.0) is Verdict.TRUST

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTimeoutDetector(suspect_after=0.0, dead_after=1.0)
        with pytest.raises(ValueError):
            FixedTimeoutDetector(suspect_after=2.0, dead_after=1.0)


class TestPhiAccrual:
    def make(self, **kwargs):
        base = dict(bootstrap_interval=1.0, suspect_phi=1.5,
                    dead_phi=3.0, window=4)
        base.update(kwargs)
        return PhiAccrualDetector(**base)

    def test_phi_grows_with_silence(self):
        d = self.make()
        d.observe(0, 0.0)
        levels = [d.phi(0, t) for t in (0.0, 1.0, 3.0, 9.0)]
        assert levels[0] == 0.0
        assert levels == sorted(levels)
        assert levels[-1] > 3.0

    def test_verdicts_threshold_phi(self):
        d = self.make()
        d.observe(0, 0.0)
        assert d.assess(0, 1.0) is Verdict.TRUST
        # phi = t * log10(e): suspect at ~3.45, dead at ~6.9.
        assert d.assess(0, 4.0) is Verdict.SUSPECT
        assert d.assess(0, 8.0) is Verdict.DEAD

    def test_bootstrap_until_two_gaps(self):
        d = self.make(bootstrap_interval=10.0)
        d.observe(0, 0.0)
        d.observe(0, 1.0)  # one gap: still on the bootstrap mean
        assert d.assess(0, 5.0) is Verdict.TRUST
        d.observe(0, 2.0)  # second gap: observed mean (1.0) takes over
        assert d.assess(0, 10.0) is Verdict.DEAD

    def test_jittery_network_earns_patience(self):
        """The same silence is judged against the observed cadence: a
        node heartbeating every 4 s is trusted where a 1 s node is
        already suspect."""
        d = self.make()
        for t in (0, 1, 2, 3, 4):
            d.observe(0, float(t))
            d.observe(1, float(t) * 4.0)
        silence = 5.0
        assert d.phi(0, 4.0 + silence) > d.phi(1, 16.0 + silence)

    def test_window_forgets_old_gaps(self):
        d = self.make(window=2)
        d.observe(0, 0.0)
        d.observe(0, 10.0)
        d.observe(0, 20.0)
        for t in (21.0, 22.0, 23.0):
            d.observe(0, t)
        # The 10 s gaps have rolled out of the window; the mean is 1 s.
        assert d.assess(0, 31.0) is Verdict.DEAD

    def test_reset_forgets_history(self):
        d = self.make(bootstrap_interval=5.0)
        for t in (0.0, 0.1, 0.2, 0.3):
            d.observe(0, t)
        assert d.assess(0, 1.0) is Verdict.DEAD
        d.reset(0, 1.0)
        assert d.assess(0, 2.0) is Verdict.TRUST

    def test_fresh_node_phi_zero(self):
        d = self.make()
        assert d.phi(0, 50.0) == 0.0
        assert d.assess(0, 50.0) is Verdict.TRUST

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(bootstrap_interval=0.0)
        with pytest.raises(ValueError):
            self.make(suspect_phi=0.0)
        with pytest.raises(ValueError):
            self.make(suspect_phi=3.0, dead_phi=1.0)
        with pytest.raises(ValueError):
            self.make(window=1)
