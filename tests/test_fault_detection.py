"""Detection-driven campaigns: recovery waits for the detector.

The oracle campaign rolls back the instant a fault fires; these runs
only roll back when the heartbeat monitor *declares* a death — so lost
work includes the detection window, a partition can force a spurious
rollback, and the acceptance bar is that the answers stay bit-identical
through all of it.
"""

import math

import pytest

from repro.fault import (
    LinkFaultSpec,
    NodeFaultSpec,
    run_campaign,
)
from repro.health import DetectionSpec
from tests.conftest import make_stencil_spec

HB = 1e-4

#: Tight fixed-timeout detection: suspect after 3 beats, dead after 6.
TIGHT = DetectionSpec(detector="fixed", heartbeat_interval=HB,
                      suspect_after=3 * HB, dead_after=6 * HB)

#: Severs host 1's only access link for 1 ms — longer than TIGHT's
#: patience, so node 1 is falsely declared dead while its application
#: traffic survives on reliable retries.
PARTITION = LinkFaultSpec(start=6e-4, duration=1e-3,
                          a=("h", 1), b=("s", 0))

#: Strikes while the (partition-slowed) run is still going.
CRASH = NodeFaultSpec(time=2.5e-3, rank=2)

#: Strikes mid-run even without a partition (the clean stencil finishes
#: around 2.3 ms).
EARLY_CRASH = NodeFaultSpec(time=1.5e-3, rank=2)


def detected_spec(**overrides):
    base = dict(name="test-detection", detection=TIGHT,
                node_faults=(CRASH,), link_faults=())
    base.update(overrides)
    return make_stencil_spec(**base)


class TestRealFault:
    def test_rollback_waits_for_the_detector(self):
        report = run_campaign(detected_spec(node_faults=(EARLY_CRASH,)))
        assert report.answers_match
        assert report.faulty.incarnations == 2
        detection = report.faulty.detection
        assert detection is not None
        assert len(detection.detections) == 1
        record = detection.detections[0]
        assert record.node == EARLY_CRASH.rank
        assert not record.false_positive
        # MTTD is about the dead timeout (silence is clocked from the
        # last delivered heartbeat; the checker quantizes).
        assert 6 * HB - HB <= record.detect_seconds <= 6 * HB + 2 * HB
        assert detection.false_deaths == 0
        # The detection window is paid as lost work on top of the
        # oracle's compute-since-checkpoint bill.
        assert report.faulty.lost_work_seconds > record.detect_seconds

    def test_health_log_shows_the_lifecycle(self):
        report = run_campaign(detected_spec(node_faults=(EARLY_CRASH,)))
        log = "\n".join(report.faulty.detection.health_log)
        assert "cause=missed-heartbeats" in log
        assert "cause=silence-confirmed" in log
        assert "cause=restored" in log

    def test_summary_reports_detection(self):
        summary = run_campaign(
            detected_spec(node_faults=(EARLY_CRASH,))).summary()
        assert "declared 1 death(s)" in summary
        assert "MTTD" in summary

    def test_oracle_path_untouched_without_detection(self):
        report = run_campaign(detected_spec(node_faults=(EARLY_CRASH,),
                                            detection=None))
        assert report.answers_match
        assert report.faulty.detection is None


class TestFalseSuspicion:
    def test_partition_forces_spurious_but_safe_rollback(self):
        """The headline acceptance scenario: a partition tricks the
        detector into declaring a live rank dead.  The supervisor rolls
        back anyway — and the answers are still bit-identical."""
        report = run_campaign(detected_spec(link_faults=(PARTITION,)))
        assert report.answers_match
        detection = report.faulty.detection
        assert detection.false_deaths == 1
        assert len(detection.detections) == 2
        false = [d for d in detection.detections if d.false_positive]
        assert [d.node for d in false] == [1]
        assert math.isnan(false[0].detect_seconds)
        # One real rollback + one spurious rollback = 3 incarnations.
        assert report.faulty.incarnations == 3
        # The spurious rollback is first in the trace (time, rank, step).
        assert report.faulty.fault_trace[0][1] == 1
        # Application traffic rode out the partition on retries.
        assert report.retries > 0

    def test_loose_timeout_rides_out_the_partition(self):
        loose = DetectionSpec(detector="fixed", heartbeat_interval=HB,
                              suspect_after=8 * HB, dead_after=16 * HB)
        report = run_campaign(detected_spec(detection=loose,
                                            link_faults=(PARTITION,)))
        assert report.answers_match
        detection = report.faulty.detection
        assert detection.false_deaths == 0
        assert len(detection.detections) == 1
        assert report.faulty.incarnations == 2
        # The partition still cost suspicion, just not a death.
        assert detection.false_suspicions >= 1


class TestPhiAccrual:
    def test_phi_detector_recovers_bit_identically(self):
        phi = DetectionSpec(detector="phi", heartbeat_interval=HB)
        report = run_campaign(detected_spec(detection=phi,
                                            link_faults=(PARTITION,)))
        assert report.answers_match
        detection = report.faulty.detection
        real = [d for d in detection.detections if not d.false_positive]
        assert [d.node for d in real] == [CRASH.rank]


class TestNoFaults:
    def test_clean_run_declares_nothing(self):
        report = run_campaign(detected_spec(node_faults=(),
                                            link_faults=()))
        assert report.answers_match
        assert report.faulty.incarnations == 1
        detection = report.faulty.detection
        assert detection.detections == ()
        assert detection.false_deaths == 0
        assert math.isnan(detection.mttd_seconds)
        assert detection.heartbeats_delivered > 0
