"""DetSan, the runtime determinism sanitizer: clean engines produce
equal digests; a planted set-iteration bug is caught with the first
divergent event attributed to the offending process; campaigns run
deterministically under the `python -m repro detsan` CLI."""

import pytest

from repro.obs import Observability
from repro.sim import (
    DetSanRecorder,
    RandomStreams,
    Simulator,
    Timeout,
    first_divergence,
)
from repro.sim.detsan import EventRecord, span_context


def clean_workload(sim):
    """A small deterministic workload: two processes, a few timeouts."""
    streams = RandomStreams(11)

    def worker(name):
        gen = streams.fresh(f"worker.{name}")
        for _ in range(4):
            yield Timeout(sim, float(gen.integers(1, 5)),
                          name=f"step:{name}")

    sim.process(worker("a"), name="proc-a")
    sim.process(worker("b"), name="proc-b")
    sim.run()


class _Marble:
    """Identity-hashed token: its set position depends on its address."""


def planted_workload(sim, pool):
    """The planted bug: visits a set of identity-hashed objects in raw
    iteration order, leaking each visited address into an event name."""

    def visitor():
        for marble in pool:  # noqa -- deliberately nondeterministic
            yield Timeout(sim, 1.0, name=f"visit-{id(marble):x}")

    sim.process(visitor(), name="marble-visitor")
    sim.run()


def record_run(workload, *args):
    """Run ``workload`` under a fresh recorder and return the recorder."""
    recorder = DetSanRecorder()
    sim = Simulator(detsan=recorder)
    workload(sim, *args)
    return recorder


class TestCleanRuns:
    def test_same_seed_runs_have_equal_digests(self):
        first = record_run(clean_workload)
        second = record_run(clean_workload)
        assert first.events_folded == second.events_folded > 0
        assert first.digest == second.digest
        assert first_divergence(first, second) is None

    def test_records_carry_process_attribution(self):
        recorder = record_run(clean_workload)
        owners = {name for record in recorder.records
                  for name in record.processes}
        assert {"proc-a", "proc-b"} <= owners

    def test_digest_only_mode_keeps_no_records(self):
        recorder = DetSanRecorder(keep_records=False)
        sim = Simulator(detsan=recorder)
        clean_workload(sim)
        assert recorder.records == []
        assert recorder.events_folded > 0
        with pytest.raises(ValueError):
            first_divergence(recorder, recorder)

    def test_detsan_off_is_default(self):
        sim = Simulator()
        assert sim._detsan is None


class TestPlantedBug:
    def test_planted_set_iteration_bug_is_caught_and_attributed(self):
        # Keeping the first run's marbles alive while the second run
        # allocates guarantees disjoint addresses: the first visited
        # marble's id -- leaked into the event name -- must differ.
        pool_a = {_Marble() for _ in range(6)}
        pool_b = {_Marble() for _ in range(6)}
        first = record_run(planted_workload, pool_a)
        second = record_run(planted_workload, pool_b)

        assert first.digest != second.digest
        divergence = first_divergence(first, second)
        assert divergence is not None
        # Event 0 is the visitor's bootstrap (identical); the first
        # visit timeout is the first possible divergence.
        assert divergence.index >= 1
        assert divergence.left is not None
        assert divergence.right is not None
        assert divergence.left.name.startswith("visit-")
        assert divergence.right.name.startswith("visit-")
        assert divergence.left.name != divergence.right.name
        # Attribution: the divergent event resumes the planted process.
        assert "marble-visitor" in divergence.right.processes
        assert "marble-visitor" in divergence.describe()

    def test_describe_names_first_divergent_index(self):
        pool_a = {_Marble() for _ in range(4)}
        pool_b = {_Marble() for _ in range(4)}
        divergence = first_divergence(record_run(planted_workload, pool_a),
                                      record_run(planted_workload, pool_b))
        assert divergence is not None
        report = divergence.describe()
        assert f"#{divergence.index}" in report
        assert "run A:" in report and "run B:" in report


class TestSpanContext:
    def test_divergence_report_carries_open_spans(self):
        def traced(sim):
            def worker():
                with sim.obs.span("inner-phase",
                                  track=sim.obs.unique_track("spanner")):
                    yield Timeout(sim, 2.0, name="work")
            sim.process(worker(), name="spanner")
            sim.run()

        obs = Observability()
        recorder = DetSanRecorder()
        sim = Simulator(obs=obs, detsan=recorder)
        traced(sim)
        obs.finalize()
        work = [record for record in recorder.records
                if record.name == "work"]
        assert work
        spans = span_context(obs, work[0])
        assert "inner-phase" in spans

    def test_span_context_tolerates_absent_obs(self):
        record = EventRecord(index=0, time=0.0, priority=1, sequence=1,
                             kind="Timeout", name="x", processes=())
        assert span_context(object(), record) == ()
