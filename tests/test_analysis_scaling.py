"""Speedup laws and the historical record."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scaling import (
    amdahl_speedup,
    fit_serial_fraction,
    gustafson_speedup,
    isoefficiency_problem_size,
    karp_flatt,
)
from repro.tech.history import (
    TOP500_NUMBER_ONES,
    first_commodity_petaflops_year,
    historical_slope,
)


class TestAmdahl:
    def test_limits(self):
        assert amdahl_speedup(0.0, 64) == pytest.approx(64.0)
        assert amdahl_speedup(1.0, 64) == pytest.approx(1.0)

    def test_asymptote_is_inverse_serial_fraction(self):
        assert amdahl_speedup(0.05, 1e9) == pytest.approx(20.0, rel=1e-6)

    def test_vectorised(self):
        curve = amdahl_speedup(0.1, [1, 2, 4])
        assert np.allclose(curve, [1.0, 1.0 / 0.55, 1.0 / 0.325])

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)


class TestGustafson:
    def test_limits(self):
        assert gustafson_speedup(0.0, 64) == pytest.approx(64.0)
        assert gustafson_speedup(1.0, 64) == pytest.approx(1.0)

    def test_linear_in_ranks(self):
        curve = gustafson_speedup(0.1, np.array([10.0, 20.0]))
        assert curve[1] - curve[0] == pytest.approx(0.9 * 10.0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_gustafson_never_below_amdahl(self, fraction, ranks):
        """The scaled reading is always at least as optimistic."""
        assert (gustafson_speedup(fraction, ranks)
                >= amdahl_speedup(fraction, ranks) - 1e-9)


class TestKarpFlatt:
    def test_recovers_exact_serial_fraction(self):
        for fraction in (0.01, 0.1, 0.3):
            speedup = amdahl_speedup(fraction, 16)
            assert karp_flatt(speedup, 16) == pytest.approx(fraction)

    def test_ideal_speedup_gives_zero(self):
        assert karp_flatt(8.0, 8) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            karp_flatt(2.0, 1)
        with pytest.raises(ValueError):
            karp_flatt(0.0, 4)


class TestFit:
    def test_exact_amdahl_curve_recovered(self):
        ranks = [1, 2, 4, 8, 16, 32]
        speedups = amdahl_speedup(0.07, ranks)
        fraction, rms = fit_serial_fraction(ranks, speedups)
        assert fraction == pytest.approx(0.07, abs=1e-9)
        assert rms == pytest.approx(0.0, abs=1e-9)

    def test_noisy_curve_close(self):
        rng = np.random.default_rng(0)
        ranks = [1, 2, 4, 8, 16, 32, 64]
        speedups = amdahl_speedup(0.05, ranks) * rng.normal(1.0, 0.01,
                                                            size=7)
        fraction, _rms = fit_serial_fraction(ranks, speedups)
        assert fraction == pytest.approx(0.05, abs=0.02)

    def test_clipped_into_unit_interval(self):
        # Superlinear data would fit a negative fraction; must clip to 0.
        fraction, _ = fit_serial_fraction([1, 2, 4], [1.0, 2.5, 6.0])
        assert fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_serial_fraction([1], [1.0])
        with pytest.raises(ValueError):
            fit_serial_fraction([1, 2], [1.0, -2.0])


class TestIsoefficiency:
    def test_linear_overhead(self):
        assert isoefficiency_problem_size(100.0, 4, 16) == pytest.approx(400.0)

    def test_superlinear_overhead(self):
        grown = isoefficiency_problem_size(100.0, 4, 16,
                                           overhead_exponent=1.5)
        assert grown == pytest.approx(100.0 * 4 ** 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            isoefficiency_problem_size(0.0, 1, 2)
        with pytest.raises(ValueError):
            isoefficiency_problem_size(1.0, 1, 2, overhead_exponent=-1)


class TestHistory:
    def test_record_is_chronological_and_growing_overall(self):
        years = [e.year for e in TOP500_NUMBER_ONES]
        assert years == sorted(years)
        assert (TOP500_NUMBER_ONES[-1].rmax_tflops
                > 1000 * TOP500_NUMBER_ONES[0].rmax_tflops)

    def test_famous_slope(self):
        """The full-record slope is the celebrated ~1.9x/year."""
        assert 1.7 < historical_slope() < 2.0

    def test_first_commodity_petaflops_is_roadrunner(self):
        assert first_commodity_petaflops_year() == pytest.approx(2008.5)

    def test_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            historical_slope(2008.4, 2008.6)
