"""The incremental lint cache: hit accounting, invalidation triggers,
corruption fallback, byte-identical findings, and the warm-tree speedup."""

import json
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.lint import (
    LintCache,
    RULES,
    get_rules,
    lint_paths,
    rule_fingerprint,
)
from repro.lint.cache import CACHE_FILE_NAME, _content_digest
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

CLEAN = '''\
"""A clean module."""

__all__ = ["answer"]


def answer():
    """Return a constant."""
    return 42
'''

DIRTY = '"""Doc."""\n\n__all__ = []\n\nRATE = 1e9\n'


def make_tree(tmp_path, count=4, dirty=0):
    """Write ``count`` fixture modules, the first ``dirty`` with a REP003
    violation, and return their paths."""
    paths = []
    for index in range(count):
        path = tmp_path / "repro" / f"mod{index}.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(DIRTY if index < dirty else CLEAN)
        paths.append(path)
    return paths


def run(tmp_path, cache=None, rules=RULES):
    return lint_paths([tmp_path / "repro"], tmp_path, rules, cache=cache)


def cache_at(tmp_path, rules=RULES, **kwargs):
    return LintCache(tmp_path / "lint-cache", rules, **kwargs)


class TestCacheHits:
    def test_cold_run_has_no_hits_and_populates(self, tmp_path):
        make_tree(tmp_path)
        result = run(tmp_path, cache_at(tmp_path))
        assert result.cache_hits == 0
        assert (tmp_path / "lint-cache" / CACHE_FILE_NAME).is_file()

    def test_warm_run_hits_every_file_with_identical_findings(
            self, tmp_path):
        make_tree(tmp_path, dirty=2)
        cold = run(tmp_path, cache_at(tmp_path))
        warm = run(tmp_path, cache_at(tmp_path))
        assert warm.cache_hits == warm.files_scanned == 4
        assert warm.findings == cold.findings
        no_cache = run(tmp_path)
        assert warm.findings == no_cache.findings

    def test_editing_one_file_relints_only_that_file(self, tmp_path):
        paths = make_tree(tmp_path)
        run(tmp_path, cache_at(tmp_path))
        paths[1].write_text(DIRTY)
        result = run(tmp_path, cache_at(tmp_path))
        assert result.cache_hits == 3
        assert [f.rule for f in result.findings] == ["REP003"]
        assert result.findings[0].path == "repro/mod1.py"

    def test_rule_selection_change_forces_full_relint(self, tmp_path):
        make_tree(tmp_path)
        run(tmp_path, cache_at(tmp_path))
        subset = get_rules(["REP003"])
        assert rule_fingerprint(subset) != rule_fingerprint(RULES)
        result = run(tmp_path, cache_at(tmp_path, rules=subset),
                     rules=subset)
        assert result.cache_hits == 0

    def test_engine_version_bump_forces_full_relint(self, tmp_path):
        make_tree(tmp_path)
        run(tmp_path, cache_at(tmp_path))
        bumped = run(tmp_path, cache_at(tmp_path, engine_version=999))
        assert bumped.cache_hits == 0
        rewarmed = run(tmp_path, cache_at(tmp_path, engine_version=999))
        assert rewarmed.cache_hits == rewarmed.files_scanned

    def test_parse_failures_are_cached_too(self, tmp_path):
        path = tmp_path / "repro" / "broken.py"
        path.parent.mkdir(parents=True)
        path.write_text("def broken(:\n")
        cold = run(tmp_path, cache_at(tmp_path))
        warm = run(tmp_path, cache_at(tmp_path))
        assert warm.cache_hits == 1
        assert warm.findings == cold.findings
        assert [f.rule for f in warm.findings] == ["REP000"]

    def test_all_hit_run_does_not_rewrite_the_cache_file(self, tmp_path):
        make_tree(tmp_path)
        run(tmp_path, cache_at(tmp_path))
        cache_file = tmp_path / "lint-cache" / CACHE_FILE_NAME
        before = cache_file.read_bytes()
        stamp = cache_file.stat().st_mtime_ns
        run(tmp_path, cache_at(tmp_path))
        assert cache_file.read_bytes() == before
        assert cache_file.stat().st_mtime_ns == stamp


class TestCorruption:
    """A damaged cache degrades to a cold run; it never crashes or lies."""

    def damage_then_run(self, tmp_path, content):
        cache_file = tmp_path / "lint-cache" / CACHE_FILE_NAME
        cache_file.write_text(content)
        result = run(tmp_path, cache_at(tmp_path))
        clean = run(tmp_path)
        assert result.findings == clean.findings
        return result

    def test_garbage_bytes(self, tmp_path):
        make_tree(tmp_path, dirty=1)
        run(tmp_path, cache_at(tmp_path))
        result = self.damage_then_run(tmp_path, "\x00not json at all\x7f")
        assert result.cache_hits == 0

    def test_truncated_json(self, tmp_path):
        make_tree(tmp_path, dirty=1)
        run(tmp_path, cache_at(tmp_path))
        cache_file = tmp_path / "lint-cache" / CACHE_FILE_NAME
        halved = cache_file.read_text()[: cache_file.stat().st_size // 2]
        result = self.damage_then_run(tmp_path, halved)
        assert result.cache_hits == 0

    def test_wrong_toplevel_types(self, tmp_path):
        make_tree(tmp_path, dirty=1)
        run(tmp_path, cache_at(tmp_path))
        for payload in ('[]', '{"files": []}', '{"files": 7}', 'null'):
            result = self.damage_then_run(tmp_path, payload)
            assert result.cache_hits == 0

    def test_malformed_entry_is_a_miss_not_a_crash(self, tmp_path):
        make_tree(tmp_path, count=1, dirty=1)
        cache = cache_at(tmp_path)
        run(tmp_path, cache)
        source = (tmp_path / "repro" / "mod0.py").read_text()
        # Right digest, nonsense findings: the entry must be rejected.
        payload = {
            "version": 1,
            "tool": "repro.lint",
            "engine_version": cache.engine_version,
            "rule_fingerprint": cache.fingerprint,
            "files": {
                "repro/mod0.py": {
                    "sha256": _content_digest(source),
                    "findings": [["not", "a", "dict"], {"path": "x"}],
                },
            },
        }
        result = self.damage_then_run(tmp_path, json.dumps(payload))
        assert result.cache_hits == 0
        assert [f.rule for f in result.findings] == ["REP003"]


class TestCliCache:
    def violations_tree(self, tmp_path):
        make_tree(tmp_path, dirty=2)
        return ["--root", str(tmp_path), "--no-baseline",
                str(tmp_path / "repro")]

    def test_cached_json_findings_byte_identical_to_no_cache(
            self, tmp_path, capsys):
        args = self.violations_tree(tmp_path) + ["--format", "json"]
        lint_main(args)
        cold = capsys.readouterr().out
        lint_main(args)
        warm = capsys.readouterr().out
        lint_main(args + ["--no-cache"])
        uncached = capsys.readouterr().out
        # The cold cached run and the uncached run agree byte-for-byte;
        # the warm run differs only in its hit counter.
        assert cold == uncached
        warm_doc, uncached_doc = json.loads(warm), json.loads(uncached)
        assert (json.dumps(warm_doc["findings"])
                == json.dumps(uncached_doc["findings"]))
        assert warm_doc["errors"] == uncached_doc["errors"]
        assert warm_doc["cache_hits"] == warm_doc["files_scanned"] == 4

    def test_text_summary_reports_cache_hits(self, tmp_path, capsys):
        args = self.violations_tree(tmp_path)
        lint_main(args)
        capsys.readouterr()
        lint_main(args)
        assert "4 cached" in capsys.readouterr().out

    def test_stats_flag_reports_hits_and_wall_time(self, tmp_path, capsys):
        args = self.violations_tree(tmp_path) + ["--stats"]
        lint_main(args)
        capsys.readouterr()
        lint_main(args)
        out = capsys.readouterr().out
        assert "stats:" in out and "cache hit(s) (100%)" in out
        assert "wall time" in out

    def test_stats_in_json_payload(self, tmp_path, capsys):
        args = self.violations_tree(tmp_path) + ["--format", "json",
                                                 "--stats"]
        lint_main(args)
        capsys.readouterr()
        lint_main(args)
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["cache_hits"] == doc["stats"]["files_scanned"]
        assert doc["stats"]["wall_time_seconds"] >= 0

    def test_no_cache_flag_creates_no_cache_dir(self, tmp_path, capsys):
        lint_main(self.violations_tree(tmp_path) + ["--no-cache"])
        capsys.readouterr()
        assert not (tmp_path / ".repro-lint-cache").exists()

    def test_default_and_explicit_cache_dirs(self, tmp_path, capsys):
        lint_main(self.violations_tree(tmp_path))
        capsys.readouterr()
        assert (tmp_path / ".repro-lint-cache" / CACHE_FILE_NAME).is_file()
        elsewhere = tmp_path / "elsewhere"
        lint_main(self.violations_tree(tmp_path)
                  + ["--cache-dir", str(elsewhere)])
        capsys.readouterr()
        assert (elsewhere / CACHE_FILE_NAME).is_file()

    def test_write_baseline_also_warms_the_cache(self, tmp_path, capsys):
        args = self.violations_tree(tmp_path)
        assert lint_main(args[:2] + args[3:] + ["--write-baseline"]) == 0
        capsys.readouterr()
        lint_main(args)
        assert "4 cached" in capsys.readouterr().out


@pytest.mark.skipif(not SRC.is_dir(),
                    reason="requires the src-layout checkout")
class TestWarmTreeSpeedup:
    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        cache_dir = tmp_path / "lint-cache"
        started = time.perf_counter()
        cold = lint_paths([SRC], REPO_ROOT, RULES,
                          cache=LintCache(cache_dir, RULES))
        cold_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        warm = lint_paths([SRC], REPO_ROOT, RULES,
                          cache=LintCache(cache_dir, RULES))
        warm_elapsed = time.perf_counter() - started
        assert warm.cache_hits == warm.files_scanned == cold.files_scanned
        assert warm.findings == cold.findings
        assert warm_elapsed * 5 < cold_elapsed, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s")


#: A module only the REP011-REP013 dataflow phase objects to.
UNORDERED = '''\
"""Fans out over a set."""

__all__ = ["fan_out"]


def fan_out(nodes):
    """Visit every node (in whatever order the set yields)."""
    for node in set(nodes):
        print(node)
'''


class TestRuleSetFingerprintInvalidation:
    def test_adding_dataflow_rules_cold_invalidates_exactly_once(
            self, tmp_path):
        """Changing the active rule set mid-run (REP001-010 -> full
        catalog with REP011-013) must cold-invalidate every entry exactly
        once: no stale findings served, and no double invalidation on the
        following run."""
        make_tree(tmp_path)
        (tmp_path / "repro" / "sweep.py").write_text(UNORDERED)
        file_rules = get_rules([f"REP{n:03d}" for n in range(1, 11)])

        first = run(tmp_path, cache_at(tmp_path, rules=file_rules),
                    rules=file_rules)
        assert first.cache_hits == 0
        assert first.findings == []          # REP011 not active yet

        warm = run(tmp_path, cache_at(tmp_path, rules=file_rules),
                   rules=file_rules)
        assert warm.cache_hits == warm.files_scanned == 5

        # The fingerprint differs, so the first full-catalog run is cold
        # everywhere -- and surfaces the REP011 finding immediately
        # rather than serving the stale empty result.
        widened = run(tmp_path, cache_at(tmp_path))
        assert widened.cache_hits == 0
        assert [f.rule for f in widened.findings] == ["REP011"]
        no_cache = run(tmp_path)
        assert widened.findings == no_cache.findings

        # Exactly once: the next full-catalog run is warm in both phases.
        settled = run(tmp_path, cache_at(tmp_path))
        assert settled.cache_hits == settled.files_scanned == 5
        assert settled.project_cache_hits == 5
        assert settled.findings == widened.findings

    def test_fingerprints_differ_between_rule_sets(self):
        file_rules = get_rules([f"REP{n:03d}" for n in range(1, 11)])
        assert rule_fingerprint(file_rules) != rule_fingerprint(RULES)


class TestProjectPhaseCache:
    def test_editing_one_file_reruns_project_phase_once(self, tmp_path):
        """File-scope entries for untouched files stay warm, but project
        findings depend on the whole tree: one edit misses every project
        entry, and the following run is fully warm again."""
        paths = make_tree(tmp_path)
        (tmp_path / "repro" / "sweep.py").write_text(UNORDERED)
        cold = run(tmp_path, cache_at(tmp_path))
        assert cold.project_cache_hits == 0

        paths[0].write_text(CLEAN.replace("42", "43"))
        edited = run(tmp_path, cache_at(tmp_path))
        assert edited.cache_hits == 4            # all but the edited file
        assert edited.project_cache_hits == 0    # tree changed everywhere
        assert [f.rule for f in edited.findings] == ["REP011"]

        warm = run(tmp_path, cache_at(tmp_path))
        assert warm.cache_hits == 5
        assert warm.project_cache_hits == 5
        assert warm.findings == edited.findings


class TestParallelLint:
    def test_parallel_findings_identical_to_serial(self, tmp_path):
        """-j N is a pure throughput knob: findings, order, and counts
        match a serial run exactly."""
        make_tree(tmp_path, dirty=2)
        (tmp_path / "repro" / "sweep.py").write_text(UNORDERED)
        serial = lint_paths([tmp_path / "repro"], tmp_path, RULES)
        parallel = lint_paths([tmp_path / "repro"], tmp_path, RULES,
                              jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.files_scanned == serial.files_scanned

    def test_cli_jobs_flag(self, tmp_path, capsys):
        make_tree(tmp_path, dirty=1)
        code = lint_main(["--root", str(tmp_path), "--no-baseline",
                          "--no-cache", "-j", "2", "--format", "json",
                          str(tmp_path / "repro")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] > 0

    def test_cli_rejects_negative_jobs(self, tmp_path, capsys):
        make_tree(tmp_path)
        code = lint_main(["--root", str(tmp_path), "-j", "-3",
                          str(tmp_path / "repro")])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err
