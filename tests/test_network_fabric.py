"""Fabric transfer timing, contention, and circuit-switching behaviour."""

import pytest

from repro.network import Fabric, SingleSwitchTopology, TorusTopology, get_interconnect
from repro.sim import Simulator


def build_fabric(hosts=4, technology="gigabit_ethernet", **kwargs):
    sim = Simulator()
    fabric = Fabric(sim, SingleSwitchTopology(hosts),
                    get_interconnect(technology), **kwargs)
    return sim, fabric


class TestUncontendedTiming:
    def test_matches_closed_form(self):
        sim, fabric = build_fabric()

        def body():
            end = yield from fabric.transfer(0, 1, 10_000)
            return end

        result = sim.run_process(body())
        assert result == pytest.approx(fabric.uncontended_time(0, 1, 10_000))

    def test_self_transfer_is_cheap(self):
        sim, fabric = build_fabric()

        def body():
            yield from fabric.transfer(2, 2, 1_000_000)
            return sim.now

        elapsed = sim.run_process(body())
        params = fabric.technology.loggp
        # Far cheaper than the network path for the same size.
        assert elapsed < fabric.uncontended_time(0, 1, 1_000_000)
        assert elapsed >= params.overhead

    def test_larger_messages_take_longer(self):
        _sim, fabric = build_fabric()
        assert (fabric.uncontended_time(0, 1, 1 << 20)
                > fabric.uncontended_time(0, 1, 1 << 10))

    def test_multi_hop_charges_hop_latency(self):
        sim = Simulator()
        technology = get_interconnect("infiniband_4x")
        fabric = Fabric(sim, TorusTopology((4, 4)), technology)
        near = fabric.uncontended_time(0, 1, 0)       # 1 hop
        far = fabric.uncontended_time(0, 2, 0)        # 2 hops
        assert far - near == pytest.approx(technology.hop_latency)

    def test_validation(self):
        sim, fabric = build_fabric()

        def bad_size():
            yield from fabric.transfer(0, 1, -5)

        with pytest.raises(ValueError):
            sim.run_process(bad_size())

        def bad_host():
            yield from fabric.transfer(0, 99, 5)

        with pytest.raises(IndexError):
            sim.run_process(bad_host())


class TestContention:
    def test_shared_link_serializes(self):
        """Two large transfers into the same destination share its host
        link; the second must finish roughly one serialization later."""
        sim, fabric = build_fabric(contention=True)
        nbytes = 10_000_000
        ends = {}

        def sender(name, src):
            end = yield from fabric.transfer(src, 3, nbytes)
            ends[name] = end

        sim.process(sender("a", 0))
        sim.process(sender("b", 1))
        sim.run()
        serialization = nbytes * fabric.technology.loggp.gap_per_byte
        assert abs(ends["a"] - ends["b"]) == pytest.approx(serialization,
                                                           rel=0.05)

    def test_disjoint_paths_do_not_interfere(self):
        sim, fabric = build_fabric(hosts=4, contention=True)
        nbytes = 10_000_000
        ends = {}

        def sender(name, src, dst):
            end = yield from fabric.transfer(src, dst, nbytes)
            ends[name] = end

        sim.process(sender("a", 0, 1))
        sim.process(sender("b", 2, 3))
        sim.run()
        assert ends["a"] == pytest.approx(ends["b"])
        assert ends["a"] == pytest.approx(fabric.uncontended_time(0, 1, nbytes))

    def test_contention_off_lets_transfers_overlap(self):
        sim, fabric = build_fabric(contention=False)
        nbytes = 10_000_000
        ends = []

        def sender(src):
            end = yield from fabric.transfer(src, 3, nbytes)
            ends.append(end)

        sim.process(sender(0))
        sim.process(sender(1))
        sim.run()
        assert ends[0] == pytest.approx(ends[1])

    def test_no_deadlock_under_crossing_traffic(self):
        """All-pairs simultaneous transfers on a torus complete (the
        total-order acquisition claim)."""
        sim = Simulator()
        fabric = Fabric(sim, TorusTopology((3, 3)),
                        get_interconnect("infiniband_4x"), contention=True)
        done = []

        def sender(src, dst):
            yield from fabric.transfer(src, dst, 100_000)
            done.append((src, dst))

        for src in range(9):
            for dst in range(9):
                if src != dst:
                    sim.process(sender(src, dst))
        sim.run()
        assert len(done) == 72


class TestCircuitSwitching:
    def test_first_transfer_pays_setup(self):
        sim = Simulator()
        technology = get_interconnect("optical_circuit")
        fabric = Fabric(sim, SingleSwitchTopology(4), technology)
        ends = []

        def body():
            first = yield from fabric.transfer(0, 1, 1_000)
            ends.append(first)
            second = yield from fabric.transfer(0, 1, 1_000)
            ends.append(second)

        sim.run_process(body())
        first_duration = ends[0]
        second_duration = ends[1] - ends[0]
        assert first_duration - second_duration == pytest.approx(
            technology.circuit_setup_seconds)

    def test_circuits_are_per_pair(self):
        sim = Simulator()
        technology = get_interconnect("optical_circuit")
        fabric = Fabric(sim, SingleSwitchTopology(4), technology)

        def body():
            yield from fabric.transfer(0, 1, 0)
            t_before = sim.now
            yield from fabric.transfer(0, 2, 0)   # new pair: pays setup
            return sim.now - t_before

        duration = sim.run_process(body())
        assert duration >= technology.circuit_setup_seconds


class TestAccounting:
    def test_bytes_and_counts(self):
        sim, fabric = build_fabric(record_transfers=True)

        def body():
            yield from fabric.transfer(0, 1, 500)
            yield from fabric.transfer(1, 2, 700)

        sim.run_process(body())
        assert fabric.bytes_moved == 1200
        assert fabric.transfer_count == 2
        assert len(fabric.records) == 2
        record = fabric.records[0]
        assert (record.src, record.dst, record.nbytes) == (0, 1, 500)
        assert record.duration > 0
        assert record.hops == 2

    def test_recording_off_by_default(self):
        sim, fabric = build_fabric()

        def body():
            yield from fabric.transfer(0, 1, 500)

        sim.run_process(body())
        assert fabric.records == []
