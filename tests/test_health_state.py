"""Node health state machine: legal transitions, epochs, accounting."""

import pytest

from repro.health import HealthEvent, Membership, NodeHealthState


class TestTransitions:
    def test_full_failure_lifecycle(self):
        m = Membership(2)
        m.transition(0, NodeHealthState.SUSPECTED, 1.0, "missed-heartbeats")
        m.transition(0, NodeHealthState.DEAD, 2.0, "silence-confirmed")
        m.transition(0, NodeHealthState.REPAIRING, 2.0, "repair")
        m.transition(0, NodeHealthState.HEALTHY, 5.0, "repaired")
        assert m.state_of(0) is NodeHealthState.HEALTHY
        assert m.state_of(1) is NodeHealthState.HEALTHY
        assert m.epoch == 4

    def test_suspicion_refuted(self):
        m = Membership(1)
        m.transition(0, NodeHealthState.SUSPECTED, 1.0, "missed-heartbeats")
        event = m.transition(0, NodeHealthState.HEALTHY, 1.5,
                             "heartbeat-resumed")
        assert event.old is NodeHealthState.SUSPECTED
        assert event.new is NodeHealthState.HEALTHY

    def test_drain_cycle_and_draining_can_go_silent(self):
        m = Membership(1)
        m.transition(0, NodeHealthState.DRAINING, 1.0, "drain")
        m.transition(0, NodeHealthState.HEALTHY, 2.0, "undrain")
        m.transition(0, NodeHealthState.DRAINING, 3.0, "drain")
        m.transition(0, NodeHealthState.SUSPECTED, 4.0, "missed-heartbeats")
        assert m.state_of(0) is NodeHealthState.SUSPECTED

    @pytest.mark.parametrize("old,new", [
        (NodeHealthState.HEALTHY, NodeHealthState.DEAD),
        (NodeHealthState.HEALTHY, NodeHealthState.REPAIRING),
        (NodeHealthState.DEAD, NodeHealthState.HEALTHY),
        (NodeHealthState.DEAD, NodeHealthState.SUSPECTED),
        (NodeHealthState.REPAIRING, NodeHealthState.DEAD),
        (NodeHealthState.SUSPECTED, NodeHealthState.DRAINING),
    ])
    def test_illegal_transitions_raise(self, old, new):
        m = Membership(1)
        path = {
            NodeHealthState.HEALTHY: [],
            NodeHealthState.SUSPECTED: [NodeHealthState.SUSPECTED],
            NodeHealthState.DEAD: [NodeHealthState.SUSPECTED,
                                   NodeHealthState.DEAD],
            NodeHealthState.REPAIRING: [NodeHealthState.SUSPECTED,
                                        NodeHealthState.DEAD,
                                        NodeHealthState.REPAIRING],
        }[old]
        for step, state in enumerate(path):
            m.transition(0, state, float(step), "setup")
        with pytest.raises(ValueError, match="illegal transition"):
            m.transition(0, new, 10.0, "bad")

    def test_backwards_clock_raises(self):
        m = Membership(1)
        m.transition(0, NodeHealthState.SUSPECTED, 2.0, "x")
        with pytest.raises(ValueError, match="backwards"):
            m.transition(0, NodeHealthState.HEALTHY, 1.0, "y")

    def test_node_out_of_range(self):
        m = Membership(2)
        with pytest.raises(IndexError):
            m.transition(2, NodeHealthState.SUSPECTED, 0.0, "x")

    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            Membership(0)


class TestSnapshots:
    def test_snapshot_is_epoch_stamped_and_immutable(self):
        m = Membership(3)
        view = m.snapshot(0.0)
        assert view.epoch == 0
        assert view.available_count == 3
        m.transition(1, NodeHealthState.SUSPECTED, 1.0, "x")
        m.transition(1, NodeHealthState.DEAD, 2.0, "y")
        assert view.epoch != m.epoch  # staleness is cheaply detectable
        fresh = m.snapshot(2.0)
        assert fresh.epoch == 2
        assert fresh.dead_nodes == (1,)
        assert not fresh.is_available(1)
        assert fresh.available_count == 2

    def test_suspected_and_draining_count_as_available(self):
        m = Membership(2)
        m.transition(0, NodeHealthState.SUSPECTED, 1.0, "x")
        m.transition(1, NodeHealthState.DRAINING, 1.0, "x")
        assert m.is_available(0) and m.is_available(1)


class TestAccounting:
    def test_seconds_in_and_availability(self):
        m = Membership(2)
        m.transition(0, NodeHealthState.SUSPECTED, 1.0, "x")
        m.transition(0, NodeHealthState.DEAD, 2.0, "y")
        m.transition(0, NodeHealthState.REPAIRING, 2.0, "z")
        m.transition(0, NodeHealthState.HEALTHY, 4.0, "w")
        # Node 0: healthy [0,1)+[4,10), suspected [1,2), repairing [2,4).
        assert m.seconds_in(NodeHealthState.SUSPECTED, 10.0) == \
            pytest.approx(1.0)
        assert m.seconds_in(NodeHealthState.REPAIRING, 10.0) == \
            pytest.approx(2.0)
        assert m.seconds_in(NodeHealthState.HEALTHY, 10.0) == \
            pytest.approx(17.0)
        # 2 node-seconds down out of 20.
        assert m.availability(10.0) == pytest.approx(0.9)

    def test_availability_one_before_time_passes(self):
        assert Membership(4).availability(0.0) == 1.0


class TestEventLog:
    def test_line_format_is_canonical(self):
        event = HealthEvent(time=1.25, epoch=3, node=7,
                            old=NodeHealthState.SUSPECTED,
                            new=NodeHealthState.DEAD,
                            cause="silence-confirmed")
        assert event.line() == ("1.250000000 epoch=3 node=7 "
                                "suspected->dead cause=silence-confirmed")

    def test_render_log_round(self):
        m = Membership(1)
        assert m.render_log() == ""
        m.transition(0, NodeHealthState.SUSPECTED, 1.0, "x")
        m.transition(0, NodeHealthState.HEALTHY, 2.0, "y")
        rendered = m.render_log()
        assert rendered.endswith("\n")
        assert len(rendered.splitlines()) == 2
        assert rendered.splitlines()[0] == m.events[0].line()
