"""Three-level fat tree and fabric pricing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging import SUM, run_spmd
from repro.network import (
    FatTreeTopology,
    ThreeLevelFatTreeTopology,
    compare_fabrics,
    get_interconnect,
    price_fabric,
)


def assert_route_valid(topology, src, dst):
    route = topology.route(src, dst)
    if src == dst:
        assert route == []
        return
    position = topology.host_node(src)
    for origin, target in route:
        assert topology.graph.has_edge(origin, target)
        assert position == origin
        position = target
    assert position == topology.host_node(dst)


class TestStructure:
    @pytest.mark.parametrize("radix,hosts,switches", [
        (2, 2, 5),        # k=2: 2 hosts, 2 edges + 2 aggs + 1 core
        (4, 16, 20),      # k=4: 16 hosts, 8 + 8 + 4
        (6, 54, 45),      # k=6: 54 hosts, 18 + 18 + 9
    ])
    def test_counts_follow_the_formulas(self, radix, hosts, switches):
        topology = ThreeLevelFatTreeTopology(radix)
        assert topology.hosts == hosts == radix ** 3 // 4
        assert topology.num_switches == switches
        assert topology.num_pods == radix

    def test_odd_or_tiny_radix_rejected(self):
        with pytest.raises(ValueError):
            ThreeLevelFatTreeTopology(3)
        with pytest.raises(ValueError):
            ThreeLevelFatTreeTopology(0)

    def test_radix_for_hosts(self):
        assert ThreeLevelFatTreeTopology.radix_for_hosts(1) == 2
        assert ThreeLevelFatTreeTopology.radix_for_hosts(16) == 4
        assert ThreeLevelFatTreeTopology.radix_for_hosts(17) == 6
        assert ThreeLevelFatTreeTopology.radix_for_hosts(3456) == 24

    def test_full_bisection(self):
        topology = ThreeLevelFatTreeTopology(4)
        assert topology.bisection_links() == 8


class TestRouting:
    def test_all_pairs_valid_k4(self):
        topology = ThreeLevelFatTreeTopology(4)
        for src in range(topology.hosts):
            for dst in range(topology.hosts):
                assert_route_valid(topology, src, dst)

    def test_hop_counts_by_locality(self):
        topology = ThreeLevelFatTreeTopology(4)
        # Same edge switch: hosts 0 and 1.
        assert topology.hop_count(0, 1) == 2
        # Same pod, different edge: hosts 0 and 2.
        assert topology.pod_of(0) == topology.pod_of(2)
        assert topology.hop_count(0, 2) == 4
        # Different pods: 6 hops through the core.
        assert topology.pod_of(0) != topology.pod_of(15)
        assert topology.hop_count(0, 15) == 6
        assert topology.diameter_hops() == 6

    def test_deterministic(self):
        topology = ThreeLevelFatTreeTopology(6)
        assert topology.route(0, 53) == topology.route(0, 53)

    def test_core_spreading(self):
        """Different host pairs use different core switches."""
        topology = ThreeLevelFatTreeTopology(4)
        cores = set()
        for src in range(4):
            for dst in range(12, 16):
                for edge in topology.route(src, dst):
                    name, index = edge[1]
                    if name == "s" and index >= topology._core_base:
                        cores.add(index)
        assert len(cores) > 1

    @given(st.sampled_from([2, 4, 6]), st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_pairs_valid(self, radix, data):
        topology = ThreeLevelFatTreeTopology(radix)
        src = data.draw(st.integers(0, topology.hosts - 1))
        dst = data.draw(st.integers(0, topology.hosts - 1))
        assert_route_valid(topology, src, dst)
        assert topology.hop_count(src, dst) <= 6


class TestEndToEnd:
    def test_collectives_over_three_tiers(self):
        def body(comm):
            total = yield from comm.allreduce(comm.rank, SUM)
            return total

        topology = ThreeLevelFatTreeTopology(4)
        result = run_spmd(16, body, technology="infiniband_4x",
                          topology=topology)
        assert all(v == 120 for v in result.results)

    def test_inter_pod_slower_than_intra_edge(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.ssend(np.zeros(1), 1, tag=1)     # 2 hops
                yield from comm.ssend(np.zeros(1), 15, tag=1)    # 6 hops
            elif comm.rank in (1, 15):
                yield from comm.recv(0, tag=1)
            return comm.sim.now

        result = run_spmd(16, body, technology="infiniband_4x",
                          topology=ThreeLevelFatTreeTopology(4))
        near = result.finish_times[1]
        far = result.finish_times[15] - result.finish_times[1]
        assert far > near * 0.5  # extra hops cost visible time


class TestFabricPricing:
    def test_port_accounting(self):
        technology = get_interconnect("infiniband_4x")
        bill = price_fabric(FatTreeTopology(8, hosts_per_leaf=4),
                            technology)
        # 8 host links (1 switch port + 1 NIC each) + 2x4 leaf-spine
        # links (2 switch ports each).
        assert bill.nics == 8
        assert bill.switch_ports == 8 + 16
        assert bill.total_dollars == pytest.approx(
            (8 + 24) * technology.cost_per_port)

    def test_oversubscription_is_a_bandwidth_discount(self):
        """Cheaper fabrics cost less per host but more per unit of
        bisection — the design trade in one table."""
        bills = {bill.topology_name: bill
                 for bill in compare_fabrics(64,
                                             get_interconnect("infiniband_4x"))}
        full = bills["leaf-spine 1:1"]
        quarter = bills["leaf-spine 4:1"]
        assert quarter.dollars_per_host < full.dollars_per_host
        assert (quarter.dollars_per_bisection_link
                > full.dollars_per_bisection_link)

    def test_three_level_appears_at_scale(self):
        technology = get_interconnect("infiniband_4x")
        names = [bill.topology_name
                 for bill in compare_fabrics(128, technology)]
        assert any("3-level" in name for name in names)

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_fabrics(1, get_interconnect("infiniband_4x"))
