"""API hygiene: exports resolve and the layering rules DESIGN.md
promises actually hold.

Docstring coverage used to be checked here by reflection (import every
module, inspect every ``__all__`` entry); that pass was slower and saw
only re-exported names.  It is now lint rule REP009, which walks the
AST of every file.
"""

import importlib
import inspect
import pkgutil

import pytest

PACKAGES = [
    "repro",
    "repro.obs",
    "repro.sim",
    "repro.tech",
    "repro.nodes",
    "repro.network",
    "repro.messaging",
    "repro.cluster",
    "repro.scheduler",
    "repro.health",
    "repro.fault",
    "repro.apps",
    "repro.io",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists {name!r} but it is missing"
            )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(package.__all__)
        assert len(exported) == len(set(exported)), (
            f"{package_name}.__all__ has duplicates"
        )


class TestLayering:
    """DESIGN.md: no module imports a higher layer."""

    FORBIDDEN = {
        "repro.obs": ["repro.sim", "repro.tech", "repro.nodes",
                      "repro.network", "repro.messaging", "repro.cluster",
                      "repro.scheduler", "repro.fault", "repro.apps",
                      "repro.io", "repro.analysis"],
        "repro.sim": ["repro.tech", "repro.nodes", "repro.network",
                      "repro.messaging", "repro.cluster", "repro.scheduler",
                      "repro.fault", "repro.apps", "repro.io",
                      "repro.analysis"],
        "repro.tech": ["repro.nodes", "repro.network", "repro.messaging",
                       "repro.cluster", "repro.apps"],
        "repro.nodes": ["repro.network", "repro.messaging", "repro.cluster",
                        "repro.apps"],
        "repro.network": ["repro.messaging", "repro.cluster", "repro.apps"],
        "repro.messaging": ["repro.cluster", "repro.scheduler", "repro.apps"],
        "repro.health": ["repro.messaging", "repro.cluster", "repro.fault",
                         "repro.io", "repro.apps"],
        "repro.analysis": ["repro.sim", "repro.network", "repro.messaging",
                           "repro.cluster", "repro.scheduler", "repro.apps"],
    }

    @pytest.mark.parametrize("package_name", sorted(FORBIDDEN))
    def test_no_upward_imports(self, package_name):
        import sys

        package = importlib.import_module(package_name)
        forbidden = self.FORBIDDEN[package_name]
        # Inspect the source of each submodule for forbidden imports
        # (runtime sys.modules checks would be confounded by other
        # packages importing both).
        offenders = []
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package_name}.{info.name}")
            try:
                source = inspect.getsource(module)
            except OSError:  # pragma: no cover
                continue
            for target in forbidden:
                if (f"from {target}" in source
                        or f"import {target}" in source):
                    offenders.append((module.__name__, target))
        assert not offenders, f"upward imports: {offenders}"
