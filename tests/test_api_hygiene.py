"""API hygiene: exports resolve, everything public is documented, and
the layering rules DESIGN.md promises actually hold."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.tech",
    "repro.nodes",
    "repro.network",
    "repro.messaging",
    "repro.cluster",
    "repro.scheduler",
    "repro.fault",
    "repro.apps",
    "repro.io",
    "repro.analysis",
]


def all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists {name!r} but it is missing"
            )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_unique(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(package.__all__)
        assert len(exported) == len(set(exported)), (
            f"{package_name}.__all__ has duplicates"
        )


class TestDocumentation:
    @pytest.mark.parametrize("module_name", all_modules())
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} has no module docstring"
        )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_public_item_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            item = getattr(package, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if not (item.__doc__ and item.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name}: public items without docstrings: "
            f"{undocumented}"
        )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_classes_document_their_methods(self, package_name):
        package = importlib.import_module(package_name)
        gaps = []
        for name in package.__all__:
            item = getattr(package, name)
            if not inspect.isclass(item):
                continue
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not (
                        method.__doc__ and method.__doc__.strip()):
                    gaps.append(f"{name}.{method_name}")
        assert not gaps, f"{package_name}: undocumented methods: {gaps}"


class TestLayering:
    """DESIGN.md: no module imports a higher layer."""

    FORBIDDEN = {
        "repro.sim": ["repro.tech", "repro.nodes", "repro.network",
                      "repro.messaging", "repro.cluster", "repro.scheduler",
                      "repro.fault", "repro.apps", "repro.io",
                      "repro.analysis"],
        "repro.tech": ["repro.nodes", "repro.network", "repro.messaging",
                       "repro.cluster", "repro.apps"],
        "repro.nodes": ["repro.network", "repro.messaging", "repro.cluster",
                        "repro.apps"],
        "repro.network": ["repro.messaging", "repro.cluster", "repro.apps"],
        "repro.messaging": ["repro.cluster", "repro.scheduler", "repro.apps"],
        "repro.analysis": ["repro.sim", "repro.network", "repro.messaging",
                           "repro.cluster", "repro.scheduler", "repro.apps"],
    }

    @pytest.mark.parametrize("package_name", sorted(FORBIDDEN))
    def test_no_upward_imports(self, package_name):
        import sys

        package = importlib.import_module(package_name)
        forbidden = self.FORBIDDEN[package_name]
        # Inspect the source of each submodule for forbidden imports
        # (runtime sys.modules checks would be confounded by other
        # packages importing both).
        offenders = []
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package_name}.{info.name}")
            try:
                source = inspect.getsource(module)
            except OSError:  # pragma: no cover
                continue
            for target in forbidden:
                if (f"from {target}" in source
                        or f"import {target}" in source):
                    offenders.append((module.__name__, target))
        assert not offenders, f"upward imports: {offenders}"
