"""Policy semantics and the end-to-end batch simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import (
    BatchSimulator,
    ConservativeBackfill,
    EasyBackfill,
    FcfsPolicy,
    Job,
    JobState,
    SjfPolicy,
    WorkloadGenerator,
    WorkloadParams,
    evaluate_schedule,
    get_policy,
)
from repro.sim import RandomStreams


def J(job_id, submit, nodes, runtime, estimate=None):
    return Job(job_id=job_id, submit_time=submit, nodes=nodes,
               runtime=runtime, estimate=estimate or runtime)


def run(policy, jobs, nodes=10):
    return BatchSimulator(nodes, policy).run(jobs)


def starts(result):
    return {r.job.job_id: r.start_time for r in result.records}


class TestFcfs:
    def test_head_blocks_queue(self):
        """FCFS: a wide head job blocks a narrow one behind it even though
        the narrow one would fit — the defining (bad) behaviour."""
        jobs = [
            J(0, 0.0, nodes=8, runtime=100.0),
            J(1, 1.0, nodes=8, runtime=10.0),   # blocked behind 0
            J(2, 2.0, nodes=2, runtime=10.0),   # would fit but must wait
        ]
        result = run(FcfsPolicy(), jobs)
        s = starts(result)
        assert s[0] == 0.0
        assert s[1] == pytest.approx(100.0)
        assert s[2] >= s[1]  # never passes job 1

    def test_parallel_starts_when_room(self):
        jobs = [J(0, 0.0, 4, 50.0), J(1, 0.0, 4, 50.0), J(2, 0.0, 2, 50.0)]
        result = run(FcfsPolicy(), jobs)
        assert all(t == 0.0 for t in starts(result).values())


class TestEasyBackfill:
    def test_backfills_around_blocked_head(self):
        jobs = [
            J(0, 0.0, nodes=8, runtime=100.0),
            J(1, 1.0, nodes=8, runtime=50.0),    # blocked head: shadow=100
            J(2, 2.0, nodes=2, runtime=10.0),    # fits now, ends by shadow
        ]
        result = run(EasyBackfill(), jobs)
        s = starts(result)
        assert s[2] == pytest.approx(2.0)        # backfilled
        assert s[1] == pytest.approx(100.0)      # not delayed

    def test_backfill_never_delays_head(self):
        """A backfill candidate that would overrun the shadow time and eat
        reserved nodes must not start."""
        jobs = [
            J(0, 0.0, nodes=8, runtime=100.0),
            J(1, 1.0, nodes=10, runtime=50.0),   # head needs whole machine
            J(2, 2.0, nodes=2, runtime=500.0),   # too long, uses head nodes
        ]
        result = run(EasyBackfill(), jobs)
        s = starts(result)
        assert s[1] == pytest.approx(100.0)      # head on time
        assert s[2] >= 100.0                      # candidate was refused

    def test_spare_node_backfill(self):
        """A long narrow job may backfill if it fits in nodes the head
        will not need at its shadow time."""
        jobs = [
            J(0, 0.0, nodes=6, runtime=100.0),
            J(1, 1.0, nodes=6, runtime=50.0),    # shadow=100, spare=4-?...
            J(2, 2.0, nodes=3, runtime=1000.0),  # 3 <= spare nodes: ok
        ]
        result = run(EasyBackfill(), jobs)
        s = starts(result)
        assert s[2] == pytest.approx(2.0)
        assert s[1] == pytest.approx(100.0)


class TestConservativeBackfill:
    def test_backfill_cannot_delay_anyone(self):
        """Conservative refuses a backfill that would delay job 2's
        reservation, where EASY would allow it."""
        jobs = [
            J(0, 0.0, nodes=8, runtime=100.0),
            J(1, 1.0, nodes=10, runtime=10.0),    # reserved at 100
            J(2, 2.0, nodes=4, runtime=10.0),     # reserved at 110
            J(3, 3.0, nodes=2, runtime=300.0),    # would delay 2's slot
        ]
        conservative = run(ConservativeBackfill(), jobs)
        s = starts(conservative)
        assert s[1] == pytest.approx(100.0)
        assert s[2] == pytest.approx(110.0)
        # Job 3 fits beside job 2 at 110 (4+2 <= 10) but not before.
        assert s[3] >= 100.0

    def test_simple_backfill_still_happens(self):
        jobs = [
            J(0, 0.0, nodes=8, runtime=100.0),
            J(1, 1.0, nodes=8, runtime=50.0),
            J(2, 2.0, nodes=2, runtime=10.0),    # harmless: backfills
        ]
        result = run(ConservativeBackfill(), jobs)
        assert starts(result)[2] == pytest.approx(2.0)


class TestSjf:
    def test_shortest_first(self):
        jobs = [
            J(0, 0.0, nodes=10, runtime=100.0),
            J(1, 1.0, nodes=10, runtime=50.0),
            J(2, 2.0, nodes=10, runtime=10.0),
        ]
        result = run(SjfPolicy(), jobs)
        s = starts(result)
        assert s[2] < s[1]  # short job jumps the queue


class TestSimulatorInvariants:
    def make_workload(self, count=400, load=0.8, nodes=64):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=nodes, offered_load=load),
            RandomStreams(seed=3))
        return generator.generate(count)

    @pytest.mark.parametrize("policy_name",
                             ["fcfs", "sjf", "easy", "conservative"])
    def test_conservation_laws(self, policy_name):
        """No job lost, none started early, all run exactly runtime."""
        jobs = self.make_workload()
        result = BatchSimulator(64, get_policy(policy_name)).run(jobs)
        assert len(result.records) == len(jobs)
        for record in result.records:
            assert record.state is JobState.FINISHED
            assert record.start_time >= record.job.submit_time
            assert record.end_time == pytest.approx(
                record.start_time + record.job.runtime)

    @pytest.mark.parametrize("policy_name",
                             ["fcfs", "sjf", "easy", "conservative"])
    def test_capacity_never_exceeded(self, policy_name):
        """Reconstruct the allocation timeline and check the machine is
        never oversubscribed."""
        jobs = self.make_workload(count=200)
        result = BatchSimulator(64, get_policy(policy_name)).run(jobs)
        events = []
        for record in result.records:
            events.append((record.start_time, record.job.nodes))
            events.append((record.end_time, -record.job.nodes))
        events.sort()
        in_use = 0
        peak = 0
        for _time, delta in events:
            in_use += delta
            peak = max(peak, in_use)
        assert peak <= 64
        assert in_use == 0

    def test_backfilling_beats_fcfs(self):
        """The headline E7 shape: EASY/conservative beat FCFS on both
        utilization and slowdown at high load."""
        jobs = self.make_workload(count=800, load=0.85)
        metrics = {}
        for name in ("fcfs", "easy", "conservative"):
            result = BatchSimulator(64, get_policy(name)).run(jobs)
            metrics[name] = evaluate_schedule(result)
        assert metrics["easy"].utilization > metrics["fcfs"].utilization
        assert (metrics["easy"].mean_bounded_slowdown
                < metrics["fcfs"].mean_bounded_slowdown / 2)
        assert (metrics["conservative"].utilization
                > metrics["fcfs"].utilization)

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="machine has"):
            BatchSimulator(4, FcfsPolicy()).run([J(0, 0.0, 8, 10.0)])

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(4, FcfsPolicy()).run([])

    def test_metrics_row(self):
        jobs = self.make_workload(count=50)
        result = BatchSimulator(64, FcfsPolicy()).run(jobs)
        row = evaluate_schedule(result).row()
        assert row["jobs"] == 50
        assert 0 < row["utilization"] <= 1.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_policies_agree_under_no_contention(self, seed):
        """With a machine big enough for everything at once, every policy
        starts every job at its arrival — they can only differ under
        scarcity."""
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=8, offered_load=0.5),
            RandomStreams(seed=seed))
        jobs = generator.generate(30)
        for name in ("fcfs", "sjf", "easy", "conservative"):
            result = BatchSimulator(8 * 30, get_policy(name)).run(jobs)
            for record in result.records:
                assert record.start_time == pytest.approx(
                    record.job.submit_time)
