"""Unit tests for the repro.lint engine: one positive and one negative
fixture per rule, suppression comments, and the baseline round trip."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Finding,
    get_rules,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main as lint_main


def run_lint(tmp_path, source, codes=None, filename="repro/model.py"):
    """Lint one fixture file and return its findings."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rules = get_rules(codes) if codes else RULES
    return lint_paths([path], tmp_path, rules).findings


def codes_of(findings):
    return [finding.rule for finding in findings]


class TestRegistry:
    def test_thirteen_rules_with_unique_codes(self):
        codes = [rule.code for rule in RULES]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes) == 13

    def test_select_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="REP999"):
            get_rules(["REP999"])


class TestRep001RandomSource:
    def test_flags_numpy_default_rng(self, tmp_path):
        findings = run_lint(tmp_path, """
            import numpy as np
            rng = np.random.default_rng(3)
        """, ["REP001"])
        assert codes_of(findings) == ["REP001"]

    def test_flags_stdlib_random(self, tmp_path):
        findings = run_lint(tmp_path, """
            import random
            x = random.random()
        """, ["REP001"])
        assert codes_of(findings) == ["REP001"]

    def test_flags_from_import_member(self, tmp_path):
        findings = run_lint(tmp_path, """
            from numpy.random import default_rng
            rng = default_rng(0)
        """, ["REP001"])
        assert codes_of(findings) == ["REP001"]

    def test_rng_module_is_exempt(self, tmp_path):
        findings = run_lint(tmp_path, """
            import numpy as np
            g = np.random.default_rng(0)
        """, ["REP001"], filename="repro/sim/rng.py")
        assert findings == []

    def test_randomstreams_usage_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams
            rng = RandomStreams(7).get("model.jitter")
            value = rng.normal()
        """, ["REP001"])
        assert findings == []


class TestRep002WallClock:
    def test_flags_time_time(self, tmp_path):
        findings = run_lint(tmp_path, """
            import time
            start = time.time()
        """, ["REP002"])
        assert codes_of(findings) == ["REP002"]

    def test_flags_member_import(self, tmp_path):
        findings = run_lint(tmp_path, """
            from time import perf_counter
            start = perf_counter()
        """, ["REP002"])
        assert codes_of(findings) == ["REP002"]

    def test_flags_datetime_now(self, tmp_path):
        findings = run_lint(tmp_path, """
            from datetime import datetime
            stamp = datetime.now()
        """, ["REP002"])
        assert codes_of(findings) == ["REP002"]

    def test_benchmarks_are_exempt(self, tmp_path):
        findings = run_lint(tmp_path, """
            import time
            start = time.time()
        """, ["REP002"], filename="benchmarks/bench_perf.py")
        assert findings == []

    def test_virtual_time_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            def elapsed(sim):
                return sim.now
        """, ["REP002"])
        assert findings == []


class TestRep003MagicScale:
    def test_flags_exponent_notation(self, tmp_path):
        findings = run_lint(tmp_path, "RATE = 1e9\n", ["REP003"])
        assert codes_of(findings) == ["REP003"]
        assert "GIGA" in findings[0].message

    def test_flags_shift_and_power_forms(self, tmp_path):
        findings = run_lint(tmp_path, """
            STRIPE = 1 << 20
            CACHE = 2**30
            BUF = 64 * 1024
        """, ["REP003"])
        assert codes_of(findings) == ["REP003", "REP003", "REP003"]
        messages = " ".join(f.message for f in findings)
        assert "MIB" in messages and "GIB" in messages and "KIB" in messages

    def test_written_out_floats_are_deliberate(self, tmp_path):
        findings = run_lint(tmp_path, """
            THRESHOLD_TFLOPS = 1000.0
            BANDWIDTH = 2.1e9
            PRIME = 1_000_003
        """, ["REP003"])
        assert findings == []

    def test_units_module_is_exempt(self, tmp_path):
        findings = run_lint(tmp_path, "GIGA = 1e9\n", ["REP003"],
                            filename="repro/units.py")
        assert findings == []

    def test_derived_power_of_ten_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "CAP = 10 ** 9\n", ["REP003"])
        assert codes_of(findings) == ["REP003"]
        assert "GIGA" in findings[0].message
        assert "derived scale" in findings[0].message

    def test_derived_product_flagged_once_as_the_whole(self, tmp_path):
        findings = run_lint(tmp_path, """
            BUF = 1024 * 1024
            RATE = 1000 * 1000000
        """, ["REP003"])
        assert codes_of(findings) == ["REP003", "REP003"]
        assert "MIB" in findings[0].message
        assert "GIGA" in findings[1].message

    def test_scale_literal_inside_product_still_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "BITS = 1e6 * 8\n", ["REP003"])
        assert codes_of(findings) == ["REP003"]
        assert "MEGA" in findings[0].message

    def test_coincidental_products_are_not_scales(self, tmp_path):
        findings = run_lint(tmp_path, """
            TILE = 32 * 32
            SECONDS_PER_HOUR = 60 * 60
            DPI = 25 * 40
        """, ["REP003"])
        assert findings == []

    def test_manual_unit_formatting_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.units import MEGA

            def show(bandwidth):
                return f"{bandwidth / MEGA:.0f} MB/s"
        """, ["REP003"])
        assert codes_of(findings) == ["REP003"]
        assert "manual unit formatting" in findings[0].message
        assert "format_" in findings[0].message

    def test_manual_formatting_via_literal_divisor_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            def show(memory):
                return f"{memory / 1000000:.1f} MB"
        """, ["REP003"])
        assert codes_of(findings) == ["REP003"]
        assert "manual unit formatting" in findings[0].message

    def test_format_helpers_and_non_unit_suffixes_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.units import MEGA, format_si

            def show(bandwidth, count):
                a = f"rate: {format_si(bandwidth, 'B/s')}"
                b = f"{count / MEGA:.1f} million rows"
                c = f"{count / 7:.0f} MB"
                return a, b, c
        """, ["REP003"])
        assert findings == []


class TestRep004FloatEquality:
    def test_flags_float_literal_equality(self, tmp_path):
        findings = run_lint(tmp_path, """
            def check(x):
                return x == 1.0 or x != 0.5
        """, ["REP004"])
        assert codes_of(findings) == ["REP004", "REP004"]

    def test_integer_and_ordered_comparisons_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            def check(x):
                return x == 1 or x >= 1.0
        """, ["REP004"])
        assert findings == []


class TestRep005MutableDefault:
    def test_flags_literal_and_constructor_defaults(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f(items=[], table=dict()):
                return items, table
        """, ["REP005"])
        assert codes_of(findings) == ["REP005", "REP005"]

    def test_none_default_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f(items=None, scale=1.5):
                return items if items is not None else []
        """, ["REP005"])
        assert findings == []


class TestRep006ExportList:
    def test_missing_all_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            def public():
                return 1
        """, ["REP006"])
        assert "no __all__" in findings[0].message

    def test_unlisted_public_def_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            __all__ = ["listed"]

            def listed():
                return 1

            def unlisted():
                return 2
        """, ["REP006"])
        assert codes_of(findings) == ["REP006"]
        assert "unlisted" in findings[0].message

    def test_ghost_entry_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            __all__ = ["ghost"]
        """, ["REP006"])
        assert "ghost" in findings[0].message

    def test_clean_module_passes(self, tmp_path):
        findings = run_lint(tmp_path, """
            from collections import OrderedDict

            __all__ = ["CONSTANT", "OrderedDict", "helper"]

            CONSTANT = 7

            def helper():
                return CONSTANT

            def _private():
                return 0
        """, ["REP006"])
        assert findings == []

    def test_duplicates_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            __all__ = ["f", "f"]

            def f():
                return 1
        """, ["REP006"])
        assert any("duplicate" in f.message for f in findings)


class TestRep007CrossLayer:
    def test_upward_import_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.scheduler import BatchSimulator
        """, ["REP007"], filename="repro/tech/roadmap.py")
        assert codes_of(findings) == ["REP007"]
        assert "layer" in findings[0].message

    def test_same_layer_import_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.tech import get_scenario
        """, ["REP007"], filename="repro/sim/engine.py")
        assert codes_of(findings) == ["REP007"]

    def test_root_import_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro import RandomStreams
        """, ["REP007"], filename="repro/apps/kernel.py")
        assert "package root" in findings[0].message

    def test_downward_import_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.units import GIGA
            from repro.sim.engine import Simulator
            from repro.network.fabric import Fabric
        """, ["REP007"], filename="repro/messaging/comm.py")
        assert findings == []

    def test_relative_import_resolved(self, tmp_path):
        findings = run_lint(tmp_path, """
            from ..scheduler import policies
        """, ["REP007"], filename="repro/tech/curves.py")
        assert codes_of(findings) == ["REP007"]

    def test_relative_import_in_package_init_resolved(self, tmp_path):
        """`from ..apps import x` inside repro/sim/__init__.py climbs from
        repro.sim (the package itself), not from repro — the buggy parent
        anchoring resolved it to the non-repro module 'apps' and let the
        upward import through silently."""
        findings = run_lint(tmp_path, """
            from ..apps import kernel
        """, ["REP007"], filename="repro/sim/__init__.py")
        assert codes_of(findings) == ["REP007"]
        assert "apps" in findings[0].message

    def test_sibling_relative_import_in_package_init_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from . import engine
            from .engine import Simulator
        """, ["REP007"], filename="repro/sim/__init__.py")
        assert findings == []

    def test_package_root_relative_import_in_init_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            from .. import units
        """, ["REP007"], filename="repro/scheduler/__init__.py")
        assert codes_of(findings) == ["REP007"]
        assert "package root" in findings[0].message

    def test_obs_sits_below_the_engine(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.engine import Simulator
        """, ["REP007"], filename="repro/obs/spans.py")
        assert codes_of(findings) == ["REP007"]
        assert run_lint(tmp_path, """
            from repro.obs import Observability
        """, ["REP007"], filename="repro/sim/engine.py") == []


class TestRep008SeededConstructor:
    def test_public_seeded_function_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            import numpy as np

            def run_model(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
        """, ["REP008"])
        assert codes_of(findings) == ["REP008"]
        assert "run_model" in findings[0].message

    def test_randomstreams_derivation_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def run_model(seed, streams=None):
                streams = streams if streams is not None else RandomStreams(seed)
                return streams.get("model").normal()
        """, ["REP008"])
        assert findings == []

    def test_private_helper_not_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            import numpy as np

            def _internal(seed):
                return np.random.default_rng(seed)
        """, ["REP008"])
        assert findings == []


class TestRep009Docstrings:
    def test_missing_module_docstring_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            X = 1
        """, ["REP009"])
        assert codes_of(findings) == ["REP009"]
        assert "module" in findings[0].message

    def test_undocumented_public_surface_flagged(self, tmp_path):
        findings = run_lint(tmp_path, '''
            """Module docstring."""

            def helper():
                return 1

            class Widget:
                """A documented class."""

                def spin(self):
                    return 2
        ''', ["REP009"])
        assert codes_of(findings) == ["REP009", "REP009"]
        assert "helper" in findings[0].message
        assert "Widget.spin" in findings[1].message

    def test_private_names_and_private_class_methods_exempt(self, tmp_path):
        findings = run_lint(tmp_path, '''
            """Module docstring."""

            def _helper():
                return 1

            class _Visitor:
                def visit_Call(self, node):
                    return node
        ''', ["REP009"])
        assert findings == []

    def test_documented_module_clean(self, tmp_path):
        findings = run_lint(tmp_path, '''
            """Module docstring."""

            def helper():
                """Does a thing."""
                return 1

            class Widget:
                """A documented class."""

                def spin(self):
                    """Spins."""
                    return 2
        ''', ["REP009"])
        assert findings == []

    def test_tests_and_benchmarks_exempt(self, tmp_path):
        source = """
            def test_something():
                assert True
        """
        assert run_lint(tmp_path, source, ["REP009"],
                        filename="tests/test_x.py") == []
        assert run_lint(tmp_path, source, ["REP009"],
                        filename="benchmarks/bench_x.py") == []


class TestRep010BroadExcept:
    def test_bare_except_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f():
                try:
                    return 1
                except:
                    return 0
        """, ["REP010"])
        assert codes_of(findings) == ["REP010"]
        assert "bare" in findings[0].message

    def test_except_exception_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
        """, ["REP010"])
        assert codes_of(findings) == ["REP010"]

    def test_base_exception_in_tuple_flagged(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f():
                try:
                    return 1
                except (ValueError, BaseException) as exc:
                    return exc
        """, ["REP010"])
        assert codes_of(findings) == ["REP010"]
        assert "BaseException" in findings[0].message

    def test_specific_handlers_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f():
                try:
                    return 1
                except (ValueError, KeyError):
                    return 0
        """, ["REP010"])
        assert findings == []

    def test_tests_and_benchmarks_exempt(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
        """
        assert run_lint(tmp_path, source, ["REP010"],
                        filename="tests/test_x.py") == []
        assert run_lint(tmp_path, source, ["REP010"],
                        filename="benchmarks/bench_x.py") == []

    def test_noqa_suppresses(self, tmp_path):
        findings = run_lint(tmp_path, """
            def f():
                try:
                    return 1
                except BaseException:  # repro: noqa[REP010] boundary
                    raise
        """, ["REP010"])
        assert findings == []


class TestSuppression:
    def test_scoped_noqa_suppresses_named_rule(self, tmp_path):
        findings = run_lint(tmp_path, """
            TAG_BASE = 1 << 20  # repro: noqa[REP003] tag namespace
        """, ["REP003"])
        assert findings == []

    def test_scoped_noqa_leaves_other_rules(self, tmp_path):
        findings = run_lint(tmp_path, """
            RATE = 1e9  # repro: noqa[REP004]
        """, ["REP003"])
        assert codes_of(findings) == ["REP003"]

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        findings = run_lint(tmp_path, """
            RATE = 1e9  # repro: noqa
        """, ["REP003"])
        assert findings == []

    def test_noqa_only_covers_its_line(self, tmp_path):
        findings = run_lint(tmp_path, """
            A = 1e9  # repro: noqa[REP003]
            B = 1e9
        """, ["REP003"])
        assert len(findings) == 1
        assert findings[0].line == 3


class TestBaseline:
    def test_round_trip_hides_grandfathered_findings(self, tmp_path):
        path = tmp_path / "repro" / "legacy.py"
        path.parent.mkdir(parents=True)
        path.write_text("RATE = 1e9\n")
        rules = get_rules(["REP003"])

        raw = lint_paths([path], tmp_path, rules)
        assert len(raw.findings) == 1

        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, raw.findings)
        keys = load_baseline(baseline_path)
        assert len(keys) == 1

        clean = lint_paths([path], tmp_path, rules, baseline=keys)
        assert clean.findings == []
        assert clean.baselined == 1
        assert clean.exit_code == 0

    def test_new_findings_still_fail_after_baseline(self, tmp_path):
        path = tmp_path / "repro" / "legacy.py"
        path.parent.mkdir(parents=True)
        path.write_text("RATE = 1e9\n")
        rules = get_rules(["REP003"])
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, lint_paths([path], tmp_path,
                                                 rules).findings)

        path.write_text("RATE = 1e9\nCAP = 1 << 30\n")
        result = lint_paths([path], tmp_path, rules,
                            baseline=load_baseline(baseline_path))
        assert len(result.findings) == 1
        assert "GIB" in result.findings[0].message
        assert result.exit_code == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()


class TestImportMapRelativeResolution:
    """Regression: relative imports anchor at the *containing package* —
    which for an ``__init__.py`` is the module's own dotted name."""

    @staticmethod
    def module_for(tmp_path, filename, source):
        import ast as ast_module
        from repro.lint.engine import ModuleInfo

        text = textwrap.dedent(source)
        return ModuleInfo(tmp_path / filename, filename, text,
                          ast_module.parse(text))

    def test_init_single_dot_resolves_into_own_package(self, tmp_path):
        module = self.module_for(tmp_path, "repro/lint/__init__.py",
                                 "from . import engine\n")
        assert module.is_package
        assert module.import_package == "repro.lint"
        assert module.imports.members["engine"] == "repro.lint.engine"

    def test_init_double_dot_resolves_to_parent(self, tmp_path):
        module = self.module_for(tmp_path, "repro/lint/__init__.py",
                                 "from .. import units\n"
                                 "from ..sim import rng\n")
        assert module.imports.members["units"] == "repro.units"
        assert module.imports.members["rng"] == "repro.sim.rng"

    def test_plain_module_single_dot_resolves_to_sibling(self, tmp_path):
        module = self.module_for(tmp_path, "repro/lint/cli.py",
                                 "from . import engine\n")
        assert not module.is_package
        assert module.import_package == "repro.lint"
        assert module.imports.members["engine"] == "repro.lint.engine"

    def test_plain_module_double_dot_resolves_to_uncle(self, tmp_path):
        module = self.module_for(tmp_path, "repro/lint/cli.py",
                                 "from ..sim import rng\n")
        assert module.imports.members["rng"] == "repro.sim.rng"

    def test_top_level_init_resolves_own_members(self, tmp_path):
        module = self.module_for(tmp_path, "repro/__init__.py",
                                 "from . import units\n")
        assert module.import_package == "repro"
        assert module.imports.members["units"] == "repro.units"


class TestFindingModel:
    def test_key_is_line_number_independent(self):
        a = Finding("repro/x.py", 10, 1, "REP003", "magic scale literal")
        b = Finding("repro/x.py", 99, 7, "REP003", "magic scale literal")
        assert a.key() == b.key()

    def test_render_and_dict_forms(self):
        finding = Finding("repro/x.py", 3, 5, "REP001", "bad call")
        assert "repro/x.py:3:5" in finding.render()
        assert finding.as_dict()["rule"] == "REP001"

    def test_syntax_error_reported_as_rep000(self, tmp_path):
        path = tmp_path / "repro" / "broken.py"
        path.parent.mkdir(parents=True)
        path.write_text("def broken(:\n")
        result = lint_paths([path], tmp_path, RULES)
        assert codes_of(result.findings) == ["REP000"]


class TestCli:
    def test_text_output_and_exit_code(self, tmp_path, capsys):
        path = tmp_path / "repro" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("__all__ = []\nRATE = 1e9\n")
        code = lint_main(["--root", str(tmp_path), "--select", "REP003",
                          str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP003" in out and "1 error(s)" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "repro" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("RATE = 1e9\n")
        code = lint_main(["--root", str(tmp_path), "--select", "REP003",
                          "--format", "json", str(path)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "REP003"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        path = tmp_path / "repro" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("RATE = 1e9\n")
        args = ["--root", str(tmp_path), "--select", "REP003", str(path)]
        assert lint_main(args + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main(args) == 0
        assert lint_main(args + ["--no-baseline"]) == 1

    def test_select_tolerates_spaces_and_case(self, tmp_path, capsys):
        """Regression: `--select "REP001, REP007"` used to die with
        `unknown rule codes: [' REP007']` because the CLI filtered on the
        stripped code but passed the raw one through."""
        path = tmp_path / "repro" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("RATE = 1e9\n")
        code = lint_main(["--root", str(tmp_path), "--select",
                          "rep003, REP007", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP003" in out

    def test_select_unknown_code_still_usage_error(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), "--select",
                          "REP003, REP999", str(tmp_path)])
        assert code == 2
        assert "REP999" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP008"):
            assert code in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path),
                          str(tmp_path / "absent.py")]) == 2


def run_tree(tmp_path, files, codes=None):
    """Lint a multi-file fixture tree and return its findings."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    rules = get_rules(codes) if codes else RULES
    return lint_paths([tmp_path], tmp_path, rules).findings


class TestRep011UnorderedIteration:
    def test_flags_set_literal_iteration(self, tmp_path):
        findings = run_lint(tmp_path, """
            def fan_out():
                for node in {"a", "b", "c"}:
                    print(node)
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_flags_set_variable_iteration(self, tmp_path):
        findings = run_lint(tmp_path, """
            def fan_out(items):
                pending = set(items)
                for node in pending:
                    print(node)
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_flags_comprehension_over_set(self, tmp_path):
        findings = run_lint(tmp_path, """
            def collect(items):
                live = frozenset(items)
                return [x * 2 for x in live]
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_flags_list_of_set_taint(self, tmp_path):
        findings = run_lint(tmp_path, """
            def order(items):
                rough = list(set(items))
                for x in rough:
                    print(x)
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_flags_cross_module_set_global(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/registry.py":
                "NODES = {'n0', 'n1'}\n",
            "repro/consumer.py": """
                from repro.registry import NODES

                def sweep():
                    for node in NODES:
                        print(node)
            """,
        }, ["REP011"])
        assert codes_of(findings) == ["REP011"]
        assert "repro.registry" in findings[0].message

    def test_flags_unsorted_listdir(self, tmp_path):
        findings = run_lint(tmp_path, """
            import os

            def load(d):
                return [open(f) for f in os.listdir(d)]
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_flags_path_iterdir(self, tmp_path):
        findings = run_lint(tmp_path, """
            def scan(root):
                for entry in root.iterdir():
                    print(entry)
        """, ["REP011"])
        assert codes_of(findings) == ["REP011"]

    def test_sorted_wrapper_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            import os

            def stable(d, items):
                for name in sorted(os.listdir(d)):
                    print(name)
                for x in sorted({1, 2, 3}):
                    print(x)
                return sorted(set(items))
        """, ["REP011"])
        assert findings == []

    def test_membership_and_len_are_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            import os

            def probe(d, wanted):
                live = {"a", "b"}
                count = len(os.listdir(d))
                return wanted in live, count
        """, ["REP011"])
        assert findings == []

    def test_tests_are_exempt(self, tmp_path):
        findings = run_lint(tmp_path, """
            def helper():
                for x in {1, 2}:
                    print(x)
        """, ["REP011"], filename="tests/test_thing.py")
        assert findings == []


class TestRep012RngAliasing:
    def test_flags_module_level_generator(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            streams = RandomStreams(7)
            gen = streams.get("model")
        """, ["REP012"])
        assert codes_of(findings) == ["REP012"]
        assert "'gen'" in findings[0].message

    def test_module_global_names_importers(self, tmp_path):
        findings = run_tree(tmp_path, {
            "repro/shared.py": """
                from repro.sim.rng import RandomStreams

                gen = RandomStreams(7).fresh("shared")
            """,
            "repro/user_a.py": "from repro.shared import gen\n",
            "repro/user_b.py": "from repro.shared import gen\n",
        }, ["REP012"])
        assert codes_of(findings) == ["REP012"]
        assert "repro.user_a" in findings[0].message
        assert "repro.user_b" in findings[0].message

    def test_flags_generator_into_two_spawns(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def launch(sim, worker, seed):
                streams = RandomStreams(seed)
                gen = streams.get("workers")
                sim.process(worker(sim, gen))
                sim.process(worker(sim, gen))
        """, ["REP012"])
        assert codes_of(findings) == ["REP012"]
        assert "'gen'" in findings[0].message

    def test_flags_generator_spawned_in_loop(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def launch(sim, worker, seed, ranks):
                streams = RandomStreams(seed)
                gen = streams.get("workers")
                for rank in range(ranks):
                    sim.process(worker(sim, rank, gen))
        """, ["REP012"])
        assert codes_of(findings) == ["REP012"]

    def test_flags_spawn_through_helper(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def start(sim, job, gen):
                return sim.process(job(gen))

            def launch(sim, job, seed):
                streams = RandomStreams(seed)
                gen = streams.get("jobs")
                start(sim, job, gen)
                start(sim, job, gen)
        """, ["REP012"])
        assert codes_of(findings) == ["REP012"]

    def test_stream_per_spawn_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def launch(sim, worker, seed, ranks):
                streams = RandomStreams(seed)
                for rank in range(ranks):
                    gen = streams.fresh(f"worker.{rank}")
                    sim.process(worker(sim, rank, gen))
        """, ["REP012"])
        assert findings == []

    def test_single_spawn_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def launch(sim, worker, seed):
                streams = RandomStreams(seed)
                gen = streams.get("solo")
                sim.process(worker(sim, gen))
        """, ["REP012"])
        assert findings == []

    def test_module_level_streams_registry_is_clean(self, tmp_path):
        """A RandomStreams *registry* global is fine; only drawn
        generators alias hidden state."""
        findings = run_lint(tmp_path, """
            from repro.sim.rng import RandomStreams

            def build(seed):
                return RandomStreams(seed)
        """, ["REP012"])
        assert findings == []


class TestRep013IdentityOrdering:
    def test_flags_key_id(self, tmp_path):
        findings = run_lint(tmp_path, """
            def order(jobs):
                return sorted(jobs, key=id)
        """, ["REP013"])
        assert codes_of(findings) == ["REP013"]

    def test_flags_id_inside_sort_key_lambda(self, tmp_path):
        findings = run_lint(tmp_path, """
            def order(jobs):
                jobs.sort(key=lambda j: (j.priority, id(j)))
        """, ["REP013"])
        assert codes_of(findings) == ["REP013"]

    def test_flags_hash_key_in_min(self, tmp_path):
        findings = run_lint(tmp_path, """
            def pick(names):
                return min(names, key=hash)
        """, ["REP013"])
        assert codes_of(findings) == ["REP013"]

    def test_flags_id_in_heap_entry(self, tmp_path):
        findings = run_lint(tmp_path, """
            import heapq

            def enqueue(heap, when, job):
                heapq.heappush(heap, (when, id(job), job))
        """, ["REP013"])
        assert codes_of(findings) == ["REP013"]

    def test_flags_id_dict_key(self, tmp_path):
        findings = run_lint(tmp_path, """
            def index(jobs):
                table = {id(j): j for j in jobs}
                other = {}
                for j in jobs:
                    other[id(j)] = j
                return table, other
        """, ["REP013"])
        # dict-comp key and subscript-assignment key both flagged
        assert codes_of(findings) == ["REP013", "REP013"]

    def test_stable_keys_are_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            import heapq

            def order(jobs, heap, when, seq, job):
                ranked = sorted(jobs, key=lambda j: (j.priority, j.name))
                heapq.heappush(heap, (when, seq, job))
                return ranked
        """, ["REP013"])
        assert findings == []

    def test_plain_id_call_is_clean(self, tmp_path):
        findings = run_lint(tmp_path, """
            def describe(job):
                return f"job at {id(job):#x}"
        """, ["REP013"])
        assert findings == []
