"""Differential harness: the calendar queue must equal the heap, exactly.

The calendar-queue kernel is only admissible because it is *observably
identical* to the binary heap it replaced — same pop order under the
``(when, priority, seq)`` tie-break contract, same traces, same DetSan
digests, same results.  This module pins that down at three levels:

* **queue level** — hypothesis-generated random schedules (same-instant
  ties, urgent entries, far-future events, interleaved pops) driven
  against both structures simultaneously, asserting entry-for-entry
  identical pop sequences;
* **simulator level** — the same workload run on ``queue="heap"`` and
  ``queue="wheel"`` produces byte-identical DetSan digests and trace
  record streams, including under cancellation and interrupts;
* **fast-path level** — the plain-mode run loop (no tracer/detsan)
  delivers the same events in the same order as the instrumented loop,
  observed through workload-visible effects and counters.

Contract note: the engine only ever pushes at ``now + delay`` with
``delay >= 0``, so the generated schedules never push into the past —
that is the (documented) precondition the calendar queue's active-slot
cursor relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    CalendarEventQueue,
    DetSanRecorder,
    HeapEventQueue,
    Interrupt,
    RecordingTracer,
    Resource,
    Simulator,
    Store,
)
from repro.sim.detsan import first_divergence


class _Stub:
    """Minimal event stand-in: the queues only touch ``_seq``."""

    __slots__ = ("_seq",)

    def __init__(self) -> None:
        self._seq = 0


#: Delay pool biased toward ties (repeated values) and including zero
#: (same-instant scheduling) and a far-future outlier.
_DELAYS = (0.0, 0.0, 0.25, 1.0, 1.0, 1.0, 3.5, 1e6)


@st.composite
def _schedules(draw, priorities=(0, 1, 1, 1)):
    """A list of queue operations: ("push", delay, priority) or "pop".

    ``priorities`` is the sampling pool: the default is the engine's
    real mix (urgent events are rare); pass ``(0, 0, 0, 1)`` for the
    urgent-heavy traces that stress the side table.
    """
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("push"),
                      st.sampled_from(_DELAYS),
                      st.sampled_from(priorities)),
            st.just("pop"),
        ),
        min_size=1, max_size=200,
    ))


def _drive(ops):
    """Run one schedule against both queues, asserting lock-step parity."""
    heap = HeapEventQueue()
    wheel = CalendarEventQueue()
    seq = 0
    now = 0.0
    popped = []

    def pop_both():
        nonlocal now
        a = heap.pop()
        b = wheel.pop()
        if a is None or b is None:
            assert a is None and b is None, (a, b)
            return None
        assert a[0] == b[0] and a[1] == b[1] and a[2] == b[2], (a, b)
        assert a[3] is b[3]
        now = a[0]
        popped.append(a[:3])
        return a

    for op in ops:
        if op == "pop":
            pop_both()
        else:
            _, delay, priority = op
            seq += 1
            event = _Stub()
            when = now + delay
            heap.push(when, priority, seq, event)
            wheel.push(when, priority, seq, event)
        assert len(heap) == len(wheel)
        assert heap.peek_time() == wheel.peek_time()
    while pop_both() is not None:
        pass
    assert len(heap) == len(wheel) == 0
    return popped


class TestQueueLevelEquivalence:
    @given(_schedules())
    @settings(max_examples=200, deadline=None)
    def test_random_schedules_pop_identically(self, ops):
        popped = _drive(ops)
        # Independently of the differential check: time never runs
        # backwards.  (Full (when, priority, seq) order holds only among
        # entries co-resident in the queue — an urgent entry pushed
        # after a same-instant normal one was already popped follows it,
        # in both structures.)
        times = [entry[0] for entry in popped]
        assert times == sorted(times)

    def test_all_tied_batch_with_midstream_pushes(self):
        """Pushes landing at the active instant join the active batch."""
        heap, wheel = HeapEventQueue(), CalendarEventQueue()
        stubs = [_Stub() for _ in range(8)]
        for seq in range(5):
            heap.push(1.0, 1, seq + 1, stubs[seq])
            wheel.push(1.0, 1, seq + 1, stubs[seq])
        a, b = heap.pop(), wheel.pop()
        assert a[:3] == b[:3] == (1.0, 1, 1)
        # Now 1.0 is the wheel's active time; a same-instant push and an
        # urgent same-instant push must interleave exactly like the heap.
        heap.push(1.0, 1, 6, stubs[5])
        wheel.push(1.0, 1, 6, stubs[5])
        heap.push(1.0, 0, 7, stubs[6])
        wheel.push(1.0, 0, 7, stubs[6])
        order_heap, order_wheel = [], []
        while True:
            a, b = heap.pop(), wheel.pop()
            if a is None:
                assert b is None
                break
            order_heap.append(a)
            order_wheel.append(b)
        assert [e[:3] for e in order_heap] == [e[:3] for e in order_wheel]
        # The urgent entry beats every undelivered normal entry at 1.0.
        assert order_heap[0][1] == 0 and order_heap[0][2] == 7

    def test_far_future_entry_waits_its_turn(self):
        heap, wheel = HeapEventQueue(), CalendarEventQueue()
        far, near = _Stub(), _Stub()
        heap.push(1e9, 1, 1, far)
        wheel.push(1e9, 1, 1, far)
        heap.push(2.0, 1, 2, near)
        wheel.push(2.0, 1, 2, near)
        assert heap.peek_time() == wheel.peek_time() == 2.0
        assert heap.pop()[3] is wheel.pop()[3] is near
        assert heap.pop()[3] is wheel.pop()[3] is far

    @given(_schedules(priorities=(0, 0, 0, 1)))
    @settings(max_examples=200, deadline=None)
    def test_urgent_heavy_schedules_pop_identically(self, ops):
        """The urgent side table under a 3:1 urgent:normal mix.

        ``_drive`` asserts ``len()`` and ``peek_time()`` parity after
        every single operation, so this pins the count/peek contract of
        the urgent band, not just final pop order.
        """
        popped = _drive(ops)
        times = [entry[0] for entry in popped]
        assert times == sorted(times)

    def test_normal_push_on_urgent_only_time_no_duplicate_heap_entry(self):
        """Regression: a normal push landing on a time that only has
        urgent events queued must not enter ``_times`` a second time."""
        heap, wheel = HeapEventQueue(), CalendarEventQueue()
        urgent, normal = _Stub(), _Stub()
        for q in (heap, wheel):
            q.push(5.0, 0, 1, urgent)
            q.push(5.0, 1, 2, normal)
        # Exactly one distinct-time entry: the invariant the deduped
        # push-branch checks once.
        assert wheel._times == [5.0]
        assert len(heap) == len(wheel) == 2
        assert heap.peek_time() == wheel.peek_time() == 5.0
        a, b = heap.pop(), wheel.pop()
        assert a[:3] == b[:3] == (5.0, 0, 1)
        assert len(heap) == len(wheel) == 1
        a, b = heap.pop(), wheel.pop()
        assert a[:3] == b[:3] == (5.0, 1, 2)
        assert heap.pop() is None and wheel.pop() is None
        assert len(heap) == len(wheel) == 0

    def test_urgent_push_on_normal_only_time_no_duplicate_heap_entry(self):
        """The mirror image: urgent push landing on a normal-only time."""
        heap, wheel = HeapEventQueue(), CalendarEventQueue()
        normal, urgent = _Stub(), _Stub()
        for q in (heap, wheel):
            q.push(5.0, 1, 1, normal)
            q.push(5.0, 0, 2, urgent)
        assert wheel._times == [5.0]
        assert len(heap) == len(wheel) == 2
        a, b = heap.pop(), wheel.pop()
        assert a[:3] == b[:3] == (5.0, 0, 2)
        a, b = heap.pop(), wheel.pop()
        assert a[:3] == b[:3] == (5.0, 1, 1)
        assert len(heap) == len(wheel) == 0

    def test_push_urgent_uncounted_honours_its_name(self):
        """``_push_urgent_uncounted`` queues structurally but leaves
        ``len()`` to the caller — the documented hazard that used to hide
        behind the public ``push_urgent`` name."""
        wheel = CalendarEventQueue()
        stub = _Stub()
        stub._seq = 1
        wheel._push_urgent_uncounted(1.0, stub)
        assert len(wheel) == 0          # NOT maintained: caller's job.
        assert wheel.peek_time() == 1.0  # ...but structurally queued.
        # The public path does maintain the count.
        counted = CalendarEventQueue()
        counted.push(1.0, 0, 1, _Stub())
        assert len(counted) == 1
        assert counted.pop()[:3] == (1.0, 0, 1)
        assert len(counted) == 0


# -- cancellation-heavy lockstep ---------------------------------------------
#
# Cancellation is engine-level: the entry stays queued and is reaped,
# uncounted, when it surfaces.  The queues never inspect the cancel
# mark, so the interesting differential is one level up — two
# simulators stepped in lockstep, asserting len()/peek() parity of the
# underlying queues after every delivered event while most of the
# queued entries are cancelled.

def _lockstep(plan):
    """Build a heap and a wheel simulator from the same (delay, cancel)
    plan and step them in lockstep, asserting queue parity throughout."""
    sims = []
    for kind in ("heap", "wheel"):
        sim = Simulator(queue=kind)
        doomed = []
        for delay, cancel in plan:
            event = sim.timeout(delay)
            if cancel:
                doomed.append(event)
        for event in doomed:
            sim.cancel(event)
        sims.append(sim)
    heap_sim, wheel_sim = sims
    delivered = 0
    while True:
        assert len(heap_sim._queue) == len(wheel_sim._queue)
        assert heap_sim.peek() == wheel_sim.peek()
        try:
            heap_sim.step()
        except IndexError:
            # Only cancelled (or no) entries remain: the wheel must agree.
            with pytest.raises(IndexError):
                wheel_sim.step()
            break
        wheel_sim.step()
        delivered += 1
        assert heap_sim.now == wheel_sim.now
        assert heap_sim.events_executed == wheel_sim.events_executed
    assert len(heap_sim._queue) == len(wheel_sim._queue) == 0
    assert heap_sim.now == wheel_sim.now
    return delivered


class TestCancellationHeavyLockstep:
    @given(st.lists(st.tuples(st.sampled_from(_DELAYS), st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_random_cancellation_plans_stay_in_lockstep(self, plan):
        kept = sum(1 for _, cancel in plan if not cancel)
        assert _lockstep(plan) == kept

    def test_fully_cancelled_queue_drains_to_nothing(self):
        """Every entry cancelled: both step() calls raise immediately and
        reaping drains both queues to zero without advancing the count."""
        assert _lockstep([(d, True) for d in _DELAYS]) == 0

    def test_cancelled_slot_cohorts_reap_identically(self):
        """Whole tied cohorts cancelled around a surviving entry."""
        plan = ([(2.5, True)] * 6 + [(2.5, False)]
                + [(0.5, True)] * 4 + [(7.0, False), (1e6, True)])
        assert _lockstep(plan) == 2


# -- simulator-level equivalence ---------------------------------------------

def _mixed_workload(sim):
    """Processes + ties + interrupts + resources + cancellation, all in
    one pot: the shapes that would expose an ordering difference."""
    log = []
    resource = Resource(sim, capacity=2)
    store = Store(sim)

    def worker(wid):
        for step in range(4):
            yield sim.timeout(0.5 * (step % 2))  # deliberate ties
            log.append(("w", wid, step, sim.now))
        yield resource.request()
        yield sim.timeout(0.25)
        resource.release()
        log.append(("done", wid, sim.now))

    def producer():
        for i in range(6):
            yield store.put(i)
            yield sim.timeout(0.125)

    def consumer():
        for _ in range(6):
            item = yield store.get()
            log.append(("got", item, sim.now))

    def canceller():
        doomed = [sim.timeout(10.0) for _ in range(5)]
        yield sim.timeout(1.0)
        for event in doomed[::2]:
            sim.cancel(event)
        log.append(("cancelled", sim.now))

    def interrupter(victim):
        yield sim.timeout(0.75)
        if victim.is_alive:
            victim.interrupt("poke")

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            log.append(("interrupted", str(exc.cause), sim.now))

    workers = [sim.process(worker(i), name=f"w{i}") for i in range(5)]
    sim.process(producer(), name="prod")
    sim.process(consumer(), name="cons")
    sim.process(canceller(), name="cancel")
    victim = sim.process(sleeper(), name="sleeper")
    sim.process(interrupter(victim), name="poker")
    sim.run()
    assert all(w.triggered for w in workers)
    return log


class TestSimulatorLevelEquivalence:
    def test_detsan_digests_identical_heap_vs_wheel(self):
        recorders = {}
        for kind in ("heap", "wheel"):
            recorder = DetSanRecorder()
            sim = Simulator(detsan=recorder, queue=kind)
            _mixed_workload(sim)
            recorders[kind] = recorder
        assert (recorders["heap"].events_folded
                == recorders["wheel"].events_folded > 0)
        assert recorders["heap"].digest == recorders["wheel"].digest
        assert first_divergence(recorders["heap"],
                                recorders["wheel"]) is None

    def test_trace_streams_identical_heap_vs_wheel(self):
        traces = {}
        for kind in ("heap", "wheel"):
            tracer = RecordingTracer()
            sim = Simulator(tracer=tracer, queue=kind)
            _mixed_workload(sim)
            traces[kind] = [(r.time, r.kind, r.name, r.status)
                            for r in tracer.records]
        assert traces["heap"] == traces["wheel"]
        assert len(traces["heap"]) > 50

    def test_workload_effects_identical_heap_vs_wheel(self):
        logs, counts, clocks = {}, {}, {}
        for kind in ("heap", "wheel"):
            sim = Simulator(queue=kind)
            logs[kind] = _mixed_workload(sim)
            counts[kind] = sim.events_executed
            clocks[kind] = sim.now
        assert logs["heap"] == logs["wheel"]
        assert counts["heap"] == counts["wheel"]
        assert clocks["heap"] == clocks["wheel"]


class TestFastPathEquivalence:
    """Plain-mode loop vs instrumented loop, both on the wheel."""

    def test_fast_path_matches_instrumented_effects(self):
        # Plain: wheel + no tracer/detsan/obs -> _run_fast.
        plain = Simulator(queue="wheel")
        assert plain.queue_kind == "wheel"
        plain_log = _mixed_workload(plain)
        # Instrumented: a recording tracer forces the general loop.
        traced = Simulator(tracer=RecordingTracer(), queue="wheel")
        traced_log = _mixed_workload(traced)
        assert plain_log == traced_log
        assert plain.events_executed == traced.events_executed
        assert plain.now == traced.now

    def test_fast_path_matches_heap_under_same_seed_double_run(self):
        first = [_mixed_workload(Simulator(queue="wheel"))
                 for _ in range(2)]
        assert first[0] == first[1]
        heap_log = _mixed_workload(Simulator(queue="heap"))
        assert first[0] == heap_log
