"""Unit parsing/formatting round trips and growth-rate identities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.units import (
    UnitError,
    cagr_from_doubling_time,
    doubling_time_from_cagr,
    format_bytes,
    format_dollars,
    format_flops,
    format_power,
    format_si,
    format_time,
    parse_bytes,
    parse_flops,
    parse_time,
)


class TestParseFlops:
    def test_plain_number_is_flops(self):
        assert parse_flops("3e9") == 3e9

    @pytest.mark.parametrize("text,expected", [
        ("1 FLOPS", 1.0),
        ("2 GFLOPS", 2e9),
        ("1.5 Tflops", 1.5e12),
        ("4.5GFLOPS", 4.5e9),
        ("1 PFLOPS", 1e15),
        ("2 Mflop/s", 2e6),
    ])
    def test_prefixes(self, text, expected):
        assert parse_flops(text) == pytest.approx(expected)

    def test_rejects_non_flops_unit(self):
        with pytest.raises(UnitError):
            parse_flops("3 GB")

    def test_rejects_garbage(self):
        with pytest.raises(UnitError):
            parse_flops("fast")

    def test_rejects_unknown_prefix(self):
        with pytest.raises(UnitError):
            parse_flops("3 QFLOPS")


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("512 MB", 512e6),
        ("16 GiB", 16 * 2**30),
        ("2TB", 2e12),
        ("100 B", 100.0),
        ("1 KiB", 1024.0),
    ])
    def test_prefixes(self, text, expected):
        assert parse_bytes(text) == pytest.approx(expected)

    def test_decimal_vs_binary_differ(self):
        assert parse_bytes("1 GB") != parse_bytes("1 GiB")

    def test_rejects_non_byte(self):
        with pytest.raises(UnitError):
            parse_bytes("5 FLOPS")


class TestParseTime:
    @pytest.mark.parametrize("text,expected", [
        ("5 us", 5e-6),
        ("1.5 h", 5400.0),
        ("30", 30.0),
        ("2 d", 172800.0),
        ("1 y", 365.25 * 86400),
        ("100 ns", 1e-7),
    ])
    def test_suffixes(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    def test_rejects_unknown_suffix(self):
        with pytest.raises(UnitError):
            parse_time("5 fortnights")


class TestFormatting:
    def test_flops_picks_best_prefix(self):
        assert format_flops(2.5e9) == "2.5 GFLOPS"
        assert format_flops(1e15) == "1 PFLOPS"

    def test_zero(self):
        assert format_flops(0) == "0 FLOPS"
        assert format_bytes(0) == "0 B"
        assert format_time(0) == "0 s"

    def test_bytes_binary_prefix(self):
        assert format_bytes(2**30) == "1 GiB"

    def test_time_scales(self):
        assert format_time(5e-6) == "5 us"
        assert format_time(3600) == "1 h"
        assert format_time(2 * 365.25 * 86400) == "2 y"

    def test_power(self):
        assert format_power(2500) == "2.5 kW"

    def test_dollars(self):
        assert format_dollars(1_250_000) == "$1,250,000"
        assert format_dollars(46_000_000) == "$46.0M"

    def test_si_subunit_falls_back_to_scientific(self):
        assert "e" in format_si(1e-4, "X")

    def test_si_infinite(self):
        assert "inf" in format_si(float("inf"), "W")


class TestGrowthRates:
    def test_classic_moore(self):
        # 2x every 2 years == ~41.4%/year.
        assert cagr_from_doubling_time(2.0) == pytest.approx(0.41421356)

    def test_round_trip(self):
        for years in (0.5, 1.0, 1.5, 2.0, 3.0):
            assert doubling_time_from_cagr(
                cagr_from_doubling_time(years)) == pytest.approx(years)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            doubling_time_from_cagr(0.0)
        with pytest.raises(ValueError):
            cagr_from_doubling_time(-1.0)


class TestParseFormatProperty:
    @given(st.floats(min_value=1.0, max_value=1e18,
                     allow_nan=False, allow_infinity=False))
    def test_flops_format_parse_round_trip(self, value):
        text = format_flops(value, precision=12)
        assert parse_flops(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=1e-9, max_value=1e8,
                     allow_nan=False, allow_infinity=False))
    def test_time_format_parse_round_trip(self, value):
        text = format_time(value, precision=12)
        assert parse_time(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=0.01, max_value=10.0))
    def test_doubling_cagr_inverse(self, cagr):
        assert cagr_from_doubling_time(
            doubling_time_from_cagr(cagr)) == pytest.approx(cagr, rel=1e-9)
