"""SWIM gossip membership: decentralized detection through the fabric.

The load-bearing property is the same as the central monitor's — no
oracle — plus SWIM's own contract: suspicion precedes death, a live
suspect *refutes* by incarnation bump, and same-seed runs are
byte-identical down to the DetSan event digest.

Gossip physics note: every test runs a 1 ms protocol period.  The
gigabit-ethernet fat tree's one-way latency is ~50 us, so a ping+ack
round trip fits comfortably inside the probe timeout (period / 3); at
the central monitor's 0.1 ms period it would not, and every probe
would time out (see DESIGN.md).
"""

import math

import pytest

from repro.fault import DetectorDrivenSparePool
from repro.health import (
    DetectionSpec,
    GossipMonitor,
    GossipStatus,
    HeartbeatMonitor,
    NodeHealthState,
    build_monitor,
)
from repro.network import (
    Fabric,
    FabricFaultPlan,
    FatTreeTopology,
    get_interconnect,
)
from repro.obs import Observability, chrome_trace_json
from repro.sim import RandomStreams, Simulator
from repro.sim.detsan import DetSanRecorder

HB = 1e-3
NODES = 8


def make_gossip(plan=None, nodes=NODES, seed=3, obs=None, detsan=None,
                **spec_kwargs):
    """Gossip monitor over an ``nodes``-host fat tree on gigabit
    ethernet, started."""
    sim = Simulator(obs=obs, detsan=detsan)
    fabric = Fabric(sim, FatTreeTopology(nodes),
                    get_interconnect("gigabit_ethernet"), fault_plan=plan)
    base = dict(detector="gossip", heartbeat_interval=HB,
                suspect_after=3 * HB, dead_after=6 * HB)
    base.update(spec_kwargs)
    monitor = GossipMonitor(sim, fabric, nodes,
                            spec=DetectionSpec(**base),
                            streams=RandomStreams(seed))
    monitor.start()
    return sim, monitor


def access_link(nodes, host):
    """The host's first hop — its only way in or out of the tree."""
    return FatTreeTopology(nodes).route(host, (host + 1) % nodes)[0]


class TestHealthyOperation:
    def test_no_noise_without_faults(self):
        """Randomized probing manufactures neither suspicion nor death."""
        sim, monitor = make_gossip()
        sim.run(until=20 * HB)
        stats = monitor.gossip_stats()
        assert stats.probes > 0
        assert stats.messages_delivered > 0
        assert stats.suspicions == 0
        assert monitor.false_suspicions == 0
        assert monitor.deaths == []
        assert monitor.membership.epoch == 0
        assert math.isnan(monitor.mttd_seconds())

    def test_every_node_carries_load(self):
        """O(1) per node: every member probes, none is a hotspot."""
        sim, monitor = make_gossip()
        sim.run(until=20 * HB)
        stats = monitor.gossip_stats()
        assert all(b > 0 for b in monitor.bytes_sent_by)
        assert (stats.max_node_bytes_sent
                <= 5 * stats.mean_node_bytes_sent)

    def test_stop_quiesces(self):
        sim, monitor = make_gossip()
        sim.run(until=5 * HB)
        monitor.stop()
        monitor.stop()  # idempotent
        sent = monitor.gossip_stats().messages_sent
        sim.run(until=sim.now + 10 * HB)
        assert monitor.gossip_stats().messages_sent == sent


class TestCrashLifecycle:
    def test_crash_is_detected_via_suspicion(self):
        sim, monitor = make_gossip()
        sim.run(until=2 * HB)
        notice = monitor.death_notice()
        monitor.crash(5)
        sim.run(until=20 * HB)
        assert notice.triggered
        deaths = monitor.pop_deaths()
        assert [d.node for d in deaths] == [5]
        assert not deaths[0].false_positive
        assert deaths[0].detect_seconds > 0
        # SWIM's two-step verdict is visible in the canonical log:
        # someone suspected 5, then someone (possibly else) buried it.
        log = monitor.membership.render_log()
        assert "gossip-suspect-by-" in log
        assert "gossip-dead-by-" in log
        stats = monitor.gossip_stats()
        assert stats.suspicions >= 1
        assert stats.probe_timeouts >= 1

    def test_indirect_probes_are_tried_before_suspicion(self):
        """A timed-out direct probe fans out to k relays."""
        sim, monitor = make_gossip()
        sim.run(until=2 * HB)
        monitor.crash(5)
        sim.run(until=20 * HB)
        stats = monitor.gossip_stats()
        assert stats.indirect_probes >= monitor.spec.k_indirect

    def test_dead_nodes_stop_being_probed(self):
        """Once the fleet believes 5 is dead, nobody wastes probes on
        it — detector load tracks the live membership."""
        sim, monitor = make_gossip()
        sim.run(until=2 * HB)
        monitor.crash(5)
        sim.run(until=20 * HB)
        timeouts_at_burial = monitor.gossip_stats().probe_timeouts
        sim.run(until=40 * HB)
        assert (monitor.gossip_stats().probe_timeouts
                <= timeouts_at_burial)


class TestRefutation:
    def make_partitioned(self, victim=7, start=3 * HB, end=7 * HB):
        """Symmetric outage on the victim's access link, healing well
        inside the suspicion window."""
        plan = FabricFaultPlan()
        a, b = access_link(NODES, victim)
        plan.link_down(a, b, start, end)
        return make_gossip(plan=plan)

    def test_false_suspicion_is_refuted_on_heal(self):
        sim, monitor = self.make_partitioned()
        sim.run(until=25 * HB)
        stats = monitor.gossip_stats()
        # The outage was real, so suspicion was *honest*…
        assert monitor.false_suspicions >= 1
        assert stats.suspicions >= 1
        # …and the heal landed before any timer expired: the suspects
        # bumped their incarnation and everyone walked it back.
        assert stats.refutations >= 1
        assert monitor.deaths == []
        assert "gossip-refuted" in monitor.membership.render_log()
        for node in range(NODES):
            assert (monitor.membership.state_of(node)
                    is NodeHealthState.HEALTHY)

    def test_refutation_outranks_stale_suspicion(self):
        """After the refutation the fleet holds the *new* incarnation:
        replaying the run longer never resurrects the stale rumor."""
        sim, monitor = self.make_partitioned()
        sim.run(until=25 * HB)
        suspicions = monitor.gossip_stats().suspicions
        sim.run(until=50 * HB)
        assert monitor.gossip_stats().suspicions == suspicions
        assert monitor.deaths == []


class TestRestore:
    def test_restored_node_rejoins_with_higher_incarnation(self):
        sim, monitor = make_gossip()
        sim.run(until=2 * HB)
        monitor.crash(5)
        sim.run(until=15 * HB)
        assert [d.node for d in monitor.deaths] == [5]
        assert monitor.membership.state_of(5) is NodeHealthState.DEAD
        bytes_before = monitor.bytes_sent_by[5]
        monitor.repair(5)
        monitor.restore(5)
        assert monitor.membership.state_of(5) is NodeHealthState.HEALTHY
        sim.run(until=40 * HB)
        # The rebooted node probes again and nobody re-buries it: its
        # rejoin incarnation outranks every pre-crash rumor.
        assert monitor.bytes_sent_by[5] > bytes_before
        assert [d.node for d in monitor.deaths] == [5]
        for node in range(NODES):
            assert monitor.membership.is_available(node)


class TestDeterminism:
    def run_once(self, seed=11, slots=None):
        """One faulted campaign with full instrumentation: crash plus a
        healed partition, every replay channel captured."""
        obs = Observability()
        detsan = DetSanRecorder()
        plan = FabricFaultPlan()
        a, b = access_link(NODES, 6)
        plan.link_down(a, b, 3 * HB, 7 * HB)
        sim, monitor = make_gossip(plan=plan, seed=seed, obs=obs,
                                   detsan=detsan, heartbeat_slots=slots)
        sim.run(until=2 * HB)
        monitor.crash(3)
        sim.run(until=25 * HB)
        return {
            "log": monitor.membership.render_log(),
            "stats": monitor.gossip_stats(),
            "deaths": [(d.node, d.declared_at) for d in monitor.deaths],
            "trace": chrome_trace_json(obs),
            "digest": detsan.digest,
        }

    def test_same_seed_runs_are_byte_identical(self):
        first, second = self.run_once(), self.run_once()
        assert first["log"] == second["log"]
        assert first["stats"] == second["stats"]
        assert first["deaths"] == second["deaths"]
        assert first["trace"] == second["trace"]
        assert first["digest"] == second["digest"]

    def test_slotted_mode_is_deterministic_too(self):
        first, second = self.run_once(slots=4), self.run_once(slots=4)
        assert first["log"] == second["log"]
        assert first["digest"] == second["digest"]

    def test_seed_changes_the_probe_order_not_the_verdict(self):
        first, other = self.run_once(seed=11), self.run_once(seed=12)
        assert [n for n, _ in first["deaths"]] == [3]
        assert [n for n, _ in other["deaths"]] == [3]
        assert first["digest"] != other["digest"]


class TestSparePool:
    def test_gossip_verdicts_drive_spares(self):
        """The availability layer consumes gossip DeathRecords exactly
        as it consumes the central monitor's."""
        sim, monitor = make_gossip()
        pool = DetectorDrivenSparePool((100, 101))
        sim.run(until=2 * HB)
        monitor.crash(5)
        sim.run(until=20 * HB)
        record = monitor.pop_deaths()[0]
        assert pool.activate(record) == 100
        assert pool.activations == 1
        assert pool.false_activations == 0

    def test_ground_truth_cannot_activate(self):
        pool = DetectorDrivenSparePool((100,))
        with pytest.raises(TypeError):
            pool.activate("node 5 looked dead to me")


class TestFactoryAndSpec:
    def test_build_monitor_dispatches_on_detector(self):
        sim = Simulator()
        fabric = Fabric(sim, FatTreeTopology(4),
                        get_interconnect("gigabit_ethernet"))
        gossip = build_monitor(sim, fabric, 4,
                               spec=DetectionSpec(detector="gossip"))
        central = build_monitor(sim, fabric, 4,
                                spec=DetectionSpec(detector="fixed"))
        assert isinstance(gossip, GossipMonitor)
        assert isinstance(central, HeartbeatMonitor)
        assert not isinstance(central, GossipMonitor)

    def test_gossip_monitor_rejects_central_specs(self):
        sim = Simulator()
        fabric = Fabric(sim, FatTreeTopology(4),
                        get_interconnect("gigabit_ethernet"))
        with pytest.raises(ValueError, match="gossip"):
            GossipMonitor(sim, fabric, 4,
                          spec=DetectionSpec(detector="phi"))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DetectionSpec(detector="gossip", k_indirect=0)
        with pytest.raises(ValueError):
            DetectionSpec(detector="gossip", piggyback_limit=0)
        with pytest.raises(ValueError):
            DetectionSpec(detector="gossip", retransmit_factor=0.0)
        with pytest.raises(ValueError):
            # The probe timeout must leave room for the indirect round.
            DetectionSpec(detector="gossip", heartbeat_interval=HB,
                          probe_timeout=2 * HB)

    def test_probe_timeout_defaults_to_a_third_of_the_period(self):
        spec = DetectionSpec(detector="gossip", heartbeat_interval=HB)
        assert spec.effective_probe_timeout == pytest.approx(HB / 3)
        custom = DetectionSpec(detector="gossip", heartbeat_interval=HB,
                               probe_timeout=HB / 5)
        assert custom.effective_probe_timeout == pytest.approx(HB / 5)

    def test_status_precedence_is_graver_wins(self):
        """Serf precedence: at equal incarnation, DEAD > SUSPECT >
        ALIVE — the ordering the merge rule leans on."""
        assert GossipStatus.DEAD > GossipStatus.SUSPECT > GossipStatus.ALIVE
