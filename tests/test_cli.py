"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_roadmap(self, capsys):
        assert main(["roadmap", "--years", "2003:2005"]) == 0
        out = capsys.readouterr().out
        assert "2003" in out and "GFLOPS" in out

    def test_roadmap_scenario_choice_enforced(self):
        with pytest.raises(SystemExit):
            main(["roadmap", "--scenario", "wild"])

    def test_nodes(self, capsys):
        assert main(["nodes", "--year", "2006"]) == 0
        out = capsys.readouterr().out
        for architecture in ("conventional", "blade", "soc", "pim"):
            assert architecture in out

    def test_nodes_respects_availability(self, capsys):
        assert main(["nodes", "--year", "2003"]) == 0
        out = capsys.readouterr().out
        assert "pim" not in out

    def test_design(self, capsys):
        assert main(["design", "--budget", "2e6", "--year", "2005"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "price" in out

    def test_interconnects(self, capsys):
        assert main(["interconnects", "--year", "2003"]) == 0
        out = capsys.readouterr().out
        assert "infiniband_4x" in out
        assert "infiniband_12x" not in out  # ships 2005

    def test_faults(self, capsys):
        assert main(["faults", "--nodes", "10000"]) == 0
        out = capsys.readouterr().out
        assert "Daly interval" in out

    def test_fabrics(self, capsys):
        assert main(["fabrics", "--hosts", "64"]) == 0
        out = capsys.readouterr().out
        assert "leaf-spine 1:1" in out
        assert "bisection" in out

    def test_procurement(self, capsys):
        assert main(["procurement", "--annual-budget", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "rolling" in out and "forklift 3y" in out

    def test_fleet_list(self, capsys):
        assert main(["fleet", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("e20_fault_campaigns", "e21_detection_tradeoff",
                     "e22_jobs_service", "perf_engine"):
            assert name in out

    def test_fleet_unknown_experiment_exits_2(self, capsys):
        assert main(["fleet", "no_such_experiment", "--no-artifact"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_fleet_runs_selected_experiment(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        artifact = tmp_path / "BENCH_xp_fleet.json"
        assert main(["fleet", "perf_engine",
                     "--cache-dir", str(cache_dir),
                     "--artifact", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "perf_engine/storm-wheel: ran" in out
        assert artifact.exists()
        # Warm: every point served from cache.
        assert main(["fleet", "perf_engine",
                     "--cache-dir", str(cache_dir),
                     "--artifact", str(artifact), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "perf_engine/storm-wheel: cached" in out
        assert "2 cached (100%)" in out

    def test_jobs(self, capsys):
        assert main(["jobs"]) == 0
        out = capsys.readouterr().out
        assert "12 completed" in out
        assert "violations=0" in out
        assert "byte-identical" in out
        assert "at-most-once: PROVEN" in out

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])
