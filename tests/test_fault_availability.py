"""Availability arithmetic and spare-pool sizing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fault import (
    NodeAvailability,
    expected_up_nodes,
    node_availability,
    probability_at_least,
    spares_for_sla,
)
from repro.fault.models import ExponentialFailures
from repro.sim import RandomStreams

YEAR = 365.25 * 86400.0


class TestNodeAvailability:
    def test_formula(self):
        record = NodeAvailability(mtbf_seconds=900.0, mttr_seconds=100.0)
        assert record.availability == pytest.approx(0.9)
        assert record.unavailability == pytest.approx(0.1)

    def test_zero_mttr_is_perfect(self):
        assert node_availability(100.0, 0.0) == 1.0

    def test_three_year_nodes_are_four_nines(self):
        """3-year MTBF + 30-minute repair: ~4-5 nines per node."""
        availability = node_availability(3 * YEAR, 1800.0)
        assert 0.9999 < availability < 0.99999
        assert availability == pytest.approx(1 - 1800 / (3 * YEAR + 1800),
                                             rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeAvailability(0.0, 1.0)
        with pytest.raises(ValueError):
            NodeAvailability(1.0, -1.0)


class TestFleetDistribution:
    def test_expected_up(self):
        assert expected_up_nodes(10_000, 0.999) == pytest.approx(9_990.0)

    def test_probability_bounds(self):
        assert probability_at_least(0, 100, 0.9) == pytest.approx(1.0)
        assert probability_at_least(101, 100, 0.9) == 0.0
        assert 0 < probability_at_least(95, 100, 0.95) < 1

    def test_probability_monotone_in_threshold(self):
        values = [probability_at_least(k, 100, 0.98)
                  for k in (90, 95, 99, 100)]
        assert values == sorted(values, reverse=True)

    def test_matches_monte_carlo(self, streams):
        rng = streams.get("avail")
        n, availability = 200, 0.97
        samples = rng.binomial(n, availability, size=200_000)
        for threshold in (190, 194, 196):
            empirical = float(np.mean(samples >= threshold))
            analytic = probability_at_least(threshold, n, availability)
            assert analytic == pytest.approx(empirical, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_at_least(1, 0, 0.9)
        with pytest.raises(ValueError):
            probability_at_least(1, 10, 1.5)
        with pytest.raises(ValueError):
            probability_at_least(-1, 10, 0.9)


class TestSparePool:
    def test_perfect_nodes_need_no_spares(self):
        assert spares_for_sla(1000, 1.0) == 0

    def test_sla_satisfied_and_minimal(self):
        required, availability, confidence = 512, 0.995, 0.999
        spares = spares_for_sla(required, availability, confidence)
        assert probability_at_least(required, required + spares,
                                    availability) >= confidence
        if spares > 0:
            assert probability_at_least(required, required + spares - 1,
                                        availability) < confidence

    def test_worse_nodes_need_more_spares(self):
        good = spares_for_sla(1024, 0.9999)
        bad = spares_for_sla(1024, 0.99)
        assert bad > good

    def test_big_machine_always_degraded(self):
        """At 10k nodes even 4-nines nodes mean spares are mandatory for
        a full-machine SLA — the keynote's operations reality."""
        availability = node_availability(3 * YEAR, 1800.0)
        assert spares_for_sla(10_000, availability) >= 1

    def test_pathological_availability_rejected(self):
        with pytest.raises(ValueError, match="sane spare pool"):
            spares_for_sla(100, 0.05, confidence=0.999)

    @given(st.integers(min_value=1, max_value=2_000),
           st.floats(min_value=0.90, max_value=0.9999),
           st.sampled_from([0.9, 0.99, 0.999]))
    @settings(max_examples=40, deadline=None)
    def test_sla_always_met(self, required, availability, confidence):
        spares = spares_for_sla(required, availability, confidence)
        assert probability_at_least(required, required + spares,
                                    availability) >= confidence
