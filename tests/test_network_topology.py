"""Topologies: structure, routing validity, formulas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    FatTreeTopology,
    HypercubeTopology,
    SingleSwitchTopology,
    TorusTopology,
)
from repro.network.topology import RouteCache


def assert_route_valid(topology, src, dst):
    """A route must be a connected, correctly-oriented edge path."""
    route = topology.route(src, dst)
    if src == dst:
        assert route == []
        return
    position = topology.host_node(src)
    for edge in route:
        assert topology.graph.has_edge(*edge), f"missing edge {edge}"
        origin, target = edge
        assert position == origin, f"route discontinuous at {edge}"
        position = target
    assert position == topology.host_node(dst)


class TestSingleSwitch:
    def test_structure(self):
        topology = SingleSwitchTopology(8)
        assert topology.num_switches == 1
        assert topology.num_links == 8

    def test_all_pairs_two_hops(self):
        topology = SingleSwitchTopology(6)
        for src in range(6):
            for dst in range(6):
                assert_route_valid(topology, src, dst)
                if src != dst:
                    assert topology.hop_count(src, dst) == 2
        assert topology.diameter_hops() == 2

    def test_bisection(self):
        assert SingleSwitchTopology(8).bisection_links() == 4

    def test_host_range_checked(self):
        with pytest.raises(IndexError):
            SingleSwitchTopology(4).host_node(4)
        with pytest.raises(ValueError):
            SingleSwitchTopology(0)


class TestFatTree:
    def test_structure_full_bisection(self):
        topology = FatTreeTopology(64, hosts_per_leaf=16)
        assert topology.num_leaves == 4
        assert topology.num_spines == 16
        assert topology.oversubscription == pytest.approx(1.0)
        # Leaf-spine links + host links.
        assert topology.num_links == 4 * 16 + 64

    def test_oversubscribed(self):
        topology = FatTreeTopology(64, hosts_per_leaf=16, spines=4)
        assert topology.oversubscription == pytest.approx(4.0)
        assert topology.bisection_links() == 2 * 4

    def test_intra_leaf_routes_two_hops(self):
        topology = FatTreeTopology(32, hosts_per_leaf=8)
        assert topology.hop_count(0, 7) == 2

    def test_inter_leaf_routes_four_hops(self):
        topology = FatTreeTopology(32, hosts_per_leaf=8)
        assert topology.hop_count(0, 31) == 4
        assert topology.diameter_hops() == 4

    def test_routes_valid_everywhere(self):
        topology = FatTreeTopology(24, hosts_per_leaf=8, spines=4)
        for src in range(24):
            for dst in range(24):
                assert_route_valid(topology, src, dst)

    def test_spine_choice_deterministic(self):
        topology = FatTreeTopology(64, hosts_per_leaf=8)
        assert topology.route(0, 63) == topology.route(0, 63)

    def test_spine_spreading(self):
        """Different pairs should not all share one spine."""
        topology = FatTreeTopology(64, hosts_per_leaf=8)
        spines = {topology.route(src, 63)[1][1] for src in range(8)}
        assert len(spines) > 1

    def test_partial_last_leaf(self):
        topology = FatTreeTopology(20, hosts_per_leaf=8)
        assert topology.num_leaves == 3
        assert_route_valid(topology, 0, 19)


class TestTorus:
    def test_structure_2d(self):
        topology = TorusTopology((4, 4))
        assert topology.hosts == 16
        assert topology.num_links == 32          # 2 links per host
        assert topology.num_switches == 0        # direct network

    def test_coordinates_round_trip(self):
        topology = TorusTopology((3, 4, 5))
        for rank in range(topology.hosts):
            assert topology.rank_of(topology.coords_of(rank)) == rank

    def test_wraparound_shortens_routes(self):
        topology = TorusTopology((8,) * 2)
        # 0 -> 7 in one dimension: wrap is 1 hop, not 7.
        assert topology.hop_count(0, 7) == 1

    def test_dimension_ordered_routing_valid(self):
        topology = TorusTopology((4, 4))
        for src in range(16):
            for dst in range(16):
                assert_route_valid(topology, src, dst)

    def test_hop_count_is_manhattan_with_wrap(self):
        topology = TorusTopology((6, 6))
        src = topology.rank_of((0, 0))
        dst = topology.rank_of((2, 5))
        assert topology.hop_count(src, dst) == 2 + 1  # wrap the second dim

    def test_diameter(self):
        assert TorusTopology((8, 8)).diameter_hops() == 8
        assert TorusTopology((4, 4, 4)).diameter_hops() == 6

    def test_bisection(self):
        assert TorusTopology((8, 8)).bisection_links() == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusTopology((1, 4))
        with pytest.raises(ValueError):
            TorusTopology(())


class TestHypercube:
    def test_structure(self):
        topology = HypercubeTopology(4)
        assert topology.hosts == 16
        assert topology.num_links == 16 * 4 // 2

    def test_hop_count_is_hamming_distance(self):
        topology = HypercubeTopology(5)
        assert topology.hop_count(0, 0b10110) == 3
        assert topology.diameter_hops() == 5

    def test_routes_valid(self):
        topology = HypercubeTopology(4)
        for src in range(16):
            for dst in range(16):
                assert_route_valid(topology, src, dst)

    def test_bisection(self):
        assert HypercubeTopology(4).bisection_links() == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            HypercubeTopology(0)


class TestRouteCache:
    def test_cache_returns_same_routes(self):
        topology = FatTreeTopology(32, hosts_per_leaf=8)
        cache = RouteCache(topology)
        assert cache.route(1, 30) == topology.route(1, 30)
        assert cache.route(1, 30) is cache.route(1, 30)  # memoised


class TestRoutingProperties:
    @given(st.integers(min_value=2, max_value=6),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_hypercube_routes_are_shortest(self, dimension, data):
        topology = HypercubeTopology(dimension)
        src = data.draw(st.integers(0, topology.hosts - 1))
        dst = data.draw(st.integers(0, topology.hosts - 1))
        assert topology.hop_count(src, dst) == bin(src ^ dst).count("1")

    @given(st.tuples(st.integers(2, 5), st.integers(2, 5)), st.data())
    @settings(max_examples=40, deadline=None)
    def test_torus_routes_never_exceed_diameter(self, shape, data):
        topology = TorusTopology(shape)
        src = data.draw(st.integers(0, topology.hosts - 1))
        dst = data.draw(st.integers(0, topology.hosts - 1))
        assert_route_valid(topology, src, dst)
        assert topology.hop_count(src, dst) <= topology.diameter_hops()
