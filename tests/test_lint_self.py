"""The repository must pass its own invariant checker.

This is the enforcement point: ``python -m repro lint`` in CI and this
test are the same gate, so a change that introduces a violation fails
the suite before it reaches review.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import RULES, lint_paths, load_baseline
from repro.lint.cli import BASELINE_NAME, main as lint_main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

pytestmark = pytest.mark.skipif(
    not SRC.is_dir(), reason="requires the src-layout checkout")


def test_source_tree_is_clean():
    """Zero non-baselined findings across every rule in src/repro."""
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    result = lint_paths([SRC], REPO_ROOT, RULES, baseline=baseline)
    assert result.files_scanned > 30
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"lint violations:\n{rendered}"
    assert result.exit_code == 0


def test_baseline_stays_near_empty():
    """The baseline is an escape hatch for grandfathered debt, not a
    dumping ground: new code must be fixed, not baselined."""
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    assert len(baseline) <= 5


def test_cli_exits_zero_on_repo(capsys):
    assert lint_main(["--root", str(REPO_ROOT)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_exits_nonzero_on_violations(tmp_path, capsys):
    """A fixture violating each of the 8 rules must fail the gate."""
    fixture = tmp_path / "repro" / "apps" / "offender.py"
    fixture.parent.mkdir(parents=True)
    fixture.write_text(
        "import random\n"
        "import time\n"
        "import numpy as np\n"
        "from repro.lint import engine\n"     # REP007: apps -> lint is upward
        "\n"
        "CAP = 1 << 30\n"                     # REP003
        "\n"
        "\n"
        "def jitter(seed, history=[]):\n"     # REP005; REP008 via body
        "    rng = np.random.default_rng(seed)\n"   # REP001 + REP008
        "    if rng.random() == 0.5:\n"       # REP004
        "        history.append(time.time())\n"     # REP002
        "    return random.gauss(0.0, 1.0)\n"       # REP001
        # no __all__ -> REP006
    )
    code = lint_main(["--root", str(tmp_path), "--no-baseline",
                      str(fixture)])
    out = capsys.readouterr().out
    assert code == 1
    for rule in ("REP001", "REP002", "REP003", "REP004",
                 "REP005", "REP006", "REP007", "REP008"):
        assert rule in out, f"{rule} missing from:\n{out}"
