"""End-to-end fault campaigns: the PR's acceptance criteria.

Real kernels (SUMMA, 2D stencil) run under >= 3 node faults and >= 2
link down windows, recover via coordinated checkpoint/restart, and
produce answers bit-identical to the failure-free run; the same seed
reproduces the identical failure trace, retry counts, and metrics.
"""

import numpy as np
import pytest

import repro.apps.campaigns  # noqa: F401  (registers the kernels)
from repro.fault import (
    CheckpointVault,
    LinkFaultSpec,
    NodeFaultSpec,
    SwitchFaultSpec,
    available_kernels,
    get_kernel,
    run_campaign,
)
from repro.sim import RandomStreams
from tests.conftest import CAMPAIGN_NODE_FAULTS as NODE_FAULTS
from tests.conftest import make_stencil_spec as stencil_spec
from tests.conftest import make_summa_spec as summa_spec


class TestKernelRegistry:
    def test_standard_kernels_registered(self):
        assert {"summa", "stencil2d"} <= set(available_kernels())

    def test_unknown_kernel_names_the_registry_module(self):
        with pytest.raises(KeyError, match="repro.apps.campaigns"):
            get_kernel("no-such-kernel")


class TestCheckpointVault:
    def test_commit_requires_every_rank(self):
        vault = CheckpointVault(2)
        vault.stage(0, 1, "a0", now=1.0)
        assert vault.latest is None
        vault.stage(1, 1, "a1", now=1.5)
        assert vault.latest == (1, {0: "a0", 1: "a1"})
        assert vault.commits == 1
        assert vault.last_commit_time == 1.5

    def test_rollback_discards_partial_stages(self):
        vault = CheckpointVault(2)
        vault.stage(0, 1, "a0", now=1.0)
        vault.rollback()
        vault.stage(1, 1, "a1", now=2.0)
        assert vault.latest is None  # rank 0's stage was discarded

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointVault(0)


class TestSpecValidation:
    def test_victim_rank_bounds(self):
        with pytest.raises(ValueError):
            summa_spec(node_faults=(NodeFaultSpec(time=0.1, rank=9),))

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            NodeFaultSpec(time=-1.0, rank=0)
        with pytest.raises(ValueError):
            LinkFaultSpec(start=0.0, duration=0.0, a=("h", 0), b=("s", 0))
        with pytest.raises(ValueError):
            SwitchFaultSpec(start=-1.0, duration=1.0, node=("s", 2))

    def test_unknown_link_fails_loudly(self):
        spec = summa_spec(link_faults=(
            LinkFaultSpec(start=0.0, duration=1.0,
                          a=("host", 0), b=("leaf", 0)),))
        with pytest.raises(ValueError, match="no such link"):
            run_campaign(spec)

    def test_unknown_switch_fails_loudly(self):
        spec = summa_spec(switch_faults=(
            SwitchFaultSpec(start=0.0, duration=1.0, node=("s", 99)),))
        with pytest.raises(ValueError, match="no such node"):
            run_campaign(spec)


class TestSummaCampaign:
    def test_recovers_bit_identical(self):
        report = run_campaign(summa_spec())
        faulty = report.faulty
        assert report.answers_match
        assert len(faulty.fault_trace) == 3
        assert faulty.incarnations == 4  # one restart per node fault
        assert faulty.comm_stats["retries"] > 0  # host link outage
        assert faulty.fabric_counters["reroutes"] > 0  # spine outage
        assert faulty.elapsed > report.clean.elapsed
        assert 0 < report.goodput < 1

    def test_answer_is_the_true_product(self):
        report = run_campaign(summa_spec())
        rng = RandomStreams(7).fresh("apps.summa.input")
        a_full = rng.standard_normal((8, 8))
        b_full = rng.standard_normal((8, 8))
        # Rank 0 gathers C; block accumulation order matches the kernel,
        # not a @ b directly, so compare with a tolerance.
        product = report.faulty.answers[0]
        np.testing.assert_allclose(product, a_full @ b_full,
                                   rtol=1e-10, atol=1e-12)
        assert np.array_equal(product, report.clean.answers[0])


class TestStencilCampaign:
    def test_recovers_bit_identical_and_restores_checkpoints(self):
        report = run_campaign(stencil_spec())
        faulty = report.faulty
        assert report.answers_match
        assert len(faulty.fault_trace) == 3
        assert faulty.incarnations == 4
        assert faulty.commits > 0
        # At least one restart resumed from a committed checkpoint
        # rather than from scratch.
        assert any(step is not None
                   for _t, _rank, step in faulty.fault_trace)
        assert np.array_equal(faulty.answers[0], report.clean.answers[0])


class TestDeterminism:
    @pytest.mark.parametrize("spec_fn", [summa_spec, stencil_spec])
    def test_same_seed_same_trace_and_metrics(self, spec_fn):
        first = run_campaign(spec_fn())
        second = run_campaign(spec_fn())
        assert first.faulty.fault_trace == second.faulty.fault_trace
        assert first.faulty.comm_stats == second.faulty.comm_stats
        assert first.faulty.fabric_counters == second.faulty.fabric_counters
        assert first.faulty.elapsed == second.faulty.elapsed
        assert first.faulty.lost_work_seconds == (
            second.faulty.lost_work_seconds)
        assert first.goodput == second.goodput
        assert np.array_equal(first.faulty.answers[0],
                              second.faulty.answers[0])

    def test_different_seed_changes_jitter_timing(self):
        base = run_campaign(summa_spec())
        other = run_campaign(summa_spec(seed=8))
        # Inputs differ, so answers differ; both still self-consistent.
        assert base.answers_match and other.answers_match
        assert not np.array_equal(base.faulty.answers[0],
                                  other.faulty.answers[0])


class TestRandomLossCampaign:
    def test_random_drops_survived_by_reliable_delivery(self):
        report = run_campaign(summa_spec(
            link_faults=(), node_faults=NODE_FAULTS,
            drop_probability=0.1))
        assert report.answers_match
        assert report.faulty.fabric_counters["drops"] > 0
        assert report.faulty.comm_stats["retries"] > 0

    def test_fault_free_campaign_is_the_baseline(self):
        report = run_campaign(summa_spec(node_faults=(), link_faults=()))
        assert report.answers_match
        assert report.faulty.incarnations == 1
        assert report.goodput == pytest.approx(1.0)

    def test_report_summary_mentions_verdict(self):
        report = run_campaign(summa_spec())
        assert "bit-identical" in report.summary()
        assert "3 node fault(s)" in report.summary()
