"""Failure models, checkpoint economics, injection, recovery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fault import (
    CheckpointParams,
    ExponentialFailures,
    FaultInjector,
    WeibullFailures,
    compare_strategies,
    daly_interval,
    efficiency,
    expected_runtime,
    simulate_checkpoint_run,
    system_mtbf,
    waste_fraction,
    young_interval,
)
from repro.sim import FailureCause, Interrupt, RandomStreams, Simulator

YEAR = 365.25 * 86400.0


class TestFailureModels:
    def test_system_mtbf_inverse_in_nodes(self):
        assert system_mtbf(1000.0, 10) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            system_mtbf(-1.0, 10)
        with pytest.raises(ValueError):
            system_mtbf(1.0, 0)

    def test_exponential_mean(self, streams):
        model = ExponentialFailures(mtbf_seconds=500.0)
        samples = model.sample_interarrivals(streams.get("t"), 200_000)
        assert samples.mean() == pytest.approx(500.0, rel=0.02)

    def test_exponential_for_system(self):
        model = ExponentialFailures(3 * YEAR).for_system(10_000)
        assert model.mtbf() == pytest.approx(3 * YEAR / 10_000)

    def test_weibull_mean_matches_formula(self, streams):
        model = WeibullFailures.from_mtbf(mtbf_seconds=1000.0, shape=0.7)
        assert model.mtbf() == pytest.approx(1000.0)
        samples = model.sample_interarrivals(streams.get("w"), 300_000)
        assert samples.mean() == pytest.approx(1000.0, rel=0.03)

    def test_weibull_infant_mortality_shape(self, streams):
        """Shape < 1: more short gaps than exponential (heavier head)."""
        exponential = ExponentialFailures(1000.0)
        weibull = WeibullFailures.from_mtbf(1000.0, shape=0.6)
        exp_samples = exponential.sample_interarrivals(streams.get("a"), 100_000)
        wei_samples = weibull.sample_interarrivals(streams.get("b"), 100_000)
        threshold = 100.0
        assert (np.mean(wei_samples < threshold)
                > np.mean(exp_samples < threshold))

    def test_weibull_system_scaling_preserves_mean_rate(self):
        model = WeibullFailures.from_mtbf(1000.0, shape=0.8)
        scaled = model.for_system(10)
        assert scaled.mtbf() == pytest.approx(100.0)

    def test_weibull_for_system_keeps_shape_and_validates(self):
        model = WeibullFailures.from_mtbf(1000.0, shape=0.7)
        scaled = model.for_system(25)
        assert scaled.shape == model.shape
        assert scaled.scale == pytest.approx(model.scale / 25)
        assert model.for_system(1) == model
        with pytest.raises(ValueError):
            model.for_system(0)
        with pytest.raises(ValueError):
            model.for_system(-3)

    def test_weibull_for_system_approximation_error_bound(self, streams):
        """The docstring's claim, checked: the same-shape scaled Weibull
        approximates the true superposition of n independent Weibull
        renewal processes.  By Palm-Khintchine the superposition's
        long-run rate is exactly n/mtbf, so the approximation's *mean*
        is exact; the Monte-Carlo bound below pins the long-run
        interarrival mean of the true superposition to the approximate
        model's MTBF within 5%."""
        nodes, shape, node_mtbf = 20, 0.7, 1000.0
        model = WeibullFailures.from_mtbf(node_mtbf, shape)
        approx = model.for_system(nodes)
        rng = streams.get("weibull.superposition")
        draws = 4000  # renewals per node
        arrivals = np.sort(np.concatenate([
            np.cumsum(model.sample_interarrivals(rng, draws))
            for _ in range(nodes)
        ]))
        # Trim to the window every node's process fully covers, so the
        # tail is not biased toward early-finishing nodes.
        horizon = min(
            draws * node_mtbf * 0.5,
            arrivals[-1])
        arrivals = arrivals[arrivals <= horizon]
        observed_mean_gap = horizon / len(arrivals)
        assert observed_mean_gap == pytest.approx(approx.mtbf(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialFailures(0.0)
        with pytest.raises(ValueError):
            WeibullFailures(shape=0.0, scale=1.0)

    def test_system_mtbf_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            system_mtbf(0.0, 10)
        with pytest.raises(ValueError):
            system_mtbf(1000.0, -1)


class TestCheckpointMath:
    def params(self, delta=300.0, restart=600.0, mtbf=10_000.0):
        return CheckpointParams(checkpoint_seconds=delta,
                                restart_seconds=restart,
                                system_mtbf_seconds=mtbf)

    def test_young_formula(self):
        params = self.params(delta=200.0, mtbf=10_000.0)
        assert young_interval(params) == pytest.approx(
            math.sqrt(2 * 200.0 * 10_000.0))

    def test_daly_close_to_young_when_failures_rare(self):
        params = self.params(delta=10.0, mtbf=1e7)
        assert daly_interval(params) == pytest.approx(
            young_interval(params), rel=0.01)

    def test_daly_caps_at_mtbf_when_hopeless(self):
        params = self.params(delta=1000.0, mtbf=400.0)  # delta > 2M
        assert daly_interval(params) == 400.0

    def test_daly_interval_is_near_optimal(self):
        """The analytic optimum must beat every nearby interval on the
        exact expected-runtime model."""
        params = self.params()
        best = daly_interval(params)
        best_time = expected_runtime(params, 1e6, best)
        for factor in (0.25, 0.5, 2.0, 4.0):
            other = expected_runtime(params, 1e6, best * factor)
            assert best_time <= other * (1 + 1e-9)

    def test_efficiency_decreases_with_scale(self):
        deltas = []
        for nodes in (100, 1_000, 10_000, 100_000):
            params = CheckpointParams(300.0, 600.0,
                                      system_mtbf(3 * YEAR, nodes))
            deltas.append(efficiency(params, daly_interval(params)))
        assert deltas == sorted(deltas, reverse=True)
        assert deltas[0] > 0.95      # 100 nodes: nearly no loss
        assert deltas[-1] < 0.5      # 100k nodes: fault-dominated

    def test_waste_approximates_exact_at_low_failure_rates(self):
        params = self.params(delta=30.0, mtbf=1e6)
        tau = daly_interval(params)
        assert 1 - efficiency(params, tau) == pytest.approx(
            waste_fraction(params, tau), rel=0.1)

    def test_expected_runtime_exceeds_work(self):
        params = self.params()
        assert expected_runtime(params, 1000.0, 500.0) > 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointParams(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            expected_runtime(self.params(), -1.0, 10.0)
        with pytest.raises(ValueError):
            efficiency(self.params(), 0.0)

    @given(st.floats(min_value=1.0, max_value=1e4),
           st.floats(min_value=1e3, max_value=1e8))
    @settings(max_examples=100, deadline=None)
    def test_daly_never_worse_than_young(self, delta, mtbf):
        params = CheckpointParams(delta, 0.0, mtbf)
        work = 1e6
        daly_time = expected_runtime(params, work, daly_interval(params))
        young_time = expected_runtime(params, work, young_interval(params))
        assert daly_time <= young_time * (1 + 1e-6)


class TestInjection:
    def test_injector_interrupts_until_victim_dies(self, sim, streams):
        hits = []

        def victim_body(sim):
            for _ in range(3):
                try:
                    yield sim.timeout(1e9)
                except Interrupt as interrupt:
                    hits.append(interrupt.cause)
            return "survived 3"

        victim = sim.process(victim_body(sim))
        injector = FaultInjector(sim, ExponentialFailures(100.0),
                                 streams.get("inj"))
        injector.attach(victim)
        sim.run()
        assert victim.value == "survived 3"
        assert len(hits) == 3
        assert all(cause[0] == "failure" for cause in hits)

    def test_interrupt_cause_tuple_contract(self, sim, streams):
        """Injected causes are FailureCause instances that compare equal
        to the legacy ("failure", index) tuples — both spellings must
        keep working."""
        causes = []

        def victim_body(sim):
            for _ in range(2):
                try:
                    yield sim.timeout(1e9)
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)
            return "done"

        victim = sim.process(victim_body(sim))
        FaultInjector(sim, ExponentialFailures(50.0),
                      streams.get("inj")).attach(victim)
        sim.run()
        assert causes == [("failure", 0), ("failure", 1)]
        for index, cause in enumerate(causes):
            assert isinstance(cause, FailureCause)
            assert cause.kind == "failure"
            assert cause.index == index

    def test_same_instant_interrupt_is_noop(self):
        """An interrupt landing at the exact instant the victim's wait
        is due loses the tie: the victim "finished first" and resumes
        normally.  Regression for the timestamp-collision edge in
        FaultInjector teardown."""
        sim = Simulator()
        log = []

        def saboteur(victim_box):
            yield sim.timeout(5.0)
            victim_box[0].interrupt(FailureCause.numbered(0))

        def sleeper():
            try:
                yield sim.timeout(5.0)
                log.append("woke")
            except Interrupt:
                log.append("interrupted")

        box = []
        sim.process(saboteur(box))     # created first: acts first at t=5
        box.append(sim.process(sleeper()))
        sim.run()
        assert log == ["woke"]

    def test_future_wait_interrupt_still_lands(self):
        """The no-op rule applies only to exact ties: a victim waiting
        on a strictly-future event is interrupted as usual."""
        sim = Simulator()
        log = []

        def saboteur(victim_box):
            yield sim.timeout(5.0)
            victim_box[0].interrupt(FailureCause.numbered(0))

        def sleeper():
            try:
                yield sim.timeout(10.0)
                log.append("woke")
            except Interrupt as interrupt:
                log.append(interrupt.cause)

        box = []
        sim.process(saboteur(box))
        box.append(sim.process(sleeper()))
        sim.run()
        assert log == [("failure", 0)]

    def test_monte_carlo_matches_analytic(self):
        """The headline validation: simulated makespan within a few
        percent of Daly's expectation."""
        mtbf = system_mtbf(3 * YEAR, 5_000)
        params = CheckpointParams(300.0, 600.0, mtbf)
        tau = daly_interval(params)
        work = 50 * 3600.0
        analytic = expected_runtime(params, work, tau)
        runs = [
            simulate_checkpoint_run(work, params, tau,
                                    ExponentialFailures(mtbf),
                                    RandomStreams(17), replication)
            for replication in range(24)
        ]
        measured = np.mean([run.makespan for run in runs])
        assert measured == pytest.approx(analytic, rel=0.08)

    def test_no_failures_means_pure_overhead(self):
        """With an astronomically long MTBF the run is work + checkpoints."""
        params = CheckpointParams(10.0, 5.0, 1e15)
        stats = simulate_checkpoint_run(1000.0, params, 100.0,
                                        ExponentialFailures(1e15))
        assert stats.failures == 0
        assert stats.useful_seconds == pytest.approx(1000.0)
        # 10 intervals, checkpoint after all but the last.
        assert stats.makespan == pytest.approx(1000.0 + 9 * 10.0)

    def test_accounting_adds_up(self):
        mtbf = 5_000.0
        params = CheckpointParams(50.0, 100.0, mtbf)
        stats = simulate_checkpoint_run(20_000.0, params, 500.0,
                                        ExponentialFailures(mtbf),
                                        RandomStreams(5))
        total = (stats.useful_seconds + stats.checkpoint_seconds
                 + stats.lost_seconds + stats.restart_seconds)
        assert total == pytest.approx(stats.makespan, rel=1e-9)
        assert stats.useful_seconds == pytest.approx(20_000.0)
        assert 0 < stats.efficiency < 1

    def test_validation(self):
        params = CheckpointParams(1.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            simulate_checkpoint_run(0.0, params, 10.0,
                                    ExponentialFailures(100.0))
        with pytest.raises(ValueError):
            simulate_checkpoint_run(10.0, params, 0.0,
                                    ExponentialFailures(100.0))


class TestRecovery:
    def test_ordering_of_strategies(self):
        outcomes = compare_strategies(
            work_seconds=7 * 86400.0,
            node_mtbf_seconds=3 * YEAR,
            node_count=10_000,
            checkpoint_seconds=300.0,
            restart_seconds=600.0,
        )
        assert (outcomes["none"].efficiency
                < outcomes["checkpoint"].efficiency
                < outcomes["checkpoint+spares"].efficiency)
        # At 10k nodes a week-long job without checkpointing is hopeless.
        assert outcomes["none"].efficiency < 1e-6
        assert outcomes["checkpoint"].efficiency > 0.5

    def test_small_systems_barely_care(self):
        outcomes = compare_strategies(
            work_seconds=86400.0,
            node_mtbf_seconds=3 * YEAR,
            node_count=16,
            checkpoint_seconds=300.0,
            restart_seconds=600.0,
        )
        assert outcomes["checkpoint"].efficiency > 0.97

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_strategies(0.0, YEAR, 10, 1.0, 1.0)
