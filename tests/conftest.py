"""Shared fixtures for the test suite."""

import pytest

from repro.sim import RandomStreams, Simulator
from repro.tech import get_scenario


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams():
    """Deterministic RNG streams (seed 12345)."""
    return RandomStreams(seed=12345)


@pytest.fixture
def nominal():
    """The nominal technology roadmap."""
    return get_scenario("nominal")
