"""Shared fixtures and setup helpers for the test suite.

The plain functions (``small_fat_tree``, ``drive_transfer``,
``make_ring_world``, ``drive_ring_exchange``, ``make_summa_spec``,
``make_stencil_spec``) are the canonical seeded-fabric/comm/campaign
builders; import them with ``from tests.conftest import ...``.  They
used to live in individual test modules, but the observability tests
exercise the same worlds, so one definition now serves everyone.
"""

import pytest

import repro.apps.campaigns  # noqa: F401  (registers the campaign kernels)
from repro.fault import CampaignSpec, LinkFaultSpec, NodeFaultSpec
from repro.messaging import CommConfig
from repro.messaging.program import make_world
from repro.network import (
    FabricFaultPlan,
    FatTreeTopology,
    NetworkUnreachable,
    TransferDropped,
)
from repro.sim import RandomStreams, Simulator
from repro.tech import get_scenario

#: Ranks in the standard ring-exchange world.
RING = 4

#: >= 3 node faults; the latter two land during restarts of the first,
#: which exercises the fault-struck-while-down clamping path too.
CAMPAIGN_NODE_FAULTS = (NodeFaultSpec(time=0.0006, rank=1),
                        NodeFaultSpec(time=0.0021, rank=3),
                        NodeFaultSpec(time=0.0048, rank=0))

#: >= 2 link-down windows: one host link (transfers must retry until it
#: returns) and one spine link (transfers re-route via the other spine).
CAMPAIGN_LINK_FAULTS = (LinkFaultSpec(start=0.0, duration=0.004,
                                      a=("h", 0), b=("s", 0)),
                        LinkFaultSpec(start=0.0, duration=0.02,
                                      a=("s", 0), b=("s", 2)))


def small_fat_tree():
    """4 hosts, 2 per leaf, full bisection: h0,h1 on s0; h2,h3 on s1;
    spines s2, s3."""
    return FatTreeTopology(4, hosts_per_leaf=2, spines=2)


def drive_transfer(sim, fabric, src, dst, nbytes=1024, delay=0.0):
    """Drive one fault-aware transfer to completion; returns outcome or
    the raised fault."""
    out = {}

    def body():
        if delay > 0:
            yield sim.timeout(delay)
        try:
            out["outcome"] = yield from fabric.transfer_ex(src, dst, nbytes)
        except (NetworkUnreachable, TransferDropped) as exc:
            out["error"] = exc

    sim.process(body())
    sim.run()
    return out


def make_ring_world(drop=0.0, seed=0, obs=None, **config_kwargs):
    """A ``RING``-rank world with seeded streams and optional loss."""
    streams = RandomStreams(seed)
    plan = None
    if drop > 0:
        plan = FabricFaultPlan(drop_probability=drop,
                               rng=streams.get("net.loss"))
    config = CommConfig(**config_kwargs) if config_kwargs else CommConfig()
    return make_world(RING, config=config, streams=streams,
                      fault_plan=plan, obs=obs)


def drive_ring_exchange(world, rounds=2):
    """Each rank sends to its right neighbour and receives from its
    left, ``rounds`` times; returns {rank: [payloads]}."""
    got = {rank: [] for rank in range(RING)}

    def body(rank):
        comm = world.communicator(rank)
        for round_no in range(rounds):
            yield from comm.send((round_no, rank), (rank + 1) % RING,
                                 tag=round_no)
            payload = yield from comm.recv((rank - 1) % RING, round_no)
            got[rank].append(payload)

    for rank in range(RING):
        world.sim.process(body(rank))
    world.sim.run()
    return got


def make_summa_spec(**overrides):
    """The standard 4-rank SUMMA campaign spec (3 node + 2 link faults)."""
    base = dict(
        kernel="summa", ranks=4, name="test-summa",
        app_args=(("n", 8),),
        node_faults=CAMPAIGN_NODE_FAULTS, link_faults=CAMPAIGN_LINK_FAULTS,
        restart_seconds=2e-4, checkpoint_write_seconds=1e-4,
        seed=7,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def make_stencil_spec(**overrides):
    """The standard 4-rank stencil2d campaign spec (same fault plan)."""
    base = dict(
        kernel="stencil2d", ranks=4, name="test-stencil2d",
        app_args=(("n", 12), ("iterations", 6)),
        node_faults=CAMPAIGN_NODE_FAULTS, link_faults=CAMPAIGN_LINK_FAULTS,
        restart_seconds=2e-4, checkpoint_write_seconds=1e-4,
        seed=7,
    )
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams():
    """Deterministic RNG streams (seed 12345)."""
    return RandomStreams(seed=12345)


@pytest.fixture
def nominal():
    """The nominal technology roadmap."""
    return get_scenario("nominal")
