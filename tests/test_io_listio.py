"""Noncontiguous (list) I/O through the PFS."""

import pytest

from repro.io import DiskModel, ParallelFileSystem
from repro.network import Fabric, SingleSwitchTopology, get_interconnect
from repro.sim import Simulator


def build(servers=2, stripe=1 << 16, hosts=8):
    sim = Simulator()
    fabric = Fabric(sim, SingleSwitchTopology(hosts),
                    get_interconnect("infiniband_4x"))
    pfs = ParallelFileSystem(sim, fabric,
                             server_hosts=list(range(hosts - servers,
                                                     hosts)),
                             stripe_bytes=stripe)
    return sim, pfs


def strided_regions(count=100, size=4096, stride_factor=10):
    return [(i * stride_factor * size, size) for i in range(count)]


class TestListIo:
    def test_bytes_accounted_identically(self):
        for list_io in (True, False):
            sim, pfs = build()
            regions = strided_regions(50)

            def client():
                total = yield from pfs.write_regions(0, regions,
                                                     list_io=list_io)
                return total

            total = sim.run_process(client())
            assert total == 50 * 4096
            assert pfs.total_bytes_written == 50 * 4096

    def test_list_io_much_faster_than_naive(self):
        """The list-I/O claim: batched noncontiguous access beats
        per-region access by a large factor (seek amortisation +
        request aggregation)."""
        times = {}
        for list_io in (True, False):
            sim, pfs = build()

            def client():
                yield from pfs.write_regions(0, strided_regions(200),
                                             list_io=list_io)
                return sim.now

            times[list_io] = sim.run_process(client())
        assert times[True] < times[False] / 10

    def test_read_regions(self):
        sim, pfs = build()

        def client():
            wrote = yield from pfs.write_regions(0, strided_regions(20))
            read = yield from pfs.read_regions(1, strided_regions(20))
            return wrote, read

        wrote, read = sim.run_process(client())
        assert wrote == read == 20 * 4096
        assert pfs.total_bytes_read == 20 * 4096

    def test_empty_and_zero_regions(self):
        sim, pfs = build()

        def client():
            nothing = yield from pfs.write_regions(0, [])
            zero = yield from pfs.write_regions(0, [(100, 0)])
            return nothing, zero

        assert sim.run_process(client()) == (0, 0)

    def test_contiguous_case_roughly_matches_plain_write(self):
        """One big region through the list path costs about the same as
        the plain write path (no batching advantage to collect)."""
        sim_a, pfs_a = build()

        def plain():
            yield from pfs_a.write(0, 0, 1 << 20)
            return sim_a.now

        plain_time = sim_a.run_process(plain())

        sim_b, pfs_b = build()

        def listed():
            yield from pfs_b.write_regions(0, [(0, 1 << 20)])
            return sim_b.now

        listed_time = sim_b.run_process(listed())
        assert listed_time < plain_time * 1.1

    def test_validation(self):
        sim, pfs = build()

        def bad():
            yield from pfs.write_regions(0, [(-1, 10)])

        with pytest.raises(ValueError):
            sim.run_process(bad())

    def test_gap_widens_with_seekier_disks(self):
        """The list-I/O advantage is seek amortisation: a slower-seeking
        disk widens the naive/batched gap."""
        def gap(seek):
            times = {}
            for list_io in (True, False):
                sim = Simulator()
                fabric = Fabric(sim, SingleSwitchTopology(4),
                                get_interconnect("infiniband_4x"))
                pfs = ParallelFileSystem(
                    sim, fabric, server_hosts=[3],
                    disk=DiskModel(seek_seconds=seek))

                def client():
                    yield from pfs.write_regions(
                        0, strided_regions(50), list_io=list_io)
                    return sim.now

                times[list_io] = sim.run_process(client())
            return times[False] / times[True]

        assert gap(30e-3) > gap(3e-3)
