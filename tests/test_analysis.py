"""Tables, series, statistics, and experiment reports."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ExperimentReport,
    Series,
    Table,
    confidence_interval,
    geometric_mean,
    render_series,
    speedup_curve,
    summarize,
)


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], formats={"value": "{:.2f}"})
        table.add_row(["alpha", 1.5])
        table.add_row(["beta", 22.125])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in text and "22.12" in text
        # All lines equal padded width structure (header, rule, rows).
        assert len(lines) == 4

    def test_title(self):
        table = Table(["x"], title="My Table")
        table.add_row([1])
        assert table.render().startswith("My Table")

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])

    def test_unknown_format_rejected(self):
        with pytest.raises(KeyError):
            Table(["a"], formats={"b": "{}"})

    def test_callable_formats(self):
        table = Table(["v"], formats={"v": lambda value: f"<{value}>"})
        table.add_row([7])
        assert "<7>" in table.render()

    def test_numeric_right_aligned_text_left(self):
        table = Table(["label", "count"])
        table.add_row(["x", 1])
        table.add_row(["longer", 1000])
        lines = table.render().splitlines()
        assert lines[2].startswith("x ")         # text left
        assert lines[2].rstrip().endswith("1")   # number right


class TestSeries:
    def test_add_and_len(self):
        series = Series("s")
        series.add(1, 10)
        series.add(2, 20)
        assert len(series) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", x=[1.0], y=[])

    def test_interpolate(self):
        series = Series("s", x=[0.0, 10.0], y=[0.0, 100.0])
        assert series.interpolate(5.0) == pytest.approx(50.0)

    def test_crossing(self):
        series = Series("s", x=[2002.0, 2004.0, 2006.0], y=[1.0, 4.0, 16.0])
        assert series.crossing(2.5) == pytest.approx(2003.0)

    def test_crossing_never_raises_value_error(self):
        series = Series("s", x=[0.0, 1.0], y=[1.0, 2.0])
        with pytest.raises(ValueError, match="never crosses"):
            series.crossing(100.0)

    def test_render_multiple_series(self):
        a = Series("a", x=[1.0, 2.0], y=[10.0, 20.0])
        b = Series("b", x=[2.0, 3.0], y=[5.0, 6.0])
        text = render_series([a, b], x_label="year")
        assert "year" in text and "a" in text and "b" in text
        assert "nan" in text  # non-overlapping x shows as nan

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series([])


class TestStats:
    def test_summarize_basics(self):
        stats = summarize([10.0, 12.0, 8.0, 11.0, 9.0])
        assert stats.mean == pytest.approx(10.0)
        assert stats.ci_low < 10.0 < stats.ci_high
        assert stats.count == 5

    def test_single_sample_degenerate_interval(self):
        stats = summarize([5.0])
        assert stats.ci_low == stats.ci_high == 5.0

    def test_interval_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        few = summarize(rng.normal(10, 2, size=10))
        many = summarize(rng.normal(10, 2, size=1000))
        assert many.ci_halfwidth < few.ci_halfwidth

    def test_interval_coverage(self):
        """~95 % of intervals from N(0,1) samples should cover 0."""
        rng = np.random.default_rng(42)
        covered = 0
        trials = 300
        for _ in range(trials):
            low, high = confidence_interval(rng.normal(0, 1, size=20))
            covered += low <= 0.0 <= high
        assert covered / trials > 0.9

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_speedup_curve(self):
        speedups = speedup_curve(100.0, [100.0, 50.0, 25.0])
        assert np.allclose(speedups, [1.0, 2.0, 4.0])
        with pytest.raises(ValueError):
            speedup_curve(0.0, [1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mean_within_interval(self, samples):
        stats = summarize(samples)
        assert stats.ci_low <= stats.mean <= stats.ci_high


class TestReport:
    def test_structure(self):
        report = ExperimentReport("E1", "Curves", "clusters track Moore")
        table = Table(["x"])
        table.add_row([1])
        report.add_table(table)
        report.add_series([Series("s", x=[1.0], y=[2.0])], x_label="year")
        report.add_note("shape holds")
        text = report.render()
        assert "E1: Curves" in text
        assert "claim: clusters track Moore" in text
        assert "note: shape holds" in text

    def test_show_prints(self, capsys):
        report = ExperimentReport("E9", "T", "C")
        report.add_text("body")
        returned = report.show()
        captured = capsys.readouterr().out
        assert "E9" in captured
        assert returned in captured + returned  # same text returned
