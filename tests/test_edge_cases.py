"""Cross-cutting edge cases the per-module suites do not reach."""

import numpy as np
import pytest

from repro import format_flops, get_scenario, make_node, run_spmd, SUM
from repro.analysis import Table
from repro.cluster import ClusterSpec, design_cluster
from repro.messaging import ANY_TAG, make_world
from repro.network import Fabric, SingleSwitchTopology, get_interconnect
from repro.sim import Simulator, Store
from repro.units import format_si


class TestEngineEdges:
    def test_run_until_with_max_events_combined(self, sim):
        for _ in range(10):
            sim.timeout(1.0)
        sim.run(until=5.0, max_events=3)
        assert sim.events_executed == 3
        assert sim.now == 1.0

    def test_peek_after_drain(self, sim):
        sim.timeout(1.0)
        sim.run()
        assert sim.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(IndexError):
            sim.step()

    def test_timeout_value_none_by_default(self, sim):
        def body(sim):
            got = yield sim.timeout(1.0)
            return got

        assert sim.run_process(body(sim)) is None

    def test_two_simulators_fully_independent(self):
        first, second = Simulator(), Simulator()
        first.timeout(5.0)
        second.timeout(1.0)
        first.run()
        assert first.now == 5.0
        assert second.now == 0.0


class TestMessagingEdges:
    def test_self_send_self_recv(self):
        """A rank may message itself (local copy path)."""
        def body(comm):
            yield from comm.send("note to self", comm.rank, tag=3)
            back = yield from comm.recv(comm.rank, tag=3)
            return back

        assert run_spmd(2, body).results == ["note to self"] * 2

    def test_zero_length_array_payload(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send(np.array([]), 1)
                return None
            got = yield from comm.recv(0)
            return got.size

        assert run_spmd(2, body).results[1] == 0

    def test_any_tag_with_specific_source(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send("a", 1, tag=10)
                return None
            payload = yield from comm.recv(0, tag=ANY_TAG)
            return payload

        assert run_spmd(2, body).results[1] == "a"

    def test_single_rank_collectives_are_trivial(self):
        def body(comm):
            a = yield from comm.allreduce(7, SUM)
            b = yield from comm.bcast(8, root=0)
            c = yield from comm.gather(9, root=0)
            d = yield from comm.alltoall([10])
            yield from comm.barrier()
            return a, b, c, d

        assert run_spmd(1, body).results == [(7, 8, [9], [10])]

    def test_world_communicator_reuse(self):
        """Multiple communicators for the same rank share mailboxes."""
        world = make_world(2)
        first = world.communicator(0)
        second = world.communicator(0)
        assert first is not second
        assert first.world is second.world


class TestUnitsEdges:
    def test_format_si_negative(self):
        assert format_si(-2.5e9, "FLOPS").startswith("-2.5")

    def test_format_flops_tiny(self):
        assert "e" in format_flops(1e-6)


class TestTableEdges:
    def test_empty_table_renders_header_only(self):
        table = Table(["a", "b"])
        lines = table.render().splitlines()
        assert len(lines) == 2  # header + rule
        assert len(table) == 0

    def test_mixed_type_column_left_aligns(self):
        table = Table(["v"])
        table.add_row([1])
        table.add_row(["text"])
        # The column saw a non-numeric value: it left-aligns.
        assert table.render().splitlines()[-1].startswith("text")


class TestClusterEdges:
    def test_spec_str_mentions_parts(self, nominal):
        spec = design_cluster("mymachine", nominal, 2005, 10,
                              "blade", "infiniband_4x")
        text = str(spec)
        assert "mymachine" in text
        assert "blade" in text
        assert "infiniband_4x" in text

    def test_single_node_cluster(self, nominal):
        node = make_node("conventional", nominal, 2005)
        spec = ClusterSpec("solo", node, 1,
                           get_interconnect("gigabit_ethernet"), 2005)
        assert spec.peak_flops == node.peak_flops


class TestFabricEdges:
    def test_transfer_record_duration(self):
        sim = Simulator()
        fabric = Fabric(sim, SingleSwitchTopology(2),
                        get_interconnect("infiniband_4x"),
                        record_transfers=True)

        def body():
            yield from fabric.transfer(0, 1, 1000)
            return None

        sim.run_process(body())
        record = fabric.records[0]
        assert record.duration == pytest.approx(record.end - record.start)
        assert record.duration > 0

    def test_store_len_and_repr(self, sim):
        store = Store(sim, name="box")

        def body(sim, store):
            yield store.put(1)
            yield store.put(2)

        sim.process(body(sim, store))
        sim.run()
        assert len(store) == 2
        assert "box" in repr(store)


class TestScenarioEdges:
    def test_scenarios_are_distinct_objects(self):
        assert get_scenario("nominal") is get_scenario("nominal")
        assert get_scenario("nominal") is not get_scenario("aggressive")

    def test_fractional_years_supported(self, nominal):
        mid = nominal.value("node_peak_flops", 2005.5)
        low = nominal.value("node_peak_flops", 2005.0)
        high = nominal.value("node_peak_flops", 2006.0)
        assert low < mid < high
