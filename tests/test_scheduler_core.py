"""Jobs, workload generator, and the free-node profile."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import Job, JobRecord, WorkloadGenerator, WorkloadParams
from repro.scheduler.profile import FreeNodeProfile
from repro.sim import RandomStreams


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job(1, 0.0, nodes=0, runtime=10.0, estimate=10.0)
        with pytest.raises(ValueError):
            Job(1, 0.0, nodes=1, runtime=0.0, estimate=10.0)
        with pytest.raises(ValueError):
            Job(1, -1.0, nodes=1, runtime=1.0, estimate=1.0)

    def test_record_metrics(self):
        job = Job(1, submit_time=100.0, nodes=4, runtime=50.0, estimate=60.0)
        record = JobRecord(job=job, start_time=130.0, end_time=180.0)
        assert record.wait_time == pytest.approx(30.0)
        assert record.response_time == pytest.approx(80.0)
        assert record.bounded_slowdown() == pytest.approx(80.0 / 50.0)

    def test_bounded_slowdown_floors_tiny_jobs(self):
        job = Job(1, submit_time=0.0, nodes=1, runtime=1.0, estimate=1.0)
        record = JobRecord(job=job, start_time=0.0, end_time=1.0)
        # Response 1s over threshold 10s would be 0.1; floored to 1.
        assert record.bounded_slowdown() == 1.0

    def test_unstarted_record_raises(self):
        record = JobRecord(job=Job(1, 0.0, 1, 1.0, 1.0))
        with pytest.raises(RuntimeError):
            record.wait_time


class TestWorkloadGenerator:
    def make(self, **overrides):
        params = WorkloadParams(**{**dict(max_nodes=128, offered_load=0.7),
                                   **overrides})
        return WorkloadGenerator(params, RandomStreams(seed=99))

    def test_jobs_sorted_and_valid(self):
        jobs = self.make().generate(500)
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)
        assert all(1 <= job.nodes <= 128 for job in jobs)
        assert all(job.runtime >= 1.0 for job in jobs)
        assert all(job.estimate >= job.runtime * (1 - 1e-12) or
                   job.estimate == pytest.approx(job.runtime)
                   for job in jobs)

    def test_estimates_never_below_actual(self):
        generator = self.make()
        runtimes = generator.sample_runtimes(5000)
        estimates = generator.sample_estimates(runtimes)
        assert np.all(estimates >= runtimes * (1 - 1e-12))

    def test_power_of_two_bias(self):
        generator = self.make(power_of_two_bias=1.0)
        widths = generator.sample_widths(2000)
        assert all((w & (w - 1)) == 0 for w in widths)

    def test_no_bias_when_zero(self):
        generator = self.make(power_of_two_bias=0.0)
        widths = generator.sample_widths(5000)
        non_pow2 = sum(1 for w in widths if w & (w - 1))
        assert non_pow2 > 1000

    def test_offered_load_realised(self):
        """Generated work per unit time approximates the target rho."""
        generator = self.make(offered_load=0.6)
        jobs = generator.generate(8000)
        horizon = jobs[-1].submit_time - jobs[0].submit_time
        work = sum(job.node_seconds for job in jobs)
        realised = work / (horizon * 128)
        assert realised == pytest.approx(0.6, rel=0.2)

    def test_reproducible(self):
        a = self.make().generate(50)
        b = self.make().generate(50)
        assert [(j.submit_time, j.nodes, j.runtime) for j in a] == \
               [(j.submit_time, j.nodes, j.runtime) for j in b]

    def test_load_changes_arrival_rate_only(self):
        light = WorkloadGenerator(WorkloadParams(offered_load=0.3),
                                  RandomStreams(seed=5)).generate(100)
        heavy = WorkloadGenerator(WorkloadParams(offered_load=0.9),
                                  RandomStreams(seed=5)).generate(100)
        # Same seeds -> same widths/runtimes, compressed arrivals.
        assert [j.nodes for j in light] == [j.nodes for j in heavy]
        assert heavy[-1].submit_time < light[-1].submit_time

    def test_params_validated(self):
        with pytest.raises(ValueError):
            WorkloadParams(max_nodes=0)
        with pytest.raises(ValueError):
            WorkloadParams(overestimate_max=0.5)
        with pytest.raises(ValueError):
            WorkloadParams(power_of_two_bias=1.5)


class TestFreeNodeProfile:
    def test_initial_free_accounts_running(self):
        profile = FreeNodeProfile(now=0.0, total_nodes=10,
                                  running=[(5.0, 4), (8.0, 2)])
        assert profile.free_at(0.0) == 4
        assert profile.free_at(5.0) == 8
        assert profile.free_at(9.0) == 10

    def test_overrun_jobs_clamped_to_now(self):
        profile = FreeNodeProfile(now=10.0, total_nodes=4,
                                  running=[(5.0, 2)])  # overran estimate
        assert profile.free_at(10.0) == 2

    def test_earliest_start_immediate_fit(self):
        profile = FreeNodeProfile(0.0, 10, running=[(5.0, 4)])
        assert profile.earliest_start(6, 100.0) == 0.0

    def test_earliest_start_waits_for_release(self):
        profile = FreeNodeProfile(0.0, 10, running=[(5.0, 8)])
        assert profile.earliest_start(6, 100.0) == 5.0

    def test_earliest_start_skips_short_windows(self):
        """A gap shorter than the duration must be skipped."""
        profile = FreeNodeProfile(0.0, 10, running=[(5.0, 8)])
        profile.reserve(start=6.0, duration=10.0, width=9)
        # Free: [0,5):2, [5,6):10, [6,16):1, [16,inf):10.
        # Width 3 fits in [5,6) only for <=1s; a 2s job must wait to 16.
        assert profile.earliest_start(3, 2.0) == 16.0
        assert profile.earliest_start(3, 1.0) == 5.0
        # Width 2 fits immediately at t=0 for any short duration.
        assert profile.earliest_start(2, 2.0) == 0.0

    def test_reserve_rejects_overbooking(self):
        profile = FreeNodeProfile(0.0, 4, running=[(5.0, 4)])
        with pytest.raises(ValueError, match="overbooked"):
            profile.reserve(start=0.0, duration=2.0, width=1)

    def test_oversized_request_rejected(self):
        profile = FreeNodeProfile(0.0, 4, running=[])
        with pytest.raises(ValueError):
            profile.earliest_start(5, 1.0)

    def test_running_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            FreeNodeProfile(0.0, 4, running=[(1.0, 5)])

    @given(
        st.integers(min_value=1, max_value=16),
        st.lists(st.tuples(st.floats(0.1, 50.0), st.integers(1, 4)),
                 max_size=8),
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_earliest_start_is_feasible(self, total, running, width, duration):
        in_use = sum(nodes for _end, nodes in running)
        if in_use > total or width > total:
            return
        profile = FreeNodeProfile(0.0, total, running)
        start = profile.earliest_start(width, duration)
        # The returned window must actually fit: reserving it succeeds.
        profile.reserve(start, duration, width)
        # And free counts never go negative anywhere.
        assert all(free >= 0 for _t, free in profile.segments())
