"""Metrics registry unit tests: identity, iteration, snapshot/reset."""

import pytest

from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    MetricsRegistry,
)


class TestIdentity:
    def test_create_or_fetch_returns_the_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_label_order_is_irrelevant_to_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", rank="0", op="send")
        b = registry.counter("ops", op="send", rank="0")
        assert a is b
        assert a.key == ("ops", (("op", "send"), ("rank", "0")))

    def test_different_labels_are_different_series(self):
        registry = MetricsRegistry()
        registry.counter("ops", rank="0").inc()
        registry.counter("ops", rank="1").inc(2.0)
        values = {c.key[1]: c.value for c in registry.counters()}
        assert values == {(("rank", "0"),): 1.0, (("rank", "1"),): 2.0}

    def test_kinds_do_not_collide(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(5.0)
        registry.histogram("x").observe(1.0)
        assert len(registry) == 3


class TestInstruments:
    def test_counter_rejects_decrement(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("wait")
        assert hist.summary() == {"count": 0.0, "sum": 0.0}
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.summary() == {"count": 3.0, "sum": 6.0, "min": 1.0,
                                  "mean": 2.0, "max": 3.0}


class TestIteration:
    def test_sorted_by_key_not_creation_order(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa", rank="1").inc()
        registry.counter("aa", rank="0").inc()
        keys = [c.key for c in registry.counters()]
        assert keys == sorted(keys)
        assert keys[0][0] == "aa"


class TestSnapshotReset:
    def test_snapshot_is_an_immutable_copy(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc(3.0)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        counter.inc()
        registry.histogram("h").observe(2.0)
        assert snap.counters[counter.key] == 3.0
        assert snap.histograms[registry.histogram("h").key] == (1.0,)

    def test_reset_zeroes_but_keeps_handles(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        counter.inc(5.0)
        gauge.set(2.0)
        hist.observe(1.0)
        registry.reset()
        assert counter.value == 0.0 and gauge.value == 0.0
        assert hist.samples == []
        counter.inc()  # the pre-reset handle still feeds the registry
        assert next(iter(registry.counters())).value == 1.0


class TestNullVariants:
    def test_null_registry_hands_out_shared_noops(self):
        counter = NULL_REGISTRY.counter("x", rank="0")
        counter.inc(100.0)
        assert counter.value == 0.0
        assert counter is NULL_REGISTRY.counter("y")
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(9.0)
        gauge.add(1.0)
        assert gauge.value == 0.0
        hist = NULL_REGISTRY.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0

    def test_null_obs_is_disabled_and_silent(self):
        assert not NULL_OBS.enabled
        span = NULL_OBS.span("anything", a=1)
        assert not span  # falsy: callers may skip attr computation
        with span.set(b=2):
            pass
        NULL_OBS.instant("x")
        NULL_OBS.add_span("y", 0.0, 1.0)
        assert NULL_OBS.spans == [] and NULL_OBS.instants == []
