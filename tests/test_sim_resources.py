"""Resource and Store queueing semantics."""

import pytest

from repro.sim import Resource, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_within_capacity_is_immediate(self, sim):
        resource = Resource(sim, capacity=2)

        def body(sim, resource):
            yield resource.request()
            return sim.now

        assert sim.run_process(body(sim, resource)) == 0.0

    def test_fifo_over_capacity(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def user(sim, resource, name, hold):
            yield resource.request()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.process(user(sim, resource, "first", 2.0))
        sim.process(user(sim, resource, "second", 1.0))
        sim.process(user(sim, resource, "third", 1.0))
        sim.run()
        assert order == [("first", 0.0), ("second", 2.0), ("third", 3.0)]

    def test_release_without_request_rejected(self, sim):
        resource = Resource(sim)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_release_hands_slot_directly(self, sim):
        resource = Resource(sim, capacity=1)

        def holder(sim, resource):
            yield resource.request()
            yield sim.timeout(1)
            resource.release()

        def waiter(sim, resource):
            yield resource.request()
            in_use = resource.in_use
            resource.release()
            return in_use

        sim.process(holder(sim, resource))
        waiter_proc = sim.process(waiter(sim, resource))
        sim.run()
        # Slot moved holder -> waiter without dipping to zero.
        assert waiter_proc.value == 1

    def test_queue_length_tracks_waiters(self, sim):
        resource = Resource(sim, capacity=1)

        def user(sim, resource):
            yield resource.request()
            yield sim.timeout(5)
            resource.release()

        for _ in range(4):
            sim.process(user(sim, resource))
        sim.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 3


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def producer(sim, store):
            yield store.put("item")

        def consumer(sim, store):
            item = yield store.get()
            return item

        sim.process(producer(sim, store))
        consumer_proc = sim.process(consumer(sim, store))
        sim.run()
        assert consumer_proc.value == "item"

    def test_get_parks_until_put(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            item = yield store.get()
            return item, sim.now

        def producer(sim, store):
            yield sim.timeout(5)
            yield store.put("late")

        consumer_proc = sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert consumer_proc.value == ("late", 5.0)

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        received = []

        def producer(sim, store):
            for index in range(5):
                yield store.put(index)

        def consumer(sim, store):
            for _ in range(5):
                item = yield store.get()
                received.append(item)

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_capacity_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer(sim, store):
            for index in range(2):
                yield store.put(index)
                times.append(sim.now)

        def consumer(sim, store):
            yield sim.timeout(3)
            yield store.get()

        sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        sim.run()
        # Second put only completed once the consumer drained one item.
        assert times[0] == 0.0
        assert times[1] == pytest.approx(3.0)

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_filtered_get_skips_non_matching(self, sim):
        store = Store(sim)

        def producer(sim, store):
            yield store.put(("b", 1))
            yield store.put(("a", 2))

        def consumer(sim, store):
            item = yield store.get(lambda i: i[0] == "a")
            return item

        sim.process(producer(sim, store))
        consumer_proc = sim.process(consumer(sim, store))
        sim.run()
        assert consumer_proc.value == ("a", 2)
        # The non-matching item stays queued.
        assert len(store) == 1

    def test_filtered_get_preserves_order_for_others(self, sim):
        store = Store(sim)
        got = []

        def producer(sim, store):
            for item in [("x", 1), ("y", 2), ("x", 3)]:
                yield store.put(item)

        def picky(sim, store):
            item = yield store.get(lambda i: i[0] == "y")
            got.append(("picky", item))

        def greedy(sim, store):
            for _ in range(2):
                item = yield store.get()
                got.append(("greedy", item))

        sim.process(producer(sim, store))
        sim.process(picky(sim, store))
        sim.process(greedy(sim, store))
        sim.run()
        assert ("picky", ("y", 2)) in got
        greedy_items = [item for who, item in got if who == "greedy"]
        assert greedy_items == [("x", 1), ("x", 3)]

    def test_waiting_counters(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            yield store.get()

        sim.process(consumer(sim, store))
        sim.run()  # drains: consumer parked
        assert store.waiting_getters == 1
        assert store.waiting_putters == 0
