"""Job lifecycle state machine and submission-record validation."""

import pytest

from repro.jobs import (
    TERMINAL_STATES,
    JobRequest,
    JobState,
    check_transition,
)


class TestTransitions:
    def test_happy_path_is_legal(self):
        path = [JobState.SUBMITTED, JobState.LEASED, JobState.RUNNING,
                JobState.COMPLETED]
        for old, new in zip(path, path[1:]):
            check_transition(old, new)

    def test_requeue_and_regrant_are_legal(self):
        check_transition(JobState.LEASED, JobState.REQUEUED)
        check_transition(JobState.RUNNING, JobState.REQUEUED)
        check_transition(JobState.REQUEUED, JobState.LEASED)

    def test_late_write_under_current_token_is_legal(self):
        # REQUEUED -> COMPLETED: expired-but-not-regranted worker's
        # token is still the highest, so its late write is accepted.
        check_transition(JobState.REQUEUED, JobState.COMPLETED)

    def test_requeued_can_fail_out(self):
        check_transition(JobState.REQUEUED, JobState.FAILED)

    def test_effect_can_beat_the_start_report(self):
        check_transition(JobState.LEASED, JobState.COMPLETED)

    @pytest.mark.parametrize("old,new", [
        (JobState.SUBMITTED, JobState.RUNNING),
        (JobState.SUBMITTED, JobState.COMPLETED),
        (JobState.SUBMITTED, JobState.FAILED),
        (JobState.LEASED, JobState.FAILED),
        (JobState.RUNNING, JobState.LEASED),
        (JobState.RUNNING, JobState.FAILED),
        (JobState.COMPLETED, JobState.LEASED),
        (JobState.COMPLETED, JobState.FAILED),
        (JobState.FAILED, JobState.LEASED),
        (JobState.FAILED, JobState.COMPLETED),
    ])
    def test_illegal_transitions_raise(self, old, new):
        with pytest.raises(ValueError, match="illegal job transition"):
            check_transition(old, new)

    def test_terminal_states_have_no_exits(self):
        for terminal in TERMINAL_STATES:
            for target in JobState:
                with pytest.raises(ValueError):
                    check_transition(terminal, target)


class TestJobRequest:
    def test_identity_is_tenant_and_key(self):
        request = JobRequest(tenant="acme", key="run-1")
        assert request.identity == ("acme", "run-1")

    def test_defaults(self):
        request = JobRequest(tenant="t", key="k")
        assert request.kernel == "digest"
        assert request.payload == ()
        assert request.work_seconds > 0

    @pytest.mark.parametrize("kwargs", [
        dict(tenant="", key="k"),
        dict(tenant="t", key=""),
        dict(tenant="t", key="k", work_seconds=0.0),
        dict(tenant="t", key="k", work_seconds=-1.0),
        dict(tenant="t", key="k", submit_time=-0.5),
    ])
    def test_invalid_requests_raise(self, kwargs):
        with pytest.raises(ValueError):
            JobRequest(**kwargs)

    def test_requests_are_frozen(self):
        request = JobRequest(tenant="t", key="k")
        with pytest.raises(AttributeError):
            request.tenant = "other"
