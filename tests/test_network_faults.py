"""Fabric fault injection: down windows, degraded routing, loss."""

import pytest

from repro.network import (
    DownWindow,
    Fabric,
    FabricFaultPlan,
    NetworkUnreachable,
    TransferDropped,
    canonical_link,
    get_interconnect,
)
from repro.sim import RandomStreams, Simulator
from tests.conftest import drive_transfer as run_transfer
from tests.conftest import small_fat_tree as fat_tree


class TestCanonicalLink:
    def test_orders_endpoints(self):
        assert canonical_link(("s", 1), ("h", 0)) == (("h", 0), ("s", 1))
        assert canonical_link(("h", 0), ("s", 1)) == (("h", 0), ("s", 1))


class TestRouteAvoiding:
    def test_no_faults_matches_normal_route(self):
        topo = fat_tree()
        assert topo.route_avoiding(0, 2) == topo.route(0, 2)

    def test_reroutes_around_down_spine_link(self):
        topo = fat_tree()
        normal = topo.route(0, 2)
        spine = normal[1][1]  # the spine the default route uses
        down = frozenset({canonical_link(("s", 0), spine)})
        degraded = topo.route_avoiding(0, 2, down_links=down)
        assert degraded is not None
        assert all(canonical_link(a, b) not in down for a, b in degraded)
        assert degraded[0] == (("h", 0), ("s", 0))  # leaf link intact

    def test_reroutes_around_down_spine_node(self):
        topo = fat_tree()
        spine = topo.route(0, 2)[1][1]
        degraded = topo.route_avoiding(0, 2,
                                       down_nodes=frozenset({spine}))
        assert degraded is not None
        assert all(spine not in edge for edge in degraded)

    def test_down_host_link_is_unreachable(self):
        topo = fat_tree()
        down = frozenset({canonical_link(("h", 0), ("s", 0))})
        assert topo.route_avoiding(0, 2, down_links=down) is None

    def test_down_leaf_switch_is_unreachable(self):
        topo = fat_tree()
        leaf = topo.route(0, 2)[0][1]
        assert topo.route_avoiding(0, 2,
                                   down_nodes=frozenset({leaf})) is None

    def test_intra_leaf_route_ignores_spine_faults(self):
        topo = fat_tree()
        down = frozenset({("s", 2), ("s", 3)})  # both spines dead
        route = topo.route_avoiding(0, 1, down_nodes=down)
        assert route is not None and len(route) == 2


class TestDownWindow:
    def test_half_open_semantics(self):
        window = DownWindow(1.0, 2.0)
        assert not window.active_at(0.5)
        assert window.active_at(1.0)
        assert window.active_at(1.999)
        assert not window.active_at(2.0)

    def test_overlaps(self):
        window = DownWindow(1.0, 2.0)
        assert window.overlaps(0.0, 1.5)
        assert window.overlaps(1.5, 10.0)
        assert not window.overlaps(0.0, 1.0)
        assert not window.overlaps(2.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DownWindow(2.0, 1.0)
        with pytest.raises(ValueError):
            DownWindow(-1.0, 1.0)


class TestFabricFaultPlan:
    def test_probability_validation(self):
        rng = RandomStreams(0).get("t")
        with pytest.raises(ValueError):
            FabricFaultPlan(drop_probability=1.5, rng=rng)
        with pytest.raises(ValueError):
            FabricFaultPlan(drop_probability=0.6,
                            corrupt_probability=0.6, rng=rng)
        with pytest.raises(ValueError):
            FabricFaultPlan(drop_probability=0.1)  # rng required

    def test_down_queries(self):
        plan = (FabricFaultPlan()
                .link_down(("h", 0), ("s", 0), 1.0, 2.0)
                .node_down(("s", 2), 5.0, 6.0))
        assert plan.down_links_at(1.5) == frozenset(
            {canonical_link(("h", 0), ("s", 0))})
        assert plan.down_links_at(3.0) == frozenset()
        assert plan.down_nodes_at(5.0) == frozenset({("s", 2)})
        assert plan.link_outages == 1


class TestTransferFaults:
    def make_fabric(self, sim, plan):
        return Fabric(sim, fat_tree(), get_interconnect("gigabit_ethernet"),
                      fault_plan=plan)

    def test_clean_plan_matches_plain_transfer(self):
        sim_a, sim_b = Simulator(), Simulator()
        plain = Fabric(sim_a, fat_tree(),
                       get_interconnect("gigabit_ethernet"))
        faulty = self.make_fabric(sim_b, FabricFaultPlan())
        out = {}

        def body(fabric, key, sim):
            out[key] = yield from fabric.transfer(0, 2, 4096)

        sim_a.process(body(plain, "plain", sim_a))
        sim_b.process(body(faulty, "faulty", sim_b))
        sim_a.run()
        sim_b.run()
        assert out["plain"] == pytest.approx(out["faulty"])

    def test_reroute_around_down_spine(self):
        sim = Simulator()
        topo = fat_tree()
        spine = topo.route(0, 2)[1][1]
        plan = FabricFaultPlan().node_down(spine, 0.0, 1.0)
        fabric = self.make_fabric(sim, plan)
        out = run_transfer(sim, fabric, 0, 2)
        assert out["outcome"].rerouted
        assert plan.reroutes == 1

    def test_unreachable_when_host_link_down(self):
        sim = Simulator()
        plan = FabricFaultPlan().link_down(("h", 0), ("s", 0), 0.0, 1.0)
        fabric = self.make_fabric(sim, plan)
        out = run_transfer(sim, fabric, 0, 2)
        assert isinstance(out["error"], NetworkUnreachable)
        assert plan.unreachable == 1

    def test_mid_flight_outage_drops_transfer(self):
        """A link that dies while the message is serializing onto the
        route loses the message (it departed before the outage)."""
        sim = Simulator()
        plan = FabricFaultPlan().link_down(("h", 0), ("s", 0),
                                           1e-3, 2e-3)
        fabric = self.make_fabric(sim, plan)
        # 1 MiB at ~1 Gb/s serializes for ~8 ms: in flight at t=1 ms.
        out = run_transfer(sim, fabric, 0, 2, nbytes=1 << 20)
        assert isinstance(out["error"], TransferDropped)
        assert plan.drops == 1

    def test_random_drop(self):
        sim = Simulator()
        plan = FabricFaultPlan(drop_probability=1.0,
                               rng=RandomStreams(0).get("net"))
        fabric = self.make_fabric(sim, plan)
        out = run_transfer(sim, fabric, 0, 2)
        assert isinstance(out["error"], TransferDropped)
        assert plan.drops == 1

    def test_random_corruption_flagged_not_raised(self):
        sim = Simulator()
        plan = FabricFaultPlan(corrupt_probability=1.0,
                               rng=RandomStreams(0).get("net"))
        fabric = self.make_fabric(sim, plan)
        out = run_transfer(sim, fabric, 0, 2)
        assert out["outcome"].corrupted
        assert plan.corruptions == 1

    def test_self_transfer_immune_to_fabric_faults(self):
        sim = Simulator()
        plan = FabricFaultPlan(drop_probability=1.0,
                               rng=RandomStreams(0).get("net"))
        fabric = self.make_fabric(sim, plan)
        out = run_transfer(sim, fabric, 1, 1)
        assert out["outcome"].hops == 0
        assert not out["outcome"].corrupted
