"""Fault-tolerant messaging: reliable delivery, timeouts, RankFailure."""

import pytest

from repro.messaging import (
    CommConfig,
    CommTimeout,
    RankFailure,
)
from repro.messaging.program import make_world
from repro.network import FabricFaultPlan
from repro.sim import RandomStreams
from tests.conftest import RING
from tests.conftest import drive_ring_exchange as run_ring_exchange
from tests.conftest import make_ring_world as ring_world


class TestReliableDelivery:
    def test_exact_delivery_under_heavy_loss(self):
        world = ring_world(drop=0.4, seed=3, reliable=True)
        got = run_ring_exchange(world, rounds=3)
        for rank in range(RING):
            assert got[rank] == [(r, (rank - 1) % RING) for r in range(3)]
        assert world.stats.retries > 0
        # Lost acks force retransmits of already-delivered messages;
        # the dedup table absorbs them without duplicating payloads.
        assert world.stats.duplicates > 0
        assert world.stats.delivery_failures == 0

    def test_lossless_reliable_sends_one_ack_per_message(self):
        world = ring_world(reliable=True)
        run_ring_exchange(world, rounds=2)
        assert world.stats.acks == RING * 2
        assert world.stats.retries == 0
        assert world.stats.duplicates == 0

    def test_same_seed_reproduces_stats_exactly(self):
        first = ring_world(drop=0.4, seed=3, reliable=True)
        second = ring_world(drop=0.4, seed=3, reliable=True)
        run_ring_exchange(first, rounds=3)
        run_ring_exchange(second, rounds=3)
        assert first.stats.snapshot() == second.stats.snapshot()
        assert first.sim.now == second.sim.now

    def test_retry_budget_exhaustion_is_counted(self):
        """With 100% loss nothing ever arrives: every send burns its
        retry budget and records a delivery failure."""
        streams = RandomStreams(0)
        plan = FabricFaultPlan(drop_probability=1.0,
                               rng=streams.get("net.loss"))
        config = CommConfig(reliable=True, max_retries=2)
        world = make_world(2, config=config, streams=streams,
                           fault_plan=plan)
        comm = world.communicator(0)

        def body():
            yield from comm.send("doomed", 1, tag=0)

        world.sim.process(body())
        world.sim.run()
        assert world.stats.delivery_failures == 1
        assert world.stats.retries == 2


class TestBackoff:
    def test_deterministic_and_bounded(self):
        config = CommConfig(reliable=True, backoff_base=1e-4,
                            backoff_factor=2.0, backoff_cap=1e-3,
                            jitter=0.25)
        one = make_world(2, config=config, streams=RandomStreams(5))
        two = make_world(2, config=config, streams=RandomStreams(5))
        seq_one = [one.retry_backoff(a) for a in range(1, 8)]
        seq_two = [two.retry_backoff(a) for a in range(1, 8)]
        assert seq_one == seq_two
        for attempt, backoff in enumerate(seq_one, start=1):
            base = min(1e-3, 1e-4 * 2.0 ** (attempt - 1))
            assert base <= backoff <= base * 1.25

    def test_no_streams_means_no_jitter(self):
        config = CommConfig(reliable=True, backoff_base=1e-4,
                            backoff_factor=2.0, backoff_cap=1e-3)
        world = make_world(2, config=config)
        assert world.retry_backoff(1) == 1e-4
        assert world.retry_backoff(4) == 8e-4
        assert world.retry_backoff(10) == 1e-3  # capped

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CommConfig(max_retries=-1)
        with pytest.raises(ValueError):
            CommConfig(backoff_base=0.0)
        with pytest.raises(ValueError):
            CommConfig(backoff_cap=1e-6, backoff_base=1e-3)
        with pytest.raises(ValueError):
            CommConfig(jitter=-0.1)
        with pytest.raises(ValueError):
            CommConfig(op_timeout=0.0)

    def test_default_config_is_inactive(self):
        assert not CommConfig().active
        assert CommConfig(reliable=True).active
        assert CommConfig(fault_aware=True).active
        assert CommConfig(op_timeout=1.0).active


class TestTimeouts:
    def test_recv_timeout_raises(self):
        world = make_world(2)
        comm = world.communicator(0)
        outcome = {}

        def body():
            try:
                yield from comm.recv(1, 0, timeout=1e-3)
            except CommTimeout:
                outcome["raised_at"] = world.sim.now

        world.sim.process(body())
        world.sim.run()
        assert outcome["raised_at"] == pytest.approx(1e-3)
        assert world.stats.op_timeouts == 1

    def test_ssend_timeout_without_matching_recv(self):
        world = make_world(2)
        comm = world.communicator(0)
        outcome = {}

        def body():
            try:
                yield from comm.ssend("unmatched", 1, timeout=1e-3)
            except CommTimeout:
                outcome["raised"] = True

        world.sim.process(body())
        world.sim.run()
        assert outcome.get("raised")


class TestRankFailures:
    def fault_aware_world(self):
        return make_world(RING, config=CommConfig(fault_aware=True),
                          streams=RandomStreams(0))

    def test_blocked_recv_raises_on_peer_death(self):
        world = self.fault_aware_world()
        outcome = {}

        def receiver():
            comm = world.communicator(0)
            try:
                yield from comm.recv(1, 0)
            except RankFailure as failure:
                outcome["ranks"] = failure.ranks
                outcome["time"] = world.sim.now

        def reaper():
            yield world.sim.timeout(1e-4)
            world.fail_rank(1)

        world.sim.process(receiver())
        world.sim.process(reaper())
        world.sim.run()
        assert outcome["ranks"] == frozenset({1})
        assert outcome["time"] == pytest.approx(1e-4)

    def test_queued_predeath_message_still_deliverable(self):
        world = self.fault_aware_world()
        outcome = {}

        def sender():
            comm = world.communicator(1)
            yield from comm.send("last words", 0, tag=7)

        def reaper():
            yield world.sim.timeout(1e-2)  # after delivery completes
            world.fail_rank(1)

        def receiver():
            comm = world.communicator(0)
            yield world.sim.timeout(2e-2)  # recv only after the death
            outcome["payload"] = yield from comm.recv(1, 7)

        world.sim.process(sender())
        world.sim.process(reaper())
        world.sim.process(receiver())
        world.sim.run()
        assert outcome["payload"] == "last words"

    def test_send_to_dead_peer_raises(self):
        world = self.fault_aware_world()
        world.fail_rank(1)
        outcome = {}

        def body():
            comm = world.communicator(0)
            try:
                yield from comm.send("x", 1)
            except RankFailure as failure:
                outcome["ranks"] = failure.ranks

        world.sim.process(body())
        world.sim.run()
        assert outcome["ranks"] == frozenset({1})

    def test_collective_fails_fast_instead_of_hanging(self):
        world = self.fault_aware_world()
        outcome = {}

        def survivor(rank):
            comm = world.communicator(rank)
            yield world.sim.timeout(1e-3)  # rank 2 is already dead
            try:
                yield from comm.barrier()
            except RankFailure as failure:
                outcome[rank] = failure.ranks

        def reaper():
            yield world.sim.timeout(1e-4)
            world.fail_rank(2)

        for rank in (0, 1, 3):
            world.sim.process(survivor(rank))
        world.sim.process(reaper())
        world.sim.run()
        assert outcome == {0: frozenset({2}),
                           1: frozenset({2}),
                           3: frozenset({2})}

    def test_fail_rank_bookkeeping(self):
        world = self.fault_aware_world()
        with pytest.raises(IndexError):
            world.fail_rank(99)
        world.fail_rank(1)
        world.fail_rank(1)  # idempotent
        assert world.failed == {1}
