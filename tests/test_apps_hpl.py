"""The HPL analytic model: efficiency shapes and Top500-style sanity."""

import pytest

from repro.apps import HplModel
from repro.cluster import design_cluster


@pytest.fixture
def cluster_2005(nominal):
    return design_cluster("c", nominal, 2005, 1024, "conventional",
                          "infiniband_4x")


class TestHplModel:
    def test_efficiency_in_published_band(self, cluster_2005):
        """Commodity systems of the era ran HPL at ~50-85 % of peak."""
        estimate = HplModel().estimate(cluster_2005)
        assert 0.5 < estimate.efficiency < 0.85

    def test_problem_size_fills_memory(self, cluster_2005):
        model = HplModel(memory_fill=0.8)
        n = model.problem_size(cluster_2005)
        assert 8 * n * n <= 0.8 * cluster_2005.memory_bytes
        assert 8 * (n + 1) ** 2 > 0.8 * cluster_2005.memory_bytes * 0.99

    def test_bigger_problem_higher_efficiency(self, cluster_2005):
        model = HplModel()
        full = model.estimate(cluster_2005)
        small = model.estimate(cluster_2005,
                               problem_size=full.problem_size // 8)
        assert small.efficiency < full.efficiency

    def test_better_network_higher_rmax(self, nominal):
        model = HplModel()
        slow = model.estimate(design_cluster(
            "s", nominal, 2005, 1024, "conventional", "gigabit_ethernet"))
        fast = model.estimate(design_cluster(
            "f", nominal, 2005, 1024, "conventional", "infiniband_4x"))
        assert fast.rmax_flops > slow.rmax_flops

    def test_grid_is_near_square_factorisation(self):
        model = HplModel()
        for count in (1024, 1000, 36, 17):
            p, q = model.process_grid(count)
            assert p * q == count
            assert p <= q

    def test_rmax_below_rpeak_always(self, cluster_2005):
        estimate = HplModel().estimate(cluster_2005)
        assert estimate.rmax_flops < estimate.rpeak_flops

    def test_validation(self, cluster_2005):
        with pytest.raises(ValueError):
            HplModel(sustained_fraction=0.0)
        with pytest.raises(ValueError):
            HplModel(memory_fill=2.0)
        with pytest.raises(ValueError):
            HplModel().estimate(cluster_2005, problem_size=0)

    def test_rmax_grows_with_scale(self, nominal):
        model = HplModel()
        small = model.estimate(design_cluster(
            "a", nominal, 2005, 256, "conventional", "infiniband_4x"))
        large = model.estimate(design_cluster(
            "b", nominal, 2005, 4096, "conventional", "infiniband_4x"))
        assert large.rmax_flops > 8 * small.rmax_flops
