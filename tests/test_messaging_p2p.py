"""Point-to-point messaging semantics."""

import numpy as np
import pytest

from repro.messaging import ANY_SOURCE, ANY_TAG, payload_nbytes, run_spmd
from repro.messaging.message import ENVELOPE_BYTES
from repro.sim.engine import SimulationError


class TestSendRecv:
    def test_object_round_trip(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send({"a": 7, "b": [1, 2]}, 1, tag=5)
                return None
            payload = yield from comm.recv(0, tag=5)
            return payload

        result = run_spmd(2, body)
        assert result.results[1] == {"a": 7, "b": [1, 2]}

    def test_buffer_round_trip(self):
        def body(comm):
            data = np.arange(100, dtype=np.int32)
            if comm.rank == 0:
                yield from comm.Send(data, 1)
                return None
            received = yield from comm.Recv(0)
            return received

        result = run_spmd(2, body)
        assert np.array_equal(result.results[1], np.arange(100, dtype=np.int32))

    def test_send_isolates_arrays(self):
        """Mutating the buffer after send must not corrupt the message."""
        def body(comm):
            if comm.rank == 0:
                data = np.ones(10)
                yield from comm.send(data, 1)
                data[:] = -1.0
                yield from comm.barrier()
                return None
            yield from comm.barrier()
            received = yield from comm.recv(0)
            return received

        result = run_spmd(2, body)
        assert np.array_equal(result.results[1], np.ones(10))

    def test_exchange_does_not_deadlock(self):
        """Eager sends make the classic send-then-recv exchange safe."""
        def body(comm):
            peer = 1 - comm.rank
            yield from comm.send(comm.rank, peer)
            other = yield from comm.recv(peer)
            return other

        result = run_spmd(2, body)
        assert result.results == [1, 0]

    def test_ssend_is_synchronous(self):
        """ssend completes no earlier than the matching recv is posted."""
        def body(comm):
            if comm.rank == 0:
                yield from comm.ssend(b"x" * 100, 1)
                return comm.sim.now
            yield comm.sim.timeout(1.0)  # make the receiver late
            yield from comm.recv(0)
            return comm.sim.now

        result = run_spmd(2, body)
        assert result.results[0] >= 1.0

    def test_buffered_send_returns_early(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send(b"x" * 100, 1)
                return comm.sim.now
            yield comm.sim.timeout(1.0)
            yield from comm.recv(0)
            return comm.sim.now

        result = run_spmd(2, body)
        assert result.results[0] < 1e-3

    def test_peer_range_checked(self):
        def body(comm):
            yield from comm.send(1, 5)

        with pytest.raises(IndexError):
            run_spmd(2, body)

    def test_recv_typed_mismatch(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send("not a buffer", 1)
                return None
            received = yield from comm.Recv(0)
            return received

        with pytest.raises(TypeError, match="non-buffer"):
            run_spmd(2, body)


class TestMatching:
    def test_tag_selectivity(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.send("wrong", 1, tag=1)
                yield from comm.send("right", 1, tag=2)
                return None
            chosen = yield from comm.recv(0, tag=2)
            other = yield from comm.recv(0, tag=1)
            return chosen, other

        result = run_spmd(2, body)
        assert result.results[1] == ("right", "wrong")

    def test_source_selectivity(self):
        def body(comm):
            if comm.rank in (0, 1):
                yield from comm.send(f"from{comm.rank}", 2, tag=9)
                return None
            first = yield from comm.recv(1, tag=9)
            second = yield from comm.recv(0, tag=9)
            return first, second

        result = run_spmd(3, body)
        assert result.results[2] == ("from1", "from0")

    def test_wildcards(self):
        def body(comm):
            if comm.rank == 0:
                payload, status = yield from comm.recv_with_status(
                    ANY_SOURCE, ANY_TAG)
                return payload, status.source, status.tag
            yield comm.sim.timeout(comm.rank * 1e-3)
            yield from comm.send(f"r{comm.rank}", 0, tag=comm.rank * 10)
            return None

        result = run_spmd(3, body)
        payload, source, tag = result.results[0]
        assert payload == "r1" and source == 1 and tag == 10

    def test_non_overtaking_same_source_tag(self):
        def body(comm):
            if comm.rank == 0:
                for index in range(5):
                    yield from comm.send(index, 1, tag=3)
                return None
            received = []
            for _ in range(5):
                received.append((yield from comm.recv(0, tag=3)))
            return received

        result = run_spmd(2, body)
        assert result.results[1] == [0, 1, 2, 3, 4]

    def test_probe(self):
        def body(comm):
            if comm.rank == 0:
                yield from comm.ssend("hello", 1, tag=4)
                return None
            # Wait until the message must have arrived.
            yield comm.sim.timeout(1.0)
            status = comm.probe(0, tag=4)
            missing = comm.probe(0, tag=99)
            payload = yield from comm.recv(0, tag=4)
            return status is not None, missing is None, payload

        result = run_spmd(2, body)
        assert result.results[1] == (True, True, "hello")


class TestNonBlocking:
    def test_isend_irecv_wait(self):
        def body(comm):
            if comm.rank == 0:
                request = comm.isend(np.arange(10.0), 1)
                yield from request.wait()
                return None
            request = comm.irecv(0)
            data = yield from request.wait()
            return data

        result = run_spmd(2, body)
        assert np.array_equal(result.results[1], np.arange(10.0))

    def test_test_polls_completion(self):
        def body(comm):
            if comm.rank == 0:
                yield comm.sim.timeout(1.0)
                yield from comm.send("late", 1)
                return None
            request = comm.irecv(0)
            early_done, early_value = request.test()
            yield comm.sim.timeout(2.0)
            late_done, late_value = request.test()
            return early_done, late_done, late_value

        result = run_spmd(2, body)
        assert result.results[1] == (False, True, "late")

    def test_sendrecv(self):
        def body(comm):
            peer = (comm.rank + 1) % comm.size
            source = (comm.rank - 1) % comm.size
            received = yield from comm.sendrecv(comm.rank, peer, source)
            return received

        result = run_spmd(4, body)
        assert result.results == [3, 0, 1, 2]


class TestHarness:
    def test_deadlock_reported_with_rank(self):
        def body(comm):
            yield from comm.recv(0)  # nobody sends

        with pytest.raises(SimulationError, match="rank"):
            run_spmd(2, body)

    def test_rank_failure_reraised(self):
        def body(comm):
            yield comm.sim.timeout(0.1)
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            return "fine"

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(2, body)

    def test_finish_times_and_imbalance(self):
        def body(comm):
            yield comm.sim.timeout(float(comm.rank))
            return comm.rank

        result = run_spmd(3, body)
        assert result.finish_times == pytest.approx([0.0, 1.0, 2.0])
        assert result.elapsed == pytest.approx(2.0)
        assert result.imbalance == pytest.approx(2.0)

    def test_payload_sizing(self):
        array = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(array) == 800 + ENVELOPE_BYTES
        assert payload_nbytes(b"abc") == 3 + ENVELOPE_BYTES
        assert payload_nbytes(None) > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: iter(()))
