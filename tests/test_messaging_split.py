"""Communicator split: sub-communicators, contexts, isolation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging import SUM, run_spmd
from repro.messaging.comm import SubCommunicator


class TestSplitBasics:
    def test_grid_row_and_column_communicators(self):
        def body(comm):
            grid = 3
            row, col = divmod(comm.rank, grid)
            row_comm = yield from comm.split(row, key=col)
            col_comm = yield from comm.split(col, key=row)
            return (row_comm.rank, row_comm.size,
                    col_comm.rank, col_comm.size)

        result = run_spmd(9, body)
        for rank, (row_rank, row_size, col_rank, col_size) in enumerate(
                result.results):
            row, col = divmod(rank, 3)
            assert (row_rank, row_size) == (col, 3)
            assert (col_rank, col_size) == (row, 3)

    def test_key_orders_members(self):
        def body(comm):
            # Reverse the ordering with a descending key.
            sub = yield from comm.split(0, key=-comm.rank)
            return sub.rank

        result = run_spmd(4, body)
        assert result.results == [3, 2, 1, 0]

    def test_color_none_opts_out(self):
        def body(comm):
            sub = yield from comm.split(
                "in" if comm.rank % 2 == 0 else None)
            if sub is None:
                return None
            return sub.size

        result = run_spmd(6, body)
        assert result.results == [3, None, 3, None, 3, None]

    def test_singleton_split(self):
        def body(comm):
            sub = yield from comm.split(comm.rank)  # everyone alone
            total = yield from sub.allreduce(comm.rank, SUM)
            return sub.size, total

        result = run_spmd(4, body)
        assert result.results == [(1, 0), (1, 1), (1, 2), (1, 3)]


class TestContextIsolation:
    def test_sibling_subcomms_do_not_cross_talk(self):
        """Rank 0 of the 'even' subcomm and rank 0 of the 'odd' subcomm
        both send tag 5 to their local rank 1; contexts keep the
        messages apart even though world mailboxes are shared."""
        def body(comm):
            sub = yield from comm.split(comm.rank % 2)
            if sub.rank == 0:
                yield from sub.send(f"from-{comm.rank % 2}", 1, tag=5)
                return None
            payload = yield from sub.recv(0, tag=5)
            return payload

        result = run_spmd(4, body)
        assert result.results[2] == "from-0"
        assert result.results[3] == "from-1"

    def test_parent_and_child_traffic_coexist(self):
        def body(comm):
            sub = yield from comm.split(comm.rank // 2)
            if comm.rank == 0:
                yield from comm.send("world-msg", 3, tag=7)
            if sub.rank == 0:
                yield from sub.send("sub-msg", 1, tag=7)
            results = []
            if sub.rank == 1:
                results.append((yield from sub.recv(0, tag=7)))
            if comm.rank == 3:
                results.append((yield from comm.recv(0, tag=7)))
            return results

        result = run_spmd(4, body)
        assert result.results[1] == ["sub-msg"]
        assert result.results[3] == ["sub-msg", "world-msg"]

    def test_nested_split(self):
        def body(comm):
            half = yield from comm.split(comm.rank // 4)       # two halves
            quarter = yield from half.split(half.rank // 2)    # two quarters
            total = yield from quarter.allreduce(comm.rank, SUM)
            return quarter.size, total

        result = run_spmd(8, body)
        expected_totals = [0 + 1, 0 + 1, 2 + 3, 2 + 3,
                           4 + 5, 4 + 5, 6 + 7, 6 + 7]
        assert [r[1] for r in result.results] == expected_totals
        assert all(r[0] == 2 for r in result.results)

    def test_repeated_splits_get_fresh_contexts(self):
        def body(comm):
            first = yield from comm.split(0)
            second = yield from comm.split(0)
            assert first._context != second._context
            a = yield from first.allreduce(1, SUM)
            b = yield from second.allreduce(2, SUM)
            return a, b

        result = run_spmd(3, body)
        assert all(r == (3, 6) for r in result.results)


class TestSubCommCollectives:
    @pytest.mark.parametrize("colors", [2, 3])
    def test_all_collectives_inside_subcomm(self, colors):
        def body(comm):
            sub = yield from comm.split(comm.rank % colors)
            total = yield from sub.allreduce(comm.rank, SUM)
            gathered = yield from sub.gather(comm.rank, root=0)
            yield from sub.barrier()
            broadcast = yield from sub.bcast(
                total if sub.rank == 0 else None, root=0)
            return total, gathered, broadcast

        result = run_spmd(6, body)
        for rank, (total, gathered, broadcast) in enumerate(result.results):
            members = [r for r in range(6) if r % colors == rank % colors]
            assert total == sum(members)
            assert broadcast == total
            if rank == members[0]:
                assert gathered == members
            else:
                assert gathered is None

    def test_array_allreduce_in_subcomm(self):
        def body(comm):
            sub = yield from comm.split(comm.rank % 2)
            out = yield from sub.allreduce(np.full(100, float(comm.rank)),
                                           SUM, algorithm="ring")
            return float(out[0])

        result = run_spmd(8, body)
        assert result.results[0] == pytest.approx(0 + 2 + 4 + 6)
        assert result.results[1] == pytest.approx(1 + 3 + 5 + 7)


class TestSubCommValidation:
    def test_peer_range_is_local(self):
        def body(comm):
            sub = yield from comm.split(comm.rank % 2)
            yield from sub.send(1, 3)  # subcomm only has 2 members

        with pytest.raises(IndexError):
            run_spmd(4, body)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SubCommunicator(None, [], 0, "ctx")
        with pytest.raises(ValueError):
            SubCommunicator(None, [1, 1], 0, "ctx")

    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_split_partitions_exactly(self, size, colors):
        def body(comm):
            sub = yield from comm.split(comm.rank % colors)
            members = yield from sub.allgather(comm.rank)
            return sorted(members)

        result = run_spmd(size, body)
        for rank, members in enumerate(result.results):
            assert members == [r for r in range(size)
                               if r % colors == rank % colors]
