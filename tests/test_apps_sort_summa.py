"""Sample sort and SUMMA: correctness against numpy, balance, shapes."""

import numpy as np
import pytest

from repro import RandomStreams
from repro.apps import ComputeCharge, run_sample_sort, run_summa
from repro.apps.sort import rank_stream_name


def reference_keys(n, ranks, seed, skew=0.0):
    """Rebuild the exact global key set the ranks generate."""
    streams = RandomStreams(seed)
    parts = []
    for rank in range(ranks):
        rng = streams.fresh(rank_stream_name(rank))
        local = n // ranks + (1 if rank < n % ranks else 0)
        parts.append(rng.random(local) ** (1.0 + skew))
    return np.sort(np.concatenate(parts))


class TestSampleSort:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 8])
    def test_sorts_correctly(self, ranks):
        result = run_sample_sort(ranks, 4000, seed=7)
        assert np.allclose(result.keys, reference_keys(4000, ranks, 7))
        assert len(result.keys) == 4000

    def test_output_is_monotone(self):
        result = run_sample_sort(5, 3000, seed=1)
        assert np.all(np.diff(result.keys) >= 0)

    def test_skewed_keys_still_sorted_and_balanced(self):
        """The splitter sampling must absorb a skewed distribution."""
        result = run_sample_sort(8, 20_000, seed=3, skew=3.0)
        assert np.allclose(result.keys,
                           reference_keys(20_000, 8, 3, skew=3.0))
        assert result.balance < 1.5

    def test_oversampling_improves_balance(self):
        coarse = run_sample_sort(8, 20_000, oversample=4, seed=5, skew=2.0)
        fine = run_sample_sort(8, 20_000, oversample=128, seed=5, skew=2.0)
        assert fine.balance <= coarse.balance * 1.05

    def test_uneven_division(self):
        result = run_sample_sort(3, 1000, seed=9)  # 1000 % 3 != 0
        assert len(result.keys) == 1000

    def test_faster_network_helps(self):
        charge = ComputeCharge(effective_flops=3e9)
        slow = run_sample_sort(8, 200_000, charge=charge, seed=2,
                               technology="fast_ethernet")
        fast = run_sample_sort(8, 200_000, charge=charge, seed=2,
                               technology="infiniband_4x")
        assert fast.elapsed < slow.elapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sample_sort(8, 4)
        with pytest.raises(ValueError):
            run_sample_sort(2, 100, oversample=0)
        with pytest.raises(ValueError):
            run_sample_sort(2, 100, skew=-1.0)


class TestSumma:
    @pytest.mark.parametrize("ranks", [1, 4, 9, 16])
    def test_matches_numpy_product(self, ranks):
        result = run_summa(ranks, 36, seed=11)
        rng = RandomStreams(11).fresh("apps.summa.input")
        a = rng.standard_normal((36, 36))
        b = rng.standard_normal((36, 36))
        assert np.allclose(result.product, a @ b)
        assert result.grid ** 2 == ranks

    def test_uneven_blocks(self):
        """n not divisible by the grid dimension still works."""
        result = run_summa(4, 35, seed=2)
        rng = RandomStreams(2).fresh("apps.summa.input")
        a = rng.standard_normal((35, 35))
        b = rng.standard_normal((35, 35))
        assert np.allclose(result.product, a @ b)

    def test_compute_bound_at_scale(self):
        """Large blocks make SUMMA compute-dominated: interconnect choice
        moves it far less than its broadcast volume suggests."""
        charge = ComputeCharge(effective_flops=3e9)
        slow = run_summa(4, 512, charge=charge,
                         technology="gigabit_ethernet")
        fast = run_summa(4, 512, charge=charge,
                         technology="infiniband_4x")
        assert slow.elapsed < 2.0 * fast.elapsed

    def test_scales_with_ranks(self):
        charge = ComputeCharge(effective_flops=3e9)
        one = run_summa(1, 256, charge=charge, technology="infiniband_4x")
        sixteen = run_summa(16, 256, charge=charge,
                            technology="infiniband_4x")
        assert sixteen.elapsed < one.elapsed / 4

    def test_non_square_rank_count_rejected(self):
        with pytest.raises(ValueError, match="square"):
            run_summa(6, 32)

    def test_tiny_matrix_rejected(self):
        with pytest.raises(ValueError):
            run_summa(16, 2)
