"""Event lifecycle, combinators, and delivery semantics."""

import pytest

from repro.sim import AllOf, AnyOf, Event, EventStatus, Simulator, Timeout
from repro.sim.engine import SimulationError


class TestEventLifecycle:
    def test_starts_pending(self, sim):
        event = sim.event("e")
        assert event.status is EventStatus.PENDING
        assert not event.triggered

    def test_value_raises_while_pending(self, sim):
        with pytest.raises(RuntimeError):
            sim.event().value

    def test_succeed_carries_value(self, sim):
        event = sim.event().succeed(42)
        assert event.ok
        assert event.value == 42

    def test_fail_carries_exception(self, sim):
        exc = ValueError("boom")
        event = sim.event()
        event.defused = True
        event.fail(exc)
        assert event.triggered and not event.ok
        assert event.value is exc
        sim.run()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_double_trigger_rejected(self, sim):
        event = sim.event().succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)
        with pytest.raises(RuntimeError):
            event.fail(ValueError())

    def test_unhandled_failure_surfaces_in_run(self, sim):
        sim.event("doomed").fail(RuntimeError("lost"))
        with pytest.raises(SimulationError):
            sim.run()

    def test_defused_failure_is_quiet(self, sim):
        event = sim.event()
        event.defused = True
        event.fail(RuntimeError("handled elsewhere"))
        sim.run()  # no raise


class TestCallbackDelivery:
    def test_callbacks_run_in_registration_order(self, sim):
        order = []
        event = sim.event()
        event.add_callback(lambda e: order.append(1))
        event.add_callback(lambda e: order.append(2))
        event.succeed()
        sim.run()
        assert order == [1, 2]

    def test_late_callback_still_runs(self, sim):
        event = sim.event().succeed("v")
        sim.run()
        got = []
        event.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["v"]

    def test_late_callbacks_do_not_recurse(self, sim):
        """A long chain of already-triggered yields must not overflow the
        Python stack (regression: late callbacks go through the queue)."""
        def chaser(sim, events):
            for event in events:
                yield event
            return "done"

        events = [sim.event().succeed(i) for i in range(5000)]
        sim.run()
        assert sim.run_process(chaser(sim, events)) == "done"


class TestTimeout:
    def test_advances_clock(self, sim):
        sim.process(iter_timeout(sim, 2.5))
        assert sim.run() == pytest.approx(2.5)

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError):
            Timeout(sim, -1.0)

    def test_zero_delay_fires_now(self, sim):
        fired = []
        sim.timeout(0.0).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_carries_value(self, sim):
        def body(sim):
            got = yield sim.timeout(1.0, value="payload")
            return got

        assert sim.run_process(body(sim)) == "payload"


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


class TestAllOf:
    def test_waits_for_every_child(self, sim):
        def body(sim):
            values = yield AllOf(sim, [sim.timeout(1, "a"),
                                       sim.timeout(3, "b"),
                                       sim.timeout(2, "c")])
            return values, sim.now

        values, now = sim.run_process(body(sim))
        assert values == ["a", "b", "c"]
        assert now == pytest.approx(3.0)

    def test_empty_succeeds_immediately(self, sim):
        def body(sim):
            result = yield AllOf(sim, [])
            return result

        assert sim.run_process(body(sim)) == []

    def test_child_failure_fails_the_combinator(self, sim):
        def body(sim):
            bad = sim.event()
            bad.fail(ValueError("child"))
            try:
                yield AllOf(sim, [sim.timeout(1), bad])
            except ValueError as exc:
                return str(exc)

        assert sim.run_process(body(sim)) == "child"

    def test_rejects_cross_simulator_events(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            AllOf(sim, [other.event()])


class TestOperatorSugar:
    def test_and_waits_for_both(self, sim):
        def body(sim):
            values = yield sim.timeout(1, "a") & sim.timeout(3, "b")
            return values, sim.now

        values, now = sim.run_process(body(sim))
        assert values == ["a", "b"]
        assert now == pytest.approx(3.0)

    def test_or_returns_first(self, sim):
        def body(sim):
            index, value = yield sim.timeout(5, "slow") | sim.timeout(1, "quick")
            return index, value, sim.now

        index, value, now = sim.run_process(body(sim))
        assert (index, value) == (1, "quick")
        assert now == pytest.approx(1.0)

    def test_chaining(self, sim):
        def body(sim):
            both_then_any = (sim.timeout(1) & sim.timeout(2)) | sim.timeout(10)
            index, _value = yield both_then_any
            return index, sim.now

        index, now = sim.run_process(body(sim))
        assert index == 0
        assert now == pytest.approx(2.0)

    def test_non_event_operand_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.event() & 42
        with pytest.raises(TypeError):
            sim.event() | "x"


class TestAnyOf:
    def test_first_wins_with_index(self, sim):
        def body(sim):
            index, value = yield AnyOf(sim, [sim.timeout(5, "slow"),
                                             sim.timeout(1, "fast")])
            return index, value, sim.now

        index, value, now = sim.run_process(body(sim))
        assert (index, value) == (1, "fast")
        assert now == pytest.approx(1.0)

    def test_requires_children(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])

    def test_losers_do_not_disturb(self, sim):
        """Remaining timeouts fire after the winner without effect."""
        def body(sim):
            result = yield AnyOf(sim, [sim.timeout(1, "x"), sim.timeout(2, "y")])
            yield sim.timeout(5)
            return result

        assert sim.run_process(body(sim)) == (0, "x")
