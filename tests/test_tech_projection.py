"""Projection primitives: forward evaluation and inversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tech import ExponentialProjection, PiecewiseProjection


class TestExponential:
    def test_anchor_value(self):
        projection = ExponentialProjection(2002, 10.0, 0.5)
        assert projection.value(2002) == pytest.approx(10.0)

    def test_doubling(self):
        projection = ExponentialProjection.from_doubling_time(2002, 8.0, 1.5)
        assert projection.value(2003.5) == pytest.approx(16.0)
        assert projection.value(2005.0) == pytest.approx(32.0)
        assert projection.doubling_time() == pytest.approx(1.5)

    def test_backwards_extrapolation(self):
        projection = ExponentialProjection.from_doubling_time(2002, 8.0, 2.0)
        assert projection.value(2000.0) == pytest.approx(4.0)

    def test_decline(self):
        projection = ExponentialProjection(2002, 100.0, -0.5)
        assert projection.value(2003) == pytest.approx(50.0)

    def test_vectorised_over_years(self):
        projection = ExponentialProjection(2002, 1.0, 1.0)
        values = projection.value(np.array([2002.0, 2003.0, 2004.0]))
        assert np.allclose(values, [1.0, 2.0, 4.0])

    def test_year_reaching_forward(self):
        projection = ExponentialProjection.from_doubling_time(2002, 1.0, 1.0)
        assert projection.year_reaching(8.0) == pytest.approx(2005.0)

    def test_year_reaching_for_decline(self):
        projection = ExponentialProjection(2002, 100.0, -0.5)
        assert projection.year_reaching(25.0) == pytest.approx(2004.0)

    def test_year_reaching_anchor(self):
        projection = ExponentialProjection(2002, 5.0, 0.3)
        assert projection.year_reaching(5.0) == 2002

    def test_flat_projection_cannot_invert(self):
        projection = ExponentialProjection(2002, 5.0, 0.0)
        with pytest.raises(ValueError):
            projection.year_reaching(10.0)

    def test_through_points(self):
        projection = ExponentialProjection.through_points(2000, 2.0, 2004, 32.0)
        assert projection.value(2002) == pytest.approx(8.0)

    def test_scaled_preserves_growth(self):
        base = ExponentialProjection(2002, 10.0, 0.4)
        scaled = base.scaled(0.5)
        assert scaled.value(2002) == pytest.approx(5.0)
        assert scaled.cagr == base.cagr

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialProjection(2002, -1.0, 0.5)
        with pytest.raises(ValueError):
            ExponentialProjection(2002, 1.0, -1.0)
        with pytest.raises(ValueError):
            ExponentialProjection.from_doubling_time(2002, 1.0, 0.0)
        with pytest.raises(ValueError):
            ExponentialProjection.through_points(2002, 1.0, 2002, 2.0)

    @given(
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=-0.5, max_value=2.0),
        st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_inversion(self, base_value, cagr, offset):
        """value(year_reaching(v)) == v wherever inversion is defined."""
        if abs(cagr) < 1e-6:
            return
        projection = ExponentialProjection(2002, base_value, cagr)
        target = projection.value(2002 + offset)
        year = projection.year_reaching(target)
        assert year == pytest.approx(2002 + offset, abs=1e-6)


class TestPiecewise:
    def build(self):
        # 100%/yr until 2005, flat until 2008, then -20%/yr.
        return PiecewiseProjection(2002, 1.0, segments=[
            (2005.0, 1.0), (2008.0, 0.0), (math.inf, -0.2),
        ])

    def test_continuity_at_breakpoints(self):
        projection = self.build()
        for breakpoint in (2005.0, 2008.0):
            below = projection.value(breakpoint - 1e-9)
            above = projection.value(breakpoint + 1e-9)
            assert below == pytest.approx(above, rel=1e-6)

    def test_segment_values(self):
        projection = self.build()
        assert projection.value(2003) == pytest.approx(2.0)
        assert projection.value(2005) == pytest.approx(8.0)
        assert projection.value(2007) == pytest.approx(8.0)   # flat era
        assert projection.value(2009) == pytest.approx(8.0 * 0.8)

    def test_vectorised(self):
        projection = self.build()
        values = projection.value(np.array([2003.0, 2009.0]))
        assert values[0] == pytest.approx(2.0)

    def test_year_reaching_in_first_segment(self):
        projection = self.build()
        assert projection.year_reaching(4.0) == pytest.approx(2004.0)

    def test_year_reaching_in_declining_tail(self):
        # Values below the anchor (1.0) are only ever reached in the
        # declining tail, never during growth.
        projection = self.build()
        year = projection.year_reaching(0.5)
        assert year > 2008.0
        assert projection.value(year) == pytest.approx(0.5)

    def test_unreachable_raises(self):
        projection = self.build()
        with pytest.raises(ValueError):
            projection.year_reaching(1000.0)  # growth stopped at 8

    def test_backwards_extrapolation_uses_first_segment(self):
        projection = self.build()
        assert projection.value(2001.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseProjection(2002, 1.0, segments=[])
        with pytest.raises(ValueError):
            PiecewiseProjection(2002, 1.0,
                                segments=[(2005.0, 0.5), (2004.0, 0.5)])
