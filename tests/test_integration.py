"""Cross-module integration: full workflows a user would actually run."""

import numpy as np
import pytest

from repro import (
    CheckpointParams,
    ExponentialFailures,
    HplModel,
    RandomStreams,
    SUM,
    WorkloadGenerator,
    WorkloadParams,
    cluster_metrics,
    daly_interval,
    design_to_budget,
    get_policy,
    get_scenario,
    run_cg,
    run_spmd,
    simulate_checkpoint_run,
    system_mtbf,
)
from repro.apps import ComputeCharge
from repro.cluster import design_cluster
from repro.network import FatTreeTopology
from repro.scheduler import BatchSimulator, evaluate_schedule


class TestDesignToSimulationFlow:
    """Design a machine from the roadmap, then run an application on a
    fabric with that machine's interconnect and node roofline — the full
    stack in one test."""

    def test_budget_machine_runs_cg(self, nominal):
        spec = design_to_budget(1e6, nominal, 2005, "conventional",
                                "infiniband_4x")
        assert spec.node_count > 100
        charge = ComputeCharge(node=spec.node)
        result = run_cg(16, n=512, charge=charge,
                        technology=spec.interconnect,
                        topology=FatTreeTopology(16, hosts_per_leaf=8))
        assert result.converged
        assert np.allclose(result.x, 1.0, atol=1e-5)

    def test_architectures_rank_consistently(self, nominal):
        """Blade and SoC must beat conventional on density and power at
        equal peak, at the whole-cluster level."""
        results = {}
        for architecture in ("conventional", "blade", "soc"):
            spec = design_cluster("m", nominal, 2006, 1000, architecture,
                                  "infiniband_4x")
            results[architecture] = cluster_metrics(spec)
        per_peak = {a: m.total_watts / m.peak_flops
                    for a, m in results.items()}
        assert per_peak["soc"] < per_peak["blade"] < per_peak["conventional"]

    def test_hpl_of_designed_machine(self, nominal):
        spec = design_to_budget(5e6, nominal, 2006)
        estimate = HplModel().estimate(spec)
        assert 0.4 < estimate.efficiency < 0.9


class TestVirtualTimeEndToEnd:
    def test_application_time_uses_node_roofline(self, nominal):
        """The same program on a 2003 node vs a 2009 node must speed up
        by roughly the roadmap's peak ratio (compute-bound program)."""
        def body(comm, charge):
            yield comm.sim.timeout(charge.seconds(flops=1e9,
                                                  bytes_moved=1e6))
            yield from comm.allreduce(1.0, SUM)
            return comm.sim.now

        old = ComputeCharge(node=__import__("repro").make_node(
            "conventional", nominal, 2003))
        new = ComputeCharge(node=__import__("repro").make_node(
            "conventional", nominal, 2009))
        t_old = run_spmd(4, body, old, technology="infiniband_4x").elapsed
        t_new = run_spmd(4, body, new, technology="infiniband_4x").elapsed
        expected_ratio = (nominal.value("node_peak_flops", 2009)
                          / nominal.value("node_peak_flops", 2003))
        assert t_old / t_new == pytest.approx(expected_ratio, rel=0.1)

    def test_determinism_across_runs(self):
        """Identical SPMD runs produce bit-identical virtual times."""
        def body(comm):
            value = yield from comm.allreduce(comm.rank * 1.5, SUM)
            yield from comm.barrier()
            return value, comm.sim.now

        first = run_spmd(8, body, technology="myrinet_2000")
        second = run_spmd(8, body, technology="myrinet_2000")
        assert first.results == second.results
        assert first.elapsed == second.elapsed


class TestScaleStory:
    """The keynote's core quantitative narrative, end to end: a petaflops
    machine is buildable this decade, but only with the new resource
    management and fault recovery software."""

    def test_petaflops_feasible_but_fault_dominated(self, nominal):
        # A petaflops-peak blade machine late in the decade:
        from repro import design_to_peak
        spec = design_to_peak(1e15, nominal, 2009.5, "blade",
                              "infiniband_12x")
        assert spec.node_count < 100_000  # buildable node count

        # Without checkpointing a week-long job essentially never ends;
        # with Daly checkpointing it finishes with reasonable efficiency.
        mtbf = system_mtbf(3 * 365.25 * 86400, spec.node_count)
        params = CheckpointParams(checkpoint_seconds=600.0,
                                  restart_seconds=900.0,
                                  system_mtbf_seconds=mtbf)
        tau = daly_interval(params)
        stats = simulate_checkpoint_run(
            12 * 3600.0, params, tau, ExponentialFailures(mtbf),
            RandomStreams(2), replication=0)
        assert stats.failures > 0            # failures DID happen
        assert stats.efficiency > 0.35       # and the job still finished

    def test_scheduler_keeps_big_machine_busy(self):
        generator = WorkloadGenerator(
            WorkloadParams(max_nodes=1024, offered_load=0.85),
            RandomStreams(seed=8))
        jobs = generator.generate(600)
        result = BatchSimulator(1024, get_policy("easy")).run(jobs)
        metrics = evaluate_schedule(result)
        assert metrics.utilization > 0.6


class TestScenarioConsistency:
    def test_crossing_years_ordered_by_scenario(self):
        """Aggressive roadmap reaches any fixed capability before nominal,
        nominal before conservative."""
        years = {}
        for name in ("conservative", "nominal", "aggressive"):
            roadmap = get_scenario(name)
            years[name] = roadmap.year_of_cluster_peak(1e15, 20_000)
        assert (years["aggressive"] < years["nominal"]
                < years["conservative"])
