"""Request helpers: waitall / waitany, and fabric timing properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging import run_spmd
from repro.messaging.comm import waitall, waitany
from repro.network import (
    Fabric,
    FatTreeTopology,
    SingleSwitchTopology,
    TorusTopology,
    get_interconnect,
)
from repro.sim import Simulator


class TestWaitHelpers:
    def test_waitall_returns_values_in_request_order(self):
        def body(comm):
            if comm.rank == 0:
                requests = [comm.irecv(src, tag=1)
                            for src in (3, 1, 2)]
                values = yield from waitall(requests)
                return values
            yield comm.sim.timeout(comm.rank * 1e-6)
            yield from comm.send(comm.rank, 0, tag=1)
            return None

        result = run_spmd(4, body)
        assert result.results[0] == [3, 1, 2]  # request order, not arrival

    def test_waitany_returns_first_completion(self):
        def body(comm):
            if comm.rank == 0:
                requests = [comm.irecv(1, tag=1), comm.irecv(2, tag=1)]
                index, value = yield from waitany(requests)
                return index, value
            yield comm.sim.timeout(0.0 if comm.rank == 2 else 1.0)
            yield from comm.send(f"r{comm.rank}", 0, tag=1)
            return None

        result = run_spmd(3, body)
        assert result.results[0] == (1, "r2")  # rank 2 sent first

    def test_waitany_validates(self):
        with pytest.raises(ValueError):
            # Driving the generator triggers the validation.
            list(waitany([]))

    def test_waitall_empty_is_noop(self):
        def body(comm):
            values = yield from waitall([])
            return values

        assert run_spmd(1, body).results == [[]]


class TestFabricTimingProperties:
    """The fabric's uncontended closed form must agree with what the
    simulator actually measures, for every topology and technology."""

    TOPOLOGIES = [
        lambda: SingleSwitchTopology(8),
        lambda: FatTreeTopology(8, hosts_per_leaf=4),
        lambda: TorusTopology((4, 2)),
    ]

    @given(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["gigabit_ethernet", "myrinet_2000",
                         "infiniband_4x"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_measured_equals_closed_form(self, topo_index, technology,
                                         src, dst, nbytes):
        sim = Simulator()
        fabric = Fabric(sim, self.TOPOLOGIES[topo_index](),
                        get_interconnect(technology))

        def body():
            end = yield from fabric.transfer(src, dst, nbytes)
            return end

        measured = sim.run_process(body())
        assert measured == pytest.approx(
            fabric.uncontended_time(src, dst, nbytes), rel=1e-12)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_concurrent_disjoint_transfers_unaffected(self, pairs):
        """Transfers over disjoint host pairs finish exactly at their
        solo times — contention never charges innocents."""
        sim = Simulator()
        fabric = Fabric(sim, SingleSwitchTopology(2 * pairs),
                        get_interconnect("infiniband_4x"))
        finishes = {}

        def sender(src, dst):
            end = yield from fabric.transfer(src, dst, 100_000)
            finishes[src] = end

        for pair in range(pairs):
            sim.process(sender(2 * pair, 2 * pair + 1))
        sim.run()
        solo = fabric.uncontended_time(0, 1, 100_000)
        for end in finishes.values():
            assert end == pytest.approx(solo, rel=1e-12)
