"""Collective correctness across sizes, roots, and algorithms."""

import numpy as np
import pytest

from repro.messaging import MAX, MIN, PROD, SUM, run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


class TestBarrier:
    @pytest.mark.parametrize("size", SIZES)
    def test_no_rank_escapes_early(self, size):
        """Every rank's barrier-exit time must be >= every rank's entry
        time (the defining property of a barrier)."""
        def body(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)  # staggered entry
            entry = comm.sim.now
            yield from comm.barrier()
            return entry, comm.sim.now

        result = run_spmd(size, body)
        entries = [r[0] for r in result.results]
        exits = [r[1] for r in result.results]
        assert min(exits) >= max(entries) - 1e-12


class TestBcast:
    @pytest.mark.parametrize("size", SIZES)
    def test_everyone_gets_root_value(self, size):
        def body(comm):
            payload = {"data": 42} if comm.rank == 0 else None
            received = yield from comm.bcast(payload, root=0)
            return received

        result = run_spmd(size, body)
        assert all(r == {"data": 42} for r in result.results)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_any_root(self, root):
        def body(comm):
            payload = f"from{comm.rank}" if comm.rank == root else None
            received = yield from comm.bcast(payload, root=root)
            return received

        result = run_spmd(3, body)
        assert all(r == f"from{root}" for r in result.results)

    def test_array_payload(self):
        def body(comm):
            payload = np.arange(1000.0) if comm.rank == 0 else None
            received = yield from comm.bcast(payload, root=0)
            return float(received.sum())

        result = run_spmd(6, body)
        assert all(v == pytest.approx(999 * 1000 / 2) for v in result.results)

    def test_root_range_checked(self):
        def body(comm):
            yield from comm.bcast(1, root=9)

        with pytest.raises(IndexError):
            run_spmd(2, body)


class TestReduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_sum_at_root_none_elsewhere(self, size):
        def body(comm):
            value = yield from comm.reduce(comm.rank + 1, SUM, root=0)
            return value

        result = run_spmd(size, body)
        assert result.results[0] == size * (size + 1) // 2
        assert all(v is None for v in result.results[1:])

    @pytest.mark.parametrize("op,expected", [
        (MAX, 7), (MIN, 0), (PROD, 0),
    ])
    def test_operators(self, op, expected):
        def body(comm):
            value = yield from comm.reduce(comm.rank, op, root=0)
            return value

        result = run_spmd(8, body)
        assert result.results[0] == expected

    def test_nonzero_root(self):
        def body(comm):
            value = yield from comm.reduce(comm.rank, SUM, root=2)
            return value

        result = run_spmd(5, body)
        assert result.results[2] == 10
        assert result.results[0] is None


class TestAllreduce:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("algorithm",
                             ["recursive_doubling", "ring", "rabenseifner"])
    def test_scalar_sum_everywhere(self, size, algorithm):
        def body(comm):
            value = yield from comm.allreduce(float(comm.rank), SUM,
                                              algorithm=algorithm)
            return value

        result = run_spmd(size, body)
        expected = size * (size - 1) / 2
        assert all(v == pytest.approx(expected) for v in result.results)

    @pytest.mark.parametrize("size", [2, 3, 4, 6, 8])
    @pytest.mark.parametrize("algorithm",
                             ["recursive_doubling", "ring", "rabenseifner"])
    def test_array_sum_matches_numpy(self, size, algorithm):
        def body(comm):
            local = np.arange(64.0) * (comm.rank + 1)
            total = yield from comm.allreduce(local, SUM, algorithm=algorithm)
            return total

        result = run_spmd(size, body)
        expected = np.arange(64.0) * sum(range(1, size + 1))
        for value in result.results:
            assert np.allclose(value, expected)

    def test_array_shape_preserved(self):
        def body(comm):
            local = np.ones((8, 4)) * comm.rank
            total = yield from comm.allreduce(local, SUM, algorithm="ring")
            return total.shape

        result = run_spmd(4, body)
        assert all(shape == (8, 4) for shape in result.results)

    def test_max_operator(self):
        def body(comm):
            local = np.array([comm.rank, -comm.rank], dtype=float)
            best = yield from comm.allreduce(local, MAX)
            return best

        result = run_spmd(5, body)
        assert np.array_equal(result.results[0], [4.0, 0.0])

    def test_unknown_algorithm_rejected(self):
        def body(comm):
            yield from comm.allreduce(1.0, SUM, algorithm="telepathy")

        with pytest.raises(ValueError, match="telepathy"):
            run_spmd(2, body)

    def test_ring_falls_back_for_short_vectors(self):
        """A 2-element vector on 4 ranks cannot be ring-chunked; the
        dispatcher must still return the right answer."""
        def body(comm):
            value = yield from comm.allreduce(np.ones(2), SUM,
                                              algorithm="ring")
            return value

        result = run_spmd(4, body)
        assert np.allclose(result.results[0], [4.0, 4.0])


class TestGatherScatter:
    @pytest.mark.parametrize("size", SIZES)
    def test_gather_ordered_by_rank(self, size):
        def body(comm):
            gathered = yield from comm.gather(comm.rank * 10, root=0)
            return gathered

        result = run_spmd(size, body)
        assert result.results[0] == [r * 10 for r in range(size)]
        assert all(v is None for v in result.results[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_scatter_delivers_per_rank(self, size):
        def body(comm):
            items = [f"item{i}" for i in range(size)] if comm.rank == 0 else None
            mine = yield from comm.scatter(items, root=0)
            return mine

        result = run_spmd(size, body)
        assert result.results == [f"item{r}" for r in range(size)]

    def test_scatter_validates_length(self):
        def body(comm):
            items = [1] if comm.rank == 0 else None
            yield from comm.scatter(items, root=0)

        with pytest.raises(ValueError, match="exactly"):
            run_spmd(3, body)

    def test_gather_scatter_inverse(self):
        def body(comm):
            gathered = yield from comm.gather(comm.rank ** 2, root=0)
            back = yield from comm.scatter(gathered, root=0)
            return back

        result = run_spmd(6, body)
        assert result.results == [r ** 2 for r in range(6)]


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        def body(comm):
            everything = yield from comm.allgather(comm.rank + 100)
            return everything

        result = run_spmd(size, body)
        expected = [r + 100 for r in range(size)]
        assert all(v == expected for v in result.results)

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
    def test_alltoall_is_transpose(self, size):
        def body(comm):
            outgoing = [(comm.rank, dst) for dst in range(comm.size)]
            incoming = yield from comm.alltoall(outgoing)
            return incoming

        result = run_spmd(size, body)
        for rank, incoming in enumerate(result.results):
            assert incoming == [(src, rank) for src in range(size)]

    def test_alltoall_validates_length(self):
        def body(comm):
            yield from comm.alltoall([1, 2])

        with pytest.raises(ValueError, match="exactly"):
            run_spmd(3, body)


class TestBcastAlgorithms:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 16])
    def test_scatter_allgather_correct(self, size):
        def body(comm):
            payload = (np.arange(640.0).reshape(32, 20)
                       if comm.rank == 0 else None)
            out = yield from comm.bcast(payload, root=0,
                                        algorithm="scatter_allgather")
            return out

        result = run_spmd(size, body)
        expected = np.arange(640.0).reshape(32, 20)
        for value in result.results:
            assert np.array_equal(value, expected)

    def test_unchunkable_payload_falls_back(self):
        def body(comm):
            payload = {"k": 1} if comm.rank == 1 else None
            out = yield from comm.bcast(payload, root=1,
                                        algorithm="scatter_allgather")
            return out

        result = run_spmd(4, body)
        assert all(v == {"k": 1} for v in result.results)

    def test_vdg_wins_for_large_payloads(self):
        """The reason the algorithm exists: at 16 ranks x 1 MiB, the
        scatter+allgather pipeline beats the binomial tree."""
        def body(comm, algorithm):
            payload = (np.zeros(1 << 17) if comm.rank == 0 else None)
            start = comm.sim.now
            yield from comm.bcast(payload, root=0, algorithm=algorithm)
            return comm.sim.now - start

        binomial = max(run_spmd(16, body, "binomial",
                                technology="infiniband_4x").results)
        vdg = max(run_spmd(16, body, "scatter_allgather",
                           technology="infiniband_4x").results)
        assert vdg < binomial

    def test_binomial_wins_for_small_payloads(self):
        def body(comm, algorithm):
            payload = (np.zeros(16) if comm.rank == 0 else None)
            start = comm.sim.now
            yield from comm.bcast(payload, root=0, algorithm=algorithm)
            return comm.sim.now - start

        binomial = max(run_spmd(16, body, "binomial",
                                technology="infiniband_4x").results)
        vdg = max(run_spmd(16, body, "scatter_allgather",
                           technology="infiniband_4x").results)
        assert binomial < vdg

    def test_unknown_algorithm_rejected(self):
        def body(comm):
            yield from comm.bcast(1, root=0, algorithm="pigeon")

        with pytest.raises(ValueError, match="pigeon"):
            run_spmd(2, body)


class TestCollectiveSequencing:
    def test_back_to_back_collectives_do_not_cross_talk(self):
        def body(comm):
            first = yield from comm.allreduce(1, SUM)
            second = yield from comm.allreduce(10, SUM)
            third = yield from comm.bcast(
                "x" if comm.rank == 0 else None, root=0)
            return first, second, third

        result = run_spmd(4, body)
        assert all(r == (4, 40, "x") for r in result.results)

    def test_hundred_barriers(self):
        def body(comm):
            for _ in range(100):
                yield from comm.barrier()
            return True

        assert all(run_spmd(4, body).results)
