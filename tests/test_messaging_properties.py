"""Property-based collective correctness and timing shapes (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging import MAX, SUM, run_spmd
from repro.network import FatTreeTopology, SingleSwitchTopology, TorusTopology


class TestCollectiveProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.sampled_from(["recursive_doubling", "ring", "rabenseifner"]),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_equals_numpy_for_any_shape(self, size, algorithm,
                                                  length, seed):
        """Any rank count x any vector length x any algorithm == numpy."""
        rng = np.random.default_rng(seed)
        locals_ = [rng.standard_normal(length) for _ in range(size)]
        expected = np.sum(locals_, axis=0)

        def body(comm):
            total = yield from comm.allreduce(locals_[comm.rank], SUM,
                                              algorithm=algorithm)
            return total

        result = run_spmd(size, body)
        for value in result.results:
            assert np.allclose(value, expected, atol=1e-9)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_bcast_from_any_root(self, size, root_seed):
        root = root_seed % size

        def body(comm):
            payload = ("secret", root) if comm.rank == root else None
            received = yield from comm.bcast(payload, root=root)
            return received

        result = run_spmd(size, body)
        assert all(v == ("secret", root) for v in result.results)

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_allgather_equals_gather_plus_bcast(self, size):
        def body(comm):
            fast = yield from comm.allgather(comm.rank * 3)
            gathered = yield from comm.gather(comm.rank * 3, root=0)
            slow = yield from comm.bcast(gathered, root=0)
            return fast, slow

        result = run_spmd(size, body)
        for fast, slow in result.results:
            assert fast == slow

    @given(st.integers(min_value=1, max_value=9),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_alltoall_involution(self, size, seed):
        """alltoall twice with transposed indexing restores the input."""
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 1000, size=(size, size))

        def body(comm):
            row = list(matrix[comm.rank])
            column = yield from comm.alltoall(row)
            back = yield from comm.alltoall(column)
            return back

        result = run_spmd(size, body)
        for rank, back in enumerate(result.results):
            assert back == list(matrix[rank])


class TestTimingShapes:
    """Virtual-time claims that must hold for the E4/E5 benches to mean
    anything."""

    def _pingpong_time(self, technology, nbytes, topology=None):
        def body(comm):
            payload = np.zeros(nbytes, dtype=np.uint8)
            if comm.rank == 0:
                yield from comm.send(payload, 1, tag=1)
                yield from comm.recv(1, tag=2)
            else:
                data = yield from comm.recv(0, tag=1)
                yield from comm.send(data, 0, tag=2)
            return comm.sim.now

        result = run_spmd(2, body, technology=technology, topology=topology)
        return result.elapsed

    def test_faster_network_is_faster(self):
        slow = self._pingpong_time("fast_ethernet", 1 << 16)
        fast = self._pingpong_time("infiniband_4x", 1 << 16)
        assert fast < slow / 10

    def test_latency_dominates_small_bandwidth_dominates_large(self):
        """GigE vs IB-4x gap is modest for tiny messages (latency regime)
        and near the 8x bandwidth ratio for huge ones."""
        small_ratio = (self._pingpong_time("gigabit_ethernet", 8)
                       / self._pingpong_time("infiniband_4x", 8))
        large_ratio = (self._pingpong_time("gigabit_ethernet", 1 << 22)
                       / self._pingpong_time("infiniband_4x", 1 << 22))
        assert large_ratio > small_ratio
        assert large_ratio == pytest.approx(8.0, rel=0.15)

    def test_allreduce_scales_logarithmically(self):
        """Recursive-doubling allreduce time grows ~log2(p), far slower
        than linearly."""
        def body(comm):
            yield from comm.allreduce(1.0, SUM)
            return comm.sim.now

        t4 = run_spmd(4, body, technology="infiniband_4x").elapsed
        t16 = run_spmd(16, body, technology="infiniband_4x").elapsed
        assert t16 < 3 * t4  # log: 4 rounds vs 2 rounds => ~2x

    def test_torus_neighbour_cheaper_than_far(self):
        topology = TorusTopology((4, 4))

        def body(comm):
            if comm.rank == 0:
                yield from comm.send(b"x", 1, tag=1)       # 1 hop
                yield from comm.send(b"x", 10, tag=1)      # several hops
            elif comm.rank in (1, 10):
                yield from comm.recv(0, tag=1)
            return comm.sim.now

        result = run_spmd(16, body, technology="infiniband_4x",
                          topology=topology)
        assert result.finish_times[1] < result.finish_times[10]

    def test_oversubscription_slows_alltoall(self):
        def body(comm):
            payload = [np.zeros(1 << 14, dtype=np.uint8)
                       for _ in range(comm.size)]
            yield from comm.alltoall(payload)
            return comm.sim.now

        full = run_spmd(
            16, body, technology="infiniband_4x",
            topology=FatTreeTopology(16, hosts_per_leaf=4)).elapsed
        oversubscribed = run_spmd(
            16, body, technology="infiniband_4x",
            topology=FatTreeTopology(16, hosts_per_leaf=4, spines=1)).elapsed
        assert oversubscribed > full

    def test_contention_only_adds_time(self):
        def body(comm):
            payload = [np.zeros(4096, dtype=np.uint8)
                       for _ in range(comm.size)]
            yield from comm.alltoall(payload)
            return comm.sim.now

        topo = SingleSwitchTopology(8)
        with_contention = run_spmd(8, body, topology=topo).elapsed
        without = run_spmd(8, body, topology=SingleSwitchTopology(8),
                           contention=False).elapsed
        assert with_contention >= without
