"""LogGP cost model and the interconnect technology catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    INTERCONNECTS,
    LogGPParams,
    available_interconnects,
    get_interconnect,
)


def params(latency=10e-6, overhead=1e-6, gap=2e-6, bandwidth=1e8):
    return LogGPParams(latency=latency, overhead=overhead, gap=gap,
                       gap_per_byte=1.0 / bandwidth)


class TestLogGP:
    def test_bandwidth_is_reciprocal_gap(self):
        assert params(bandwidth=2.5e8).bandwidth == pytest.approx(2.5e8)

    def test_zero_byte_message_pays_startup(self):
        p = params()
        assert p.message_time(0) == pytest.approx(2e-6 + 10e-6)

    def test_message_time_linear_in_size(self):
        p = params()
        small = p.message_time(1_000)
        large = p.message_time(2_000)
        assert large - small == pytest.approx(1_000 * p.gap_per_byte)

    def test_effective_bandwidth_approaches_asymptote(self):
        p = params()
        assert p.effective_bandwidth(64) < 0.5 * p.bandwidth
        assert p.effective_bandwidth(100_000_000) > 0.95 * p.bandwidth

    def test_n_half_delivers_half_bandwidth(self):
        p = params()
        n_half = p.n_half()
        assert p.effective_bandwidth(int(n_half)) == pytest.approx(
            p.bandwidth / 2, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogGPParams(latency=-1, overhead=0, gap=0, gap_per_byte=1e-8)
        with pytest.raises(ValueError):
            LogGPParams(latency=0, overhead=0, gap=0, gap_per_byte=0)
        with pytest.raises(ValueError):
            params().message_time(-1)
        with pytest.raises(ValueError):
            params().effective_bandwidth(0)

    def test_scaled(self):
        p = params()
        better = p.scaled(latency_factor=0.5, bandwidth_factor=4.0)
        assert better.latency == pytest.approx(p.latency / 2)
        assert better.bandwidth == pytest.approx(p.bandwidth * 4)
        with pytest.raises(ValueError):
            p.scaled(latency_factor=0.0)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_message_time_monotone_in_size(self, nbytes):
        p = params()
        assert p.message_time(nbytes + 1) >= p.message_time(nbytes)


class TestCatalog:
    def test_expected_technologies_present(self):
        for name in ("fast_ethernet", "gigabit_ethernet", "myrinet_2000",
                     "infiniband_1x", "infiniband_4x", "infiniband_12x",
                     "optical_circuit"):
            assert name in INTERCONNECTS

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="infiniband_4x"):
            get_interconnect("carrier_pigeon")

    def test_generation_ordering(self):
        """Each IB generation is strictly faster than the last; optics top
        the bandwidth chart; ethernet brings up the latency rear."""
        ib1 = get_interconnect("infiniband_1x").loggp
        ib4 = get_interconnect("infiniband_4x").loggp
        ib12 = get_interconnect("infiniband_12x").loggp
        optical = get_interconnect("optical_circuit").loggp
        feth = get_interconnect("fast_ethernet").loggp
        assert ib1.bandwidth < ib4.bandwidth < ib12.bandwidth < optical.bandwidth
        assert feth.latency > ib4.latency

    def test_era_latency_magnitudes(self):
        """Sanity against published MPI-level numbers of the era."""
        assert 20e-6 < INTERCONNECTS["gigabit_ethernet"].loggp.message_time(0) < 60e-6
        assert 3e-6 < INTERCONNECTS["infiniband_4x"].loggp.message_time(0) < 10e-6

    def test_availability_filter(self):
        names_2000 = {t.name for t in available_interconnects(2000.0)}
        assert "infiniband_4x" not in names_2000
        assert "fast_ethernet" in names_2000
        names_2007 = {t.name for t in available_interconnects(2007.0)}
        assert names_2007 == set(INTERCONNECTS)

    def test_availability_sorted_by_port_cost(self):
        techs = available_interconnects(2007.0)
        costs = [t.cost_per_port for t in techs]
        assert costs == sorted(costs)

    def test_only_optics_circuit_switched(self):
        for name, tech in INTERCONNECTS.items():
            assert tech.is_circuit_switched == (name == "optical_circuit")
