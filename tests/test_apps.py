"""Application kernels: numerical correctness against serial references,
plus the virtual-time charging model."""

import numpy as np
import pytest

from repro import RandomStreams
from repro.apps import (
    ComputeCharge,
    run_cg,
    run_fft2d,
    run_nbody,
    run_stencil,
    run_sweep,
    serial_stencil_reference,
)
from repro.apps.nbody import direct_forces_reference
from repro.apps.sweep import sweep_task_value
from repro.nodes import make_node


class TestComputeCharge:
    def test_flat_rate(self):
        charge = ComputeCharge(effective_flops=2e9)
        assert charge.seconds(4e9) == pytest.approx(2.0)
        assert charge.seconds(0.0) == 0.0

    def test_node_roofline_used(self, nominal):
        node = make_node("conventional", nominal, 2005)
        charge = ComputeCharge(node=node)
        # Memory-bound phase: time set by bandwidth, not peak.
        memory_bound = charge.seconds(flops=1e6, bytes_moved=1e9)
        assert memory_bound == pytest.approx(1e9 / node.memory_bandwidth,
                                             rel=0.01)
        # Compute-bound phase: time set by peak.
        compute_bound = charge.seconds(flops=1e12, bytes_moved=1e6)
        assert compute_bound == pytest.approx(1e12 / node.peak_flops, rel=0.01)

    def test_exclusive_arguments(self, nominal):
        node = make_node("conventional", nominal, 2005)
        with pytest.raises(ValueError):
            ComputeCharge(node=node, effective_flops=1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeCharge(effective_flops=-1.0)
        with pytest.raises(ValueError):
            ComputeCharge().seconds(-1.0)


class TestStencil:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 7])
    def test_matches_serial_reference(self, ranks):
        result = run_stencil(ranks, n=24, iterations=8)
        assert np.allclose(result.grid, serial_stencil_reference(24, 8))

    def test_boundary_rows_fixed(self):
        result = run_stencil(2, n=16, iterations=5)
        assert np.all(result.grid[0, :] == 1.0)
        assert np.all(result.grid[-1, :] == 0.0)

    def test_more_ranks_faster_on_big_grids(self):
        """On a grid large enough for compute to dominate the halo cost,
        parallelism must pay (small grids legitimately do not scale)."""
        slow = run_stencil(1, n=256, iterations=4, technology="infiniband_4x")
        fast = run_stencil(8, n=256, iterations=4, technology="infiniband_4x")
        assert fast.elapsed < slow.elapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stencil(1, n=3, iterations=1)
        with pytest.raises(ValueError):
            run_stencil(20, n=16, iterations=1)
        with pytest.raises(ValueError):
            run_stencil(2, n=16, iterations=0)


class TestCg:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 5])
    def test_solves_laplacian(self, ranks):
        result = run_cg(ranks, n=80)
        assert result.converged
        assert np.allclose(result.x, 1.0, atol=1e-5)
        assert result.residual < 1e-8

    def test_iterations_reasonable(self):
        """CG on the 1D Laplacian converges in <= n iterations."""
        result = run_cg(4, n=64)
        assert result.iterations <= 64

    def test_algorithms_agree_numerically(self):
        reference = run_cg(4, n=64, allreduce_algorithm="recursive_doubling")
        ring = run_cg(4, n=64, allreduce_algorithm="ring")
        assert reference.iterations == ring.iterations
        assert np.allclose(reference.x, ring.x)

    def test_latency_sensitivity(self):
        """CG is allreduce-bound: a high-latency network hurts it far
        more than its tiny bandwidth needs would suggest."""
        fast = run_cg(8, n=128, technology="quadrics_elan3")
        slow = run_cg(8, n=128, technology="fast_ethernet")
        assert slow.elapsed > 5 * fast.elapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            run_cg(8, n=4)
        with pytest.raises(ValueError):
            run_cg(2, n=16, max_iterations=0)


class TestFft:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_numpy_fft2(self, ranks):
        result = run_fft2d(ranks, n=32, seed=7)
        reference = np.fft.fft2(
            RandomStreams(7).fresh("apps.fft.input").standard_normal((32, 32)))
        assert np.allclose(result.spectrum, reference)

    def test_uneven_partition(self):
        result = run_fft2d(3, n=32, seed=1)
        reference = np.fft.fft2(
            RandomStreams(1).fresh("apps.fft.input").standard_normal((32, 32)))
        assert np.allclose(result.spectrum, reference)

    def test_bisection_sensitivity(self):
        """FFT's alltoall rewards bandwidth: IB beats GigE by a large
        factor once communication dominates."""
        charge = ComputeCharge(effective_flops=3e9)
        fast = run_fft2d(8, n=512, charge=charge,
                         technology="infiniband_12x")
        slow = run_fft2d(8, n=512, charge=charge,
                         technology="gigabit_ethernet")
        assert slow.elapsed > 3 * fast.elapsed


class TestNbody:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_matches_direct_forces(self, ranks):
        result = run_nbody(ranks, n=48, seed=3)
        assert np.allclose(result.forces, direct_forces_reference(48, 3),
                           rtol=1e-10)

    def test_momentum_conservation(self):
        """Newton's third law: forces are per unit target mass, so the
        *mass-weighted* total must vanish."""
        from repro.apps.nbody import make_particles

        result = run_nbody(4, n=64)
        _positions, masses = make_particles(64, seed=0)
        momentum_rate = (masses[:, None] * result.forces).sum(axis=0)
        assert np.allclose(momentum_rate, 0.0, atol=1e-8)

    def test_network_insensitive(self):
        """Compute-bound: at a size where compute dominates, interconnect
        choice moves the needle by far less than for FFT."""
        fast = run_nbody(4, n=512, technology="infiniband_4x")
        slow = run_nbody(4, n=512, technology="gigabit_ethernet")
        assert slow.elapsed < 1.3 * fast.elapsed


class TestSweep:
    def test_all_tasks_correct(self):
        result = run_sweep(4, tasks=30)
        assert len(result.values) == 30
        for task, value in enumerate(result.values):
            assert value == pytest.approx(sweep_task_value(task))

    def test_every_task_assigned_once(self):
        result = run_sweep(5, tasks=23)
        assert sum(result.tasks_per_worker.values()) == 23

    def test_more_workers_than_tasks(self):
        result = run_sweep(8, tasks=3)
        assert sum(result.tasks_per_worker.values()) == 3

    def test_dynamic_beats_static_imbalance(self):
        """Self-scheduling keeps *work* imbalance small despite the 7x
        task-cost spread (task counts diverge by design)."""
        result = run_sweep(5, tasks=200)
        assert result.load_imbalance < 1.1
        counts = result.tasks_per_worker.values()
        assert max(counts) > min(counts)  # counts DO diverge

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(1, tasks=5)
        with pytest.raises(ValueError):
            run_sweep(3, tasks=0)
