"""Observability must never perturb the simulation it watches.

The overhead-regression contract: a fixed workload run with the null
observability and again with a recording one must deliver bit-identical
event order, timings and application answers.  The recording run may
only *add* data on the side.
"""

import numpy as np

from repro.fault.campaign import run_campaign, run_workload
from repro.messaging import CommConfig
from repro.messaging.program import make_world
from repro.network import FabricFaultPlan
from repro.obs import Observability
from repro.sim import RandomStreams, Simulator
from repro.sim.trace import RecordingTracer
from tests.conftest import RING, drive_ring_exchange, make_summa_spec


def lossy_ring_run(obs=None):
    """A fixed lossy ring exchange with every delivered event recorded;
    returns (event rows, payloads, final virtual time)."""
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer, obs=obs)
    streams = RandomStreams(3)
    plan = FabricFaultPlan(drop_probability=0.3,
                           rng=streams.get("net.loss"))
    world = make_world(RING, sim=sim, config=CommConfig(reliable=True),
                      streams=streams, fault_plan=plan)
    got = drive_ring_exchange(world, rounds=3)
    return tracer.records, got, sim.now


class TestNullVersusRecording:
    def test_event_order_and_answers_bit_identical(self):
        null_records, null_got, null_now = lossy_ring_run(obs=None)
        obs = Observability()
        rec_records, rec_got, rec_now = lossy_ring_run(obs=obs)
        assert rec_records == null_records  # same events, same order
        assert rec_got == null_got
        assert rec_now == null_now
        assert obs.spans and len(obs.metrics) > 0  # it did record

    def test_workload_outcome_identical_with_and_without_obs(self):
        spec = make_summa_spec()
        null_outcome = run_workload(spec)
        obs_outcome = run_workload(spec, obs=Observability())
        assert obs_outcome.elapsed == null_outcome.elapsed
        assert obs_outcome.fault_trace == null_outcome.fault_trace
        assert obs_outcome.comm_stats == null_outcome.comm_stats
        assert obs_outcome.fabric_counters == null_outcome.fabric_counters
        assert np.array_equal(obs_outcome.answers[0],
                              null_outcome.answers[0])


class TestInstrumentedCampaign:
    def test_answers_match_doubles_as_noninterference_proof(self):
        """run_campaign instruments only the faulty run, so the
        bit-identical verdict compares an instrumented execution against
        an uninstrumented reference."""
        obs = Observability()
        report = run_campaign(make_summa_spec(), obs=obs)
        assert report.answers_match
        assert obs.spans, "the faulty run was supposed to be instrumented"

    def test_same_seed_same_span_stream(self):
        def spans():
            obs = Observability()
            run_workload(make_summa_spec(), obs=obs)
            obs.finalize()
            return [(s.span_id, s.name, s.track, s.start, s.end,
                     s.parent_id, s.status) for s in obs.spans]

        assert spans() == spans()
