"""The experiment result cache and fleet runner: hit accounting,
code/config/seed invalidation, corruption fallback, byte-identical
warm-vs-cold summaries, shard-count independence, and divergence
detection — mirroring tests/test_lint_cache.py for the xp layer."""

import json
from pathlib import Path

import pytest

from repro.lint.engine import import_closure, tree_fingerprint
from repro.xp import (
    ExperimentSpec,
    PointSpec,
    ResultCache,
    canonical_json,
    code_fingerprint,
    point_seed,
    run_fleet,
    write_bench_artifact,
)

# -- synthetic experiment -----------------------------------------------------
#
# Module-level run functions: sharded points cross a process-pool
# boundary, so they must pickle by reference (tests/ is a package).


def toy_run(config, seed):
    """Deterministic toy point: summary derived from config and seed."""
    return {"value": int(config["x"]) * 2, "seed": seed}


_FLAKY_CALLS = []


def flaky_run(config, seed):
    """Nondeterministic toy: a different summary every in-process call."""
    _FLAKY_CALLS.append(seed)
    return {"calls": len(_FLAKY_CALLS)}


#: Synthetic source tree: entry imports core (transitively via the
#: package __init__'s relative import too); other.py stays outside the
#: closure.
_TREE = {
    "pkg/__init__.py": '"""Pkg."""\nfrom . import core\n',
    "pkg/core.py": '"""Core."""\nVALUE = 1\n',
    "pkg/entry.py": '"""Entry."""\nimport pkg.core\n',
    "pkg/other.py": '"""Other."""\nUNRELATED = True\n',
}


def make_src(tmp_path):
    """Write the synthetic package tree; returns its src root."""
    src = tmp_path / "src"
    for rel, text in sorted(_TREE.items()):
        path = src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return src


def toy_spec(points=None, deterministic=True, run=toy_run):
    return ExperimentSpec(
        name="toy", run=run,
        points=points or (PointSpec(name="a", config={"x": 1}),
                          PointSpec(name="b", config={"x": 2})),
        code_roots=("pkg/entry.py",),
        deterministic=deterministic,
    )


def fleet(tmp_path, src, **kwargs):
    kwargs.setdefault("cache", ResultCache(tmp_path / "xp-cache"))
    return run_fleet([toy_spec()], seed=11, src_root=src, **kwargs)


# -- import closure -----------------------------------------------------------

class TestImportClosure:
    def test_closure_follows_transitive_imports(self, tmp_path):
        src = make_src(tmp_path)
        shas = import_closure([src / "pkg" / "entry.py"], src)
        assert set(shas) == {"pkg/entry.py", "pkg/__init__.py",
                             "pkg/core.py"}

    def test_closure_excludes_unimported_files(self, tmp_path):
        src = make_src(tmp_path)
        shas = import_closure([src / "pkg" / "entry.py"], src)
        assert "pkg/other.py" not in shas

    def test_closure_resolves_member_origins(self, tmp_path):
        src = make_src(tmp_path)
        (src / "pkg" / "entry.py").write_text(
            '"""Entry."""\nfrom pkg.core import VALUE\n')
        shas = import_closure([src / "pkg" / "entry.py"], src)
        assert "pkg/core.py" in shas

    def test_closure_ignores_stdlib_and_third_party(self, tmp_path):
        src = make_src(tmp_path)
        (src / "pkg" / "entry.py").write_text(
            '"""Entry."""\nimport json\nimport collections.abc\n')
        shas = import_closure([src / "pkg" / "entry.py"], src)
        assert set(shas) == {"pkg/entry.py"}

    def test_fingerprint_changes_with_closure_content(self, tmp_path):
        src = make_src(tmp_path)
        before = code_fingerprint(("pkg/entry.py",), src)
        (src / "pkg" / "core.py").write_text('"""Core."""\nVALUE = 2\n')
        assert code_fingerprint(("pkg/entry.py",), src) != before

    def test_fingerprint_stable_against_outside_edits(self, tmp_path):
        src = make_src(tmp_path)
        before = code_fingerprint(("pkg/entry.py",), src)
        (src / "pkg" / "other.py").write_text('"""Other."""\nX = 9\n')
        assert code_fingerprint(("pkg/entry.py",), src) == before


# -- seeds --------------------------------------------------------------------

class TestPointSeed:
    def test_deterministic_across_calls(self):
        assert point_seed(1, "e", "p") == point_seed(1, "e", "p")

    def test_distinct_per_point_and_experiment_and_seed(self):
        seeds = {point_seed(s, e, p)
                 for s in (0, 1) for e in ("e1", "e2")
                 for p in ("p1", "p2")}
        assert len(seeds) == 8


# -- cache hits + invalidation ------------------------------------------------

class TestCacheHits:
    def test_cold_run_has_no_hits_and_populates(self, tmp_path):
        src = make_src(tmp_path)
        result = fleet(tmp_path, src)
        assert result.hits == 0 and result.misses == 2
        entries = list((tmp_path / "xp-cache" / "toy").glob("*.json"))
        assert len(entries) == 2

    def test_warm_run_hits_every_point_with_identical_summaries(
            self, tmp_path):
        src = make_src(tmp_path)
        cold = fleet(tmp_path, src)
        warm = fleet(tmp_path, src)
        assert warm.hits == warm.points == 2
        assert warm.hit_rate == 1.0
        # Byte-identical, in the canonical form the cache contract is
        # defined over.
        assert (canonical_json(warm.summaries())
                == canonical_json(cold.summaries()))

    def test_code_edit_invalidates_affected_experiment(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        (src / "pkg" / "core.py").write_text('"""Core."""\nVALUE = 2\n')
        result = fleet(tmp_path, src)
        assert result.hits == 0 and result.misses == 2

    def test_edit_outside_closure_keeps_points_warm(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        (src / "pkg" / "other.py").write_text('"""Other."""\nX = 9\n')
        result = fleet(tmp_path, src)
        assert result.hits == 2

    def test_config_edit_invalidates_that_point_only(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        changed = [toy_spec(points=(
            PointSpec(name="a", config={"x": 1}),
            PointSpec(name="b", config={"x": 3}),   # was x=2
        ))]
        result = run_fleet(changed, seed=11, src_root=src,
                           cache=ResultCache(tmp_path / "xp-cache"))
        assert result.hits == 1 and result.misses == 1
        assert [r.point for r in result.results if not r.cached] == ["b"]

    def test_fleet_seed_is_part_of_the_key(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        result = run_fleet([toy_spec()], seed=12, src_root=src,
                           cache=ResultCache(tmp_path / "xp-cache"))
        assert result.hits == 0

    def test_no_cache_object_recomputes_silently(self, tmp_path):
        src = make_src(tmp_path)
        result = fleet(tmp_path, src, cache=None)
        assert result.hits == 0 and result.divergences == []


# -- corruption ---------------------------------------------------------------

class TestCorruption:
    def _entries(self, tmp_path):
        return sorted((tmp_path / "xp-cache" / "toy").glob("*.json"))

    def test_truncated_entry_recovers_cold(self, tmp_path):
        src = make_src(tmp_path)
        cold = fleet(tmp_path, src)
        victim = self._entries(tmp_path)[0]
        victim.write_text(victim.read_text()[:20])
        result = fleet(tmp_path, src)
        assert result.hits == 1 and result.misses == 1
        assert (canonical_json(result.summaries())
                == canonical_json(cold.summaries()))
        # The recomputed point was re-stored intact.
        assert fleet(tmp_path, src).hits == 2

    def test_garbage_entry_recovers_cold(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        victim = self._entries(tmp_path)[0]
        victim.write_text('{"not": "an entry"}')
        assert fleet(tmp_path, src).misses == 1

    def test_identity_echo_mismatch_is_a_miss(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        victim = self._entries(tmp_path)[0]
        data = json.loads(victim.read_text())
        data["point"] = "somebody-else"
        victim.write_text(json.dumps(data))
        assert fleet(tmp_path, src).misses == 1

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        src = make_src(tmp_path)
        fleet(tmp_path, src)
        leftovers = list((tmp_path / "xp-cache").rglob("*.tmp"))
        assert leftovers == []


# -- sharding -----------------------------------------------------------------

class TestSharding:
    def test_shard_count_independence(self, tmp_path):
        """Same seed, -j 1 vs -j 4: identical merged results."""
        src = make_src(tmp_path)
        points = tuple(PointSpec(name=f"p{i}", config={"x": i})
                       for i in range(8))
        serial = run_fleet([toy_spec(points=points)], seed=5,
                           src_root=src,
                           cache=ResultCache(tmp_path / "c1"), jobs=1)
        sharded = run_fleet([toy_spec(points=points)], seed=5,
                            src_root=src,
                            cache=ResultCache(tmp_path / "c2"), jobs=4)
        assert (canonical_json(serial.summaries())
                == canonical_json(sharded.summaries()))
        assert ([(r.experiment, r.point, r.seed) for r in serial.results]
                == [(r.experiment, r.point, r.seed)
                    for r in sharded.results])

    def test_sharded_cold_then_serial_warm(self, tmp_path):
        src = make_src(tmp_path)
        cache = ResultCache(tmp_path / "xp-cache")
        cold = run_fleet([toy_spec()], seed=11, src_root=src,
                         cache=cache, jobs=4)
        warm = run_fleet([toy_spec()], seed=11, src_root=src,
                         cache=cache, jobs=1)
        assert warm.hits == 2
        assert (canonical_json(warm.summaries())
                == canonical_json(cold.summaries()))


# -- divergence ---------------------------------------------------------------

class TestDivergence:
    def test_no_cache_mode_flags_divergent_summary(self, tmp_path):
        src = make_src(tmp_path)
        cache = ResultCache(tmp_path / "xp-cache")
        spec = toy_spec()
        code = code_fingerprint(spec.code_roots, src)
        seed = point_seed(11, "toy", "a")
        cache.put("toy", "a", code, {"x": 1}, seed, {"value": 999,
                                                     "seed": seed})
        result = run_fleet([spec], seed=11, src_root=src, cache=cache,
                           serve_hits=False)
        assert len(result.divergences) == 1
        assert result.divergences[0].point == "a"
        assert result.exit_code == 1
        # The verification pass refreshed the entry with the truth.
        follow_up = run_fleet([spec], seed=11, src_root=src,
                              cache=cache, serve_hits=False)
        assert follow_up.divergences == []

    def test_matching_recompute_is_not_divergence(self, tmp_path):
        src = make_src(tmp_path)
        cache = ResultCache(tmp_path / "xp-cache")
        run_fleet([toy_spec()], seed=11, src_root=src, cache=cache)
        verify = run_fleet([toy_spec()], seed=11, src_root=src,
                           cache=cache, serve_hits=False)
        assert verify.hits == 0          # everything recomputed
        assert verify.divergences == []  # and everything matched
        assert verify.exit_code == 0

    def test_nondeterministic_experiments_exempt(self, tmp_path):
        src = make_src(tmp_path)
        cache = ResultCache(tmp_path / "xp-cache")
        spec = ExperimentSpec(
            name="toy", run=flaky_run,
            points=(PointSpec(name="a", config={"x": 1}),),
            code_roots=("pkg/entry.py",), deterministic=False)
        run_fleet([spec], seed=11, src_root=src, cache=cache)
        verify = run_fleet([spec], seed=11, src_root=src, cache=cache,
                           serve_hits=False)
        assert verify.divergences == []  # timing points never diverge
        assert verify.exit_code == 0


# -- artifacts ----------------------------------------------------------------

class TestArtifacts:
    def test_write_is_atomic_and_deterministic(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_artifact(path, {"results": {"a": 1}},
                             required=("results",))
        assert json.loads(path.read_text())["results"] == {"a": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_refuses_missing_required_section(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        with pytest.raises(ValueError, match="missing or empty"):
            write_bench_artifact(path, {"other": 1},
                                 required=("results",))
        assert not path.exists()

    def test_refuses_empty_required_section(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        with pytest.raises(ValueError, match="results"):
            write_bench_artifact(path, {"results": {}},
                                 required=("results",))

    def test_refusal_preserves_previous_complete_artifact(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_artifact(path, {"results": {"a": 1}},
                             required=("results",))
        with pytest.raises(ValueError):
            write_bench_artifact(path, {"results": {}},
                                 required=("results",))
        assert json.loads(path.read_text())["results"] == {"a": 1}


# -- registered experiments ---------------------------------------------------

class TestRegistry:
    def test_registry_names_and_selection(self):
        from repro.xp import EXPERIMENTS, get_experiments

        names = [spec.name for spec in EXPERIMENTS]
        assert names == [
            "e20_fault_campaigns", "e21_detection_tradeoff",
            "e22_jobs_service", "e23_gossip_membership",
            "e01_tech_curves", "e02_petaflops_crossing",
            "e03_node_architectures", "e04_interconnects",
            "e05_app_scaling", "e06_density", "e07_scheduling",
            "e08_fault_scale", "e09_checkpoint_ablation",
            "e10_pim_ablation", "e11_cost_performance",
            "e12_top500_extrapolation", "e13_ablations",
            "e14_checkpoint_io_wall", "e15_fault_aware_operation",
            "e16_history_validation", "e17_fleet_evolution",
            "perf_engine",
        ]
        assert len(set(names)) == len(names)
        assert [s.name for s in get_experiments(["perf_engine"])] \
            == ["perf_engine"]
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiments(["nope"])

    def test_registered_code_roots_exist_and_fingerprint(self):
        from repro.xp import EXPERIMENTS
        from repro.xp.fingerprint import default_src_root

        src = default_src_root()
        for spec in EXPERIMENTS:
            for root in spec.code_roots:
                assert (src / root).is_file(), root
            digest = code_fingerprint(spec.code_roots, src)
            assert len(digest) == 64

    def test_perf_engine_point_runs(self):
        from repro.xp.experiments import perf_engine_run

        summary = perf_engine_run({"queue": "wheel", "events": 500}, 3)
        assert summary["events"] == 500
        assert summary["events_per_second"] > 0
