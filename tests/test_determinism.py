"""Whole-stack determinism: every experiment path is exactly repeatable.

Reproducibility is a stated design property (DESIGN.md): same seeds and
parameters must give bit-identical results, because the benchmark suite's
assertions are only meaningful if reruns agree.
"""

import numpy as np

from repro import (
    ExponentialFailures,
    RandomStreams,
    SUM,
    WorkloadGenerator,
    WorkloadParams,
    get_policy,
    run_spmd,
)
from repro.apps import (
    run_cg,
    run_fft2d,
    run_nbody,
    run_sample_sort,
    run_stencil2d,
    run_summa,
)
from repro.fault import CheckpointParams, simulate_checkpoint_run
from repro.scheduler import BatchSimulator, FaultyBatchSimulator, evaluate_schedule


class TestVirtualTimeDeterminism:
    def test_collective_program_bitwise_repeatable(self):
        def body(comm):
            total = yield from comm.allreduce(
                np.arange(100.0) * comm.rank, SUM, algorithm="ring")
            yield from comm.barrier()
            return float(total.sum()), comm.sim.now

        runs = [run_spmd(8, body, technology="infiniband_4x")
                for _ in range(2)]
        assert runs[0].results == runs[1].results
        assert runs[0].elapsed == runs[1].elapsed
        assert runs[0].finish_times == runs[1].finish_times

    def test_application_kernels_repeatable(self):
        first = run_stencil2d(4, n=32, iterations=4)
        second = run_stencil2d(4, n=32, iterations=4)
        assert first.elapsed == second.elapsed
        assert np.array_equal(first.grid, second.grid)

        cg_a = run_cg(4, n=128)
        cg_b = run_cg(4, n=128)
        assert cg_a.elapsed == cg_b.elapsed
        assert cg_a.iterations == cg_b.iterations

        fft_a = run_fft2d(4, n=32, seed=3)
        fft_b = run_fft2d(4, n=32, seed=3)
        assert fft_a.elapsed == fft_b.elapsed
        assert np.array_equal(fft_a.spectrum, fft_b.spectrum)

        sort_a = run_sample_sort(4, 2000, seed=9)
        sort_b = run_sample_sort(4, 2000, seed=9)
        assert sort_a.elapsed == sort_b.elapsed
        assert np.array_equal(sort_a.keys, sort_b.keys)


class TestNamedStreamDerivation:
    """All app-kernel randomness routes through RandomStreams: the
    ``seed=`` and ``streams=`` spellings are equivalent, fresh() is
    stateless across calls, and seeds actually matter."""

    def test_fresh_is_deterministic_and_uncached(self):
        streams = RandomStreams(21)
        first = streams.fresh("apps.fft.input").standard_normal(16)
        second = streams.fresh("apps.fft.input").standard_normal(16)
        assert np.array_equal(first, second)
        # Caching would make the second call continue the first stream.
        cached = streams.get("apps.fft.input")
        assert np.array_equal(cached.standard_normal(16), first)

    def test_fresh_streams_are_independent(self):
        streams = RandomStreams(21)
        a = streams.fresh("apps.summa.input").standard_normal(16)
        b = streams.fresh("apps.nbody.particles").standard_normal(16)
        assert not np.array_equal(a, b)

    def test_seed_and_streams_arguments_equivalent(self):
        via_seed = run_fft2d(4, n=32, seed=17)
        via_streams = run_fft2d(4, n=32, streams=RandomStreams(17))
        assert np.array_equal(via_seed.spectrum, via_streams.spectrum)

        sort_seed = run_sample_sort(4, 2000, seed=17)
        sort_streams = run_sample_sort(4, 2000, streams=RandomStreams(17))
        assert np.array_equal(sort_seed.keys, sort_streams.keys)

        summa_seed = run_summa(4, 24, seed=17)
        summa_streams = run_summa(4, 24, streams=RandomStreams(17))
        assert np.array_equal(summa_seed.product, summa_streams.product)

        nbody_seed = run_nbody(4, n=32, seed=17)
        nbody_streams = run_nbody(4, n=32, streams=RandomStreams(17))
        assert np.array_equal(nbody_seed.forces, nbody_streams.forces)

    def test_summa_and_nbody_repeatable(self):
        summa_a = run_summa(4, 24, seed=5)
        summa_b = run_summa(4, 24, seed=5)
        assert summa_a.elapsed == summa_b.elapsed
        assert np.array_equal(summa_a.product, summa_b.product)

        nbody_a = run_nbody(3, n=30, seed=5)
        nbody_b = run_nbody(3, n=30, seed=5)
        assert nbody_a.elapsed == nbody_b.elapsed
        assert np.array_equal(nbody_a.forces, nbody_b.forces)

    def test_app_seeds_matter(self):
        assert not np.array_equal(run_fft2d(2, n=32, seed=1).spectrum,
                                  run_fft2d(2, n=32, seed=2).spectrum)
        assert not np.array_equal(run_sample_sort(2, 500, seed=1).keys,
                                  run_sample_sort(2, 500, seed=2).keys)

    def test_input_independent_of_rank_count(self):
        """The sorted key set depends only on (n, seed, per-rank split),
        never on interleaving — ranks draw from disjoint named streams."""
        four = run_sample_sort(4, 2000, seed=3)
        again = run_sample_sort(4, 2000, seed=3,
                                technology="fast_ethernet")
        assert np.array_equal(four.keys, again.keys)


class TestStochasticDeterminism:
    def test_workload_and_schedule_repeatable(self):
        def run():
            generator = WorkloadGenerator(
                WorkloadParams(max_nodes=64, offered_load=0.8),
                RandomStreams(seed=42))
            jobs = generator.generate(300)
            outcome = BatchSimulator(64, get_policy("easy")).run(jobs)
            return evaluate_schedule(outcome)

        first, second = run(), run()
        assert first.utilization == second.utilization
        assert first.mean_bounded_slowdown == second.mean_bounded_slowdown
        assert first.makespan == second.makespan

    def test_fault_injected_schedule_repeatable(self):
        def run():
            generator = WorkloadGenerator(
                WorkloadParams(max_nodes=32, offered_load=0.7),
                RandomStreams(seed=7))
            jobs = generator.generate(150)
            simulator = FaultyBatchSimulator(
                32, get_policy("easy"),
                node_mtbf_seconds=0.05 * 365.25 * 86400,
                checkpoint_interval=3600.0,
                streams=RandomStreams(seed=13))
            return simulator.run(jobs)

        first, second = run(), run()
        assert first.completions == second.completions
        assert first.failures == second.failures
        assert first.lost_node_seconds == second.lost_node_seconds

    def test_monte_carlo_checkpoint_repeatable(self):
        params = CheckpointParams(50.0, 100.0, 5_000.0)

        def run():
            return simulate_checkpoint_run(
                20_000.0, params, 500.0, ExponentialFailures(5_000.0),
                RandomStreams(5), replication=2)

        first, second = run(), run()
        assert first.makespan == second.makespan
        assert first.failures == second.failures

    def test_different_seeds_differ(self):
        params = CheckpointParams(50.0, 100.0, 5_000.0)
        runs = {
            seed: simulate_checkpoint_run(
                20_000.0, params, 500.0, ExponentialFailures(5_000.0),
                RandomStreams(seed))
            for seed in (1, 2)
        }
        assert runs[1].makespan != runs[2].makespan
