"""Rank failures during communication: what the messaging layer does
when the fault injector reaches into an SPMD program.

2002 MPI semantics: a dead rank takes the job with it (MPI_ABORT); there
is no fault-tolerant MPI here, and these tests pin down that the failure
is *visible and attributable* rather than silently hung — the property
the fault-recovery layer above (checkpoint restart of whole jobs) relies
on.
"""

import numpy as np
import pytest

from repro.fault import ExponentialFailures, FaultInjector
from repro.messaging import SUM, make_world
from repro.sim import Interrupt, RandomStreams


def spawn_ranks(world, body):
    processes = []
    for rank in range(world.size):
        process = world.sim.process(body(world.communicator(rank)),
                                    name=f"rank{rank}")
        process.defused = True
        processes.append(process)
    return processes


class TestRankDeath:
    def test_death_mid_collective_strands_peers(self):
        """Killing one rank inside a barrier leaves the others blocked
        (never silently 'completing' the collective) and the victim's
        failure is an attributable Interrupt."""
        world = make_world(4)
        sim = world.sim

        def body(comm):
            yield from comm.barrier()
            yield from comm.barrier()  # victim dies before this completes
            return "done"

        processes = spawn_ranks(world, body)

        def assassin(sim, victim):
            yield sim.timeout(1e-5)
            victim.interrupt(("failure", 0))

        sim.process(assassin(sim, processes[2]))
        sim.run()

        assert processes[2].triggered and not processes[2].ok
        assert isinstance(processes[2].value, Interrupt)
        survivors = [p for i, p in enumerate(processes) if i != 2]
        assert all(not p.triggered for p in survivors)  # stranded, loudly

    def test_death_before_send_strands_receiver(self):
        world = make_world(2)
        sim = world.sim

        def sender(comm):
            yield comm.sim.timeout(1.0)
            yield from comm.send("late", 1)
            return "sent"

        def receiver(comm):
            payload = yield from comm.recv(0)
            return payload

        send_proc = sim.process(sender(world.communicator(0)))
        send_proc.defused = True
        recv_proc = sim.process(receiver(world.communicator(1)))
        recv_proc.defused = True

        def assassin(sim, victim):
            yield sim.timeout(0.5)
            victim.interrupt("node died")

        sim.process(assassin(sim, send_proc))
        sim.run()
        assert not send_proc.ok
        assert not recv_proc.triggered

    def test_rank_catching_interrupt_can_finish_cleanly(self):
        """A rank that handles the interrupt (an FT-aware application)
        can wind down without corrupting its peers' state."""
        world = make_world(2)
        sim = world.sim

        def resilient(comm):
            try:
                yield comm.sim.timeout(10.0)
            except Interrupt as interrupt:
                # Tell the peer we are bailing out instead of vanishing.
                yield from comm.send(("abort", interrupt.cause), 1, tag=99)
                return "bailed"
            return "normal"

        def peer(comm):
            message = yield from comm.recv(0, tag=99)
            return message

        resilient_proc = sim.process(resilient(world.communicator(0)))
        resilient_proc.defused = True
        peer_proc = sim.process(peer(world.communicator(1)))
        peer_proc.defused = True

        def assassin(sim, victim):
            yield sim.timeout(1.0)
            victim.interrupt("failure-7")

        sim.process(assassin(sim, resilient_proc))
        sim.run()
        assert resilient_proc.value == "bailed"
        assert peer_proc.value == ("abort", "failure-7")

    def test_injector_driven_death_during_allreduce(self, streams):
        """The generic FaultInjector composes with SPMD ranks: with a
        hostile MTBF the victim dies inside the collective machinery and
        the failure carries the injector's cause."""
        world = make_world(4)
        sim = world.sim

        def body(comm):
            total = 0.0
            for _ in range(200):
                total = yield from comm.allreduce(
                    np.ones(64) * comm.rank, SUM)
            return total

        processes = spawn_ranks(world, body)
        injector = FaultInjector(sim, ExponentialFailures(5e-4),
                                 streams.get("kill"))
        injector.attach(processes[1])
        sim.run()
        assert injector.failures_injected >= 1
        assert not processes[1].ok
        assert isinstance(processes[1].value, Interrupt)
        assert processes[1].value.cause[0] == "failure"
