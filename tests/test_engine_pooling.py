"""Event-pooling edge cases: recycling must never be observable.

The plain-mode fast loop recycles delivered fire-and-forget
:class:`~repro.sim.event.Timeout` objects into a shared free pool, and
``Simulator.timeout`` hands them out again.  The optimisation is only
legal if no program can tell: these tests pin the proof obligations —
recycling only provably-unreferenced objects, full state reset on
reuse, reuse across cancellation/interrupt/multi-simulator boundaries,
and the pool capacity bound.
"""

import pytest

from repro.sim import Interrupt, RecordingTracer, Simulator
from repro.sim.event import _POOL_MAX, _TIMEOUT_POOL, Timeout


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Isolate every test from pool state left by earlier tests."""
    _TIMEOUT_POOL.clear()
    yield
    _TIMEOUT_POOL.clear()


class TestRecycling:
    def test_fire_and_forget_timeouts_are_pooled(self):
        sim = Simulator()
        for _ in range(100):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_executed == 100
        assert len(_TIMEOUT_POOL) == 100

    def test_referenced_timeouts_are_never_recycled(self):
        sim = Simulator()
        held = [sim.timeout(1.0) for _ in range(10)]
        sim.run()
        assert len(_TIMEOUT_POOL) == 0
        assert all(t.triggered for t in held)

    def test_reuse_returns_pooled_object_with_fresh_state(self):
        sim = Simulator()
        sim.timeout(1.0, value="old")
        sim.run()
        assert len(_TIMEOUT_POOL) == 1
        pooled = _TIMEOUT_POOL[-1]
        event = sim.timeout(2.5, value="new")
        assert event is pooled
        assert len(_TIMEOUT_POOL) == 0
        assert event.delay == 2.5
        assert event.sim is sim
        assert not event.cancelled
        assert not event.defused
        assert event.ok and event.value == "new"
        assert sim.run() == 3.5

    def test_yielded_timeouts_are_recycled_after_resume(self):
        """A process's yielded timeout is pooled once delivery resumed
        the process and the generator dropped its reference.

        The pool reaches steady state at one or two objects, not 50:
        each recycled timeout is handed straight back out by the next
        ``sim.timeout`` call, so the same object cycles through the
        whole loop and only the tail is left in the pool at the end.
        """
        sim = Simulator()

        def body():
            for _ in range(50):
                yield sim.timeout(1.0)

        sim.process(body())
        sim.run()
        assert sim.events_executed == 52  # bootstrap + 50 timeouts + process
        assert 1 <= len(_TIMEOUT_POOL) <= 2

    def test_generator_held_timeouts_are_not_recycled(self):
        """Holding the yielded timeout in a local defeats recycling —
        the refcount guard sees the generator's reference."""
        sim = Simulator()
        seen = []

        def body():
            for _ in range(5):
                event = sim.timeout(1.0)
                yield event
                seen.append(event.delay)

        sim.process(body())
        sim.run()
        # The last iteration's local survives in the finished frame at
        # most transiently; the point is the loop iterations did not
        # recycle while `event` was live.
        assert seen == [1.0] * 5

    def test_instrumented_mode_never_pools(self):
        """Only the plain fast loop recycles: a traced run must not."""
        sim = Simulator(tracer=RecordingTracer())
        for _ in range(20):
            sim.timeout(1.0)
        sim.run()
        assert len(_TIMEOUT_POOL) == 0


class TestCancellation:
    def test_cancelled_timeouts_are_recycled_and_clock_advances(self):
        sim = Simulator()
        sim.timeout(1.0)
        doomed = [sim.timeout(5.0) for _ in range(10)]
        for event in doomed:
            sim.cancel(event)
        del doomed, event  # drop the only outside references
        final = sim.run()
        # Cancelled entries are reaped (never delivered) but recycled,
        # and the clock advances past them — identically on every queue
        # and loop variant.
        assert sim.events_executed == 1
        assert final == 5.0
        assert len(_TIMEOUT_POOL) == 11

    def test_reuse_after_cancellation_is_clean(self):
        sim = Simulator()
        doomed = sim.timeout(5.0)
        sim.cancel(doomed)
        assert doomed.cancelled
        del doomed
        sim.run()
        assert len(_TIMEOUT_POOL) == 1
        event = sim.timeout(1.0)
        assert not event.cancelled
        waited = []

        def body():
            value = yield event
            waited.append(value)

        sim.process(body())
        sim.run()
        assert waited == [None]

    def test_trailing_cancelled_clock_matches_across_queues(self):
        finals = {}
        for kind in ("heap", "wheel"):
            sim = Simulator(queue=kind)
            sim.timeout(1.0)
            victim = sim.timeout(7.0)
            sim.cancel(victim)
            del victim
            finals[kind] = sim.run()
        assert finals["heap"] == finals["wheel"] == 7.0


class TestInterrupts:
    def test_interrupt_while_waiting_on_recycled_timeout(self):
        """A timeout that went through the pool behaves like a fresh one
        when a waiter on its second life is interrupted."""
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        assert len(_TIMEOUT_POOL) == 1
        outcomes = []

        def sleeper():
            try:
                yield sim.timeout(100.0)  # reuses the pooled object
                outcomes.append("slept")
            except Interrupt as exc:
                outcomes.append(("interrupted", exc.cause, sim.now))

        def poker(victim):
            yield sim.timeout(2.0)
            victim.interrupt("wake")

        victim = sim.process(sleeper())
        sim.process(poker(victim))
        sim.run()
        assert outcomes == [("interrupted", "wake", 3.0)]

    def test_stale_wakeup_from_interrupted_wait_is_recycled(self):
        """The abandoned 100s timeout still fires (to nobody) and is
        then recycled like any other fire-and-forget event."""
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass

        def poker(victim):
            yield sim.timeout(1.0)
            victim.interrupt("wake")

        victim = sim.process(sleeper())
        sim.process(poker(victim))
        final = sim.run()
        # The stale 100s wakeup is the last event on the calendar.
        assert final == 100.0
        # poker's timeout + the stale wakeup both made it back.
        assert len(_TIMEOUT_POOL) >= 2


class TestPoolBoundaries:
    def test_pool_capacity_is_bounded(self):
        _TIMEOUT_POOL.extend(
            Timeout.__new__(Timeout) for _ in range(_POOL_MAX))
        for obj in _TIMEOUT_POOL:
            obj._callbacks = None
            obj.sim = None
            obj._value = None
            obj.defused = False
            obj._status = None
        sim = Simulator()
        # Drain part of the pool through reuse, then deliver: the pool
        # must never exceed its cap.
        for _ in range(1_000):
            sim.timeout(1.0)
        sim.run()
        assert len(_TIMEOUT_POOL) <= _POOL_MAX

    def test_cross_simulator_reuse_is_safe(self):
        first = Simulator()
        first.timeout(1.0, value="a")
        first.run()
        assert len(_TIMEOUT_POOL) == 1
        second = Simulator()
        event = second.timeout(2.0, value="b")
        assert event.sim is second
        assert second.run() == 2.0
        assert first.now == 1.0

    def test_quiesce_with_pooled_events_outstanding(self):
        """quiesce() unwinds parked processes without touching the pool
        or resurrecting recycled events."""
        sim = Simulator()
        for _ in range(10):
            sim.timeout(1.0)

        def parked():
            yield sim.event("never")

        sim.process(parked())
        sim.run()
        assert len(_TIMEOUT_POOL) == 10
        assert sim.quiesce() == 1
        assert len(_TIMEOUT_POOL) == 10
        assert sim.quiesce() == 0
