"""The durable job log: fencing, idempotency, dedup, and the replay
checker.

The load-bearing suite is ``TestExactExpiryInstant``: three runs of
the same race — a worker finishing *exactly* at the lease-expiry
instant — resolved three legal ways depending on what the supervisor
does first.  All three must preserve at-most-once.
"""

import pytest

from repro.jobs import JobLog, JobRequest, JobState, Lease, LeaseTable


def make_request(key="k1", **kwargs):
    base = dict(tenant="acme", key=key, kernel="sum",
                payload=(("a", 1), ("b", 2)), work_seconds=1e-3)
    base.update(kwargs)
    return JobRequest(**base)


def submit_and_grant(log, now=0.0, worker=1, lease_seconds=1.0, key="k1"):
    job_id, dedup = log.submit(now, make_request(key=key))
    assert not dedup
    lease = log.grant(now, job_id, worker, lease_seconds)
    return job_id, lease


class TestSubmission:
    def test_submit_assigns_increasing_ids(self):
        log = JobLog()
        first, _ = log.submit(0.0, make_request(key="a"))
        second, _ = log.submit(0.0, make_request(key="b"))
        assert second == first + 1

    def test_duplicate_submission_dedups_to_same_id(self):
        log = JobLog()
        job_id, dedup = log.submit(0.0, make_request())
        again, redup = log.submit(5.0, make_request())
        assert not dedup and redup
        assert again == job_id
        assert log.dedup_hits == 1
        assert len(log.rows) == 1

    def test_dedup_applies_in_every_state(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert log.submit(0.1, make_request()) == (job_id, True)
        log.apply_effect(0.2, job_id, lease.token, 1, "3")
        assert log.submit(0.3, make_request()) == (job_id, True)
        assert log.completed == 1

    def test_distinct_tenants_are_distinct_jobs(self):
        log = JobLog()
        first, _ = log.submit(0.0, make_request())
        second, _ = log.submit(0.0, make_request(tenant="other"))
        assert first != second


class TestLeaseLifecycle:
    def test_grant_bumps_token_and_attempts(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert lease.token == 1
        row = log.rows[job_id]
        assert row.state is JobState.LEASED
        assert row.attempts == 1
        assert row.expires_at == pytest.approx(1.0)

    def test_renew_extends_live_lease(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert log.renew(0.5, job_id, lease.token, 1.0)
        assert log.rows[job_id].expires_at == pytest.approx(1.5)

    def test_renew_with_stale_token_is_rejected(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        assert log.expire(1.0, job_id)
        log.grant(1.0, job_id, worker=2, lease_seconds=1.0)
        assert not log.renew(1.2, job_id, 1, 1.0)
        assert log.renew_rejections == 1

    def test_expire_before_deadline_raises(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        with pytest.raises(ValueError, match="not yet"):
            log.expire(0.5, job_id)

    def test_requeue_dead_worker_takes_only_their_jobs(self):
        log = JobLog()
        first, _ = submit_and_grant(log, key="a", worker=1)
        second, _ = submit_and_grant(log, key="b", worker=2)
        assert log.requeue_dead_worker(0.5, 1) == [first]
        assert log.rows[first].state is JobState.REQUEUED
        assert log.rows[second].state is JobState.LEASED

    def test_mark_running_rejects_stale_token(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        assert log.expire(1.0, job_id)
        log.grant(1.0, job_id, worker=2, lease_seconds=1.0)
        assert not log.mark_running(1.1, job_id, 1)
        assert log.mark_running(1.1, job_id, 2)


class TestFencedWrites:
    def test_first_write_applies(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert log.apply_effect(0.5, job_id, lease.token, 1, "3") == \
            "applied"
        row = log.rows[job_id]
        assert row.state is JobState.COMPLETED
        assert row.effect.value == "3"

    def test_retransmit_is_duplicate_not_reapplied(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        assert log.apply_effect(0.6, job_id, lease.token, 1, "3") == \
            "duplicate"
        assert log.completed == 1
        assert log.rejections_duplicate == 1

    def test_stale_token_is_rejected(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        log.expire(1.0, job_id)
        log.grant(1.0, job_id, worker=2, lease_seconds=1.0)
        assert log.apply_effect(1.5, job_id, 1, 1, "3") == "stale"
        assert log.rows[job_id].state is JobState.LEASED
        assert log.rejections_stale == 1

    def test_stale_write_after_winner_applied(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        log.expire(1.0, job_id)
        log.grant(1.0, job_id, worker=2, lease_seconds=1.0)
        assert log.apply_effect(1.5, job_id, 2, 2, "3") == "applied"
        assert log.apply_effect(1.6, job_id, 1, 1, "3") == "stale"
        assert log.rows[job_id].effect.token == 2

    def test_write_to_failed_job_is_closed(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.expire(1.0, job_id)
        log.fail(1.0, job_id, "attempts-exhausted")
        assert log.apply_effect(1.5, job_id, lease.token, 1, "3") == \
            "closed"
        assert log.rejections_closed == 1

    def test_never_granted_token_is_corruption(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        with pytest.raises(ValueError, match="ever granted"):
            log.apply_effect(0.5, job_id, 7, 1, "3")


class TestExactExpiryInstant:
    """The worker finishes exactly at the lease-expiry instant.

    At that one timestamp three interleavings are possible, decided
    deterministically by the engine's event order.  Each is legal and
    each preserves at-most-once; these tests pin all three.
    """

    def test_write_drains_first_expiry_becomes_noop(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert log.apply_effect(1.0, job_id, lease.token, 1, "3") == \
            "applied"
        assert log.expire(1.0, job_id) is False
        assert log.expiries == 0
        assert log.check_invariants() == []

    def test_expiry_first_late_write_accepted_under_current_token(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        assert log.expire(1.0, job_id) is True
        # No re-grant yet: token 1 is still the highest ever granted,
        # so the "late" write is not stale (REQUEUED -> COMPLETED).
        assert log.apply_effect(1.0, job_id, lease.token, 1, "3") == \
            "applied"
        assert log.rows[job_id].state is JobState.COMPLETED
        assert log.check_invariants() == []

    def test_expiry_and_regrant_first_late_write_fenced_out(self):
        log = JobLog()
        job_id, _ = submit_and_grant(log)
        assert log.expire(1.0, job_id) is True
        regrant = log.grant(1.0, job_id, worker=2, lease_seconds=1.0)
        assert log.apply_effect(1.0, job_id, 1, 1, "3") == "stale"
        assert log.apply_effect(1.5, job_id, regrant.token, 2, "3") == \
            "applied"
        assert log.completed == 1
        assert log.check_invariants() == []

    def test_lease_expired_uses_closed_deadline(self):
        lease = Lease(job_id=1, worker=1, token=1, granted_at=0.0,
                      expires_at=1.0)
        assert not lease.expired(0.999999)
        assert lease.expired(1.0)


class TestLeaseTable:
    def test_rebuild_from_log_recovers_live_leases(self):
        log = JobLog()
        first, lease_a = submit_and_grant(log, key="a", worker=1)
        second, lease_b = submit_and_grant(log, key="b", worker=2)
        log.mark_running(0.1, second, lease_b.token)
        third, lease_c = submit_and_grant(log, key="c", worker=3)
        log.apply_effect(0.2, third, lease_c.token, 3, "3")
        table = LeaseTable.rebuild(log, 0.5)
        assert sorted(lease.job_id for lease in
                      table.expired(99.0)) == [first, second]
        assert table.get(third) is None
        assert table.busy_workers() == [1, 2]

    def test_double_grant_same_job_raises(self):
        table = LeaseTable()
        lease = Lease(job_id=1, worker=1, token=1, granted_at=0.0,
                      expires_at=1.0)
        table.add(lease)
        with pytest.raises(ValueError, match="already holds"):
            table.add(lease)

    def test_expired_ordering_is_deterministic(self):
        table = LeaseTable()
        for job_id, expires in ((3, 1.0), (1, 1.0), (2, 0.5)):
            table.add(Lease(job_id=job_id, worker=job_id, token=1,
                            granted_at=0.0, expires_at=expires))
        assert [lease.job_id for lease in table.expired(2.0)] == \
            [2, 1, 3]


class TestDurability:
    def test_render_is_byte_stable(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        text = log.render()
        assert text == log.render()
        assert text.endswith("\n")
        assert "effect job=1" in text

    def test_identical_histories_identical_digests(self):
        def build():
            log = JobLog()
            job_id, lease = submit_and_grant(log)
            log.apply_effect(0.5, job_id, lease.token, 1, "3")
            return log
        assert build().digest() == build().digest()

    def test_snapshot_is_independent(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        checkpoint = log.snapshot()
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        assert checkpoint.completed == 0
        assert log.completed == 1
        assert checkpoint.digest() != log.digest()


class TestInvariantChecker:
    def test_clean_history_has_no_violations(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.mark_running(0.1, job_id, lease.token)
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        assert log.check_invariants() == []

    def test_tampered_effect_token_is_caught(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        # Corrupt the materialized row behind the records' back.
        log.rows[job_id].fencing_token = 9
        assert log.check_invariants() != []

    def test_double_effect_is_caught(self):
        log = JobLog()
        job_id, lease = submit_and_grant(log)
        log.apply_effect(0.5, job_id, lease.token, 1, "3")
        # Force a second effect record into the raw stream.
        log._append(0.6, "effect", job_id, ("token", str(lease.token)),
                    ("worker", "1"), ("value", "3"))
        violations = log.check_invariants()
        assert any("effect" in violation for violation in violations)
