"""Analytic collectives: closed-form LogGP aggregates, same answers.

``algorithm="analytic"`` collapses a collective's whole message phase
into one rendezvous plus a closed-form LogGP time, instead of
simulating every point-to-point transfer.  The contract is strict:

* identical *values* to the discrete algorithms (the allreduce fold is
  rank-ordered, so non-commutative effects match recursive doubling's
  deterministic result);
* bitwise-deterministic across same-seed runs;
* barrier semantics preserved (no rank escapes before the last entry);
* refusal to run under a fabric fault plan, because the closed form
  cannot model faults — that must be a loud error, not a wrong answer.
"""

import numpy as np
import pytest

from repro.messaging import MAX, SUM, run_spmd
from repro.network import FabricFaultPlan

SIZES = [1, 2, 3, 4, 5, 8, 16]


class TestBarrier:
    @pytest.mark.parametrize("size", SIZES)
    def test_no_rank_escapes_early(self, size):
        def body(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)  # staggered entry
            entry = comm.sim.now
            yield from comm.barrier(algorithm="analytic")
            return entry, comm.sim.now

        result = run_spmd(size, body)
        entries = [r[0] for r in result.results]
        exits = [r[1] for r in result.results]
        assert min(exits) >= max(entries) - 1e-12

    def test_takes_nonzero_time_for_multiple_ranks(self):
        def body(comm):
            yield from comm.barrier(algorithm="analytic")
            return comm.sim.now

        result = run_spmd(4, body)
        assert all(t > 0.0 for t in result.results)
        # All ranks leave at the same instant: one closed-form cost
        # applied from the last arrival.
        assert len(set(result.results)) == 1


class TestBcast:
    @pytest.mark.parametrize("size", SIZES)
    def test_everyone_gets_root_value(self, size):
        def body(comm):
            payload = {"data": 42} if comm.rank == 0 else None
            received = yield from comm.bcast(payload, root=0,
                                             algorithm="analytic")
            return received

        result = run_spmd(size, body)
        assert all(r == {"data": 42} for r in result.results)

    def test_nonzero_root(self):
        def body(comm):
            payload = f"from{comm.rank}" if comm.rank == 2 else None
            received = yield from comm.bcast(payload, root=2,
                                             algorithm="analytic")
            return received

        result = run_spmd(4, body)
        assert all(r == "from2" for r in result.results)

    def test_array_payload_is_isolated_per_rank(self):
        """In-place writes to a received ndarray must not leak to other
        ranks — the same value-semantics boundary the discrete path's
        ``_isolate`` enforces."""
        def body(comm):
            payload = np.ones(8) if comm.rank == 0 else None
            received = yield from comm.bcast(payload, root=0,
                                             algorithm="analytic")
            received += comm.rank  # in-place mutation
            return float(received.sum())

        result = run_spmd(4, body)
        assert result.results == [8.0 * (1 + rank) for rank in range(4)]


class TestAllreduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_scalar_sum_matches_discrete(self, size):
        def body(comm):
            value = yield from comm.allreduce(float(comm.rank), SUM,
                                              algorithm="analytic")
            return value

        result = run_spmd(size, body)
        expected = size * (size - 1) / 2
        assert all(v == pytest.approx(expected) for v in result.results)

    def test_array_sum_matches_numpy(self):
        def body(comm):
            local = np.arange(64.0) * (comm.rank + 1)
            total = yield from comm.allreduce(local, SUM,
                                              algorithm="analytic")
            return total

        result = run_spmd(8, body)
        expected = np.arange(64.0) * sum(range(1, 9))
        for total in result.results:
            np.testing.assert_allclose(total, expected)

    def test_max_operator(self):
        def body(comm):
            value = yield from comm.allreduce(comm.rank, MAX,
                                              algorithm="analytic")
            return value

        result = run_spmd(6, body)
        assert all(v == 5 for v in result.results)

    def test_values_equal_recursive_doubling(self):
        """The rank-ordered fold reproduces recursive doubling's result
        exactly, including for float payloads where association order
        could matter."""
        def make_body(algorithm):
            def body(comm):
                local = np.linspace(0.1, 7.7, 32) * (comm.rank + 0.3)
                total = yield from comm.allreduce(local, SUM,
                                                  algorithm=algorithm)
                return total
            return body

        analytic = run_spmd(8, make_body("analytic"))
        discrete = run_spmd(8, make_body("recursive_doubling"))
        for a, d in zip(analytic.results, discrete.results):
            np.testing.assert_allclose(a, d)


class TestDeterminism:
    def test_same_seed_double_run_bitwise_identical(self):
        def body(comm):
            yield from comm.barrier(algorithm="analytic")
            value = yield from comm.allreduce(float(comm.rank) * 1.7, SUM,
                                              algorithm="analytic")
            got = yield from comm.bcast(value if comm.rank == 0 else None,
                                        root=0, algorithm="analytic")
            return got, value, comm.sim.now

        first = run_spmd(8, body)
        second = run_spmd(8, body)
        assert first.results == second.results

    def test_fewer_engine_events_than_discrete(self):
        """The whole point: no per-message events."""
        from repro.messaging.program import make_world

        def drive(algorithm):
            world = make_world(16)
            sim = world.sim

            def body(rank):
                comm = world.communicator(rank)
                for _ in range(5):
                    yield from comm.allreduce(float(rank), SUM,
                                              algorithm=algorithm)

            for rank in range(16):
                sim.process(body(rank))
            sim.run()
            return sim.events_executed

        assert drive("analytic") < drive("recursive_doubling") / 4


class TestGuards:
    def test_refuses_fabric_fault_plan(self):
        def body(comm):
            yield from comm.barrier(algorithm="analytic")

        from repro.sim import RandomStreams
        plan = FabricFaultPlan(drop_probability=0.5,
                               rng=RandomStreams(0).get("net.loss"))
        with pytest.raises(ValueError, match="fault plan"):
            run_spmd(4, body, fault_plan=plan)

    def test_unknown_algorithm_still_rejected(self):
        def body(comm):
            yield from comm.allreduce(1.0, SUM, algorithm="magic")

        with pytest.raises(ValueError, match="magic"):
            run_spmd(2, body)

    def test_size_one_is_trivial(self):
        def body(comm):
            yield from comm.barrier(algorithm="analytic")
            value = yield from comm.allreduce(3.5, SUM,
                                              algorithm="analytic")
            got = yield from comm.bcast("x", root=0, algorithm="analytic")
            return value, got

        result = run_spmd(1, body)
        assert result.results == [(3.5, "x")]


class TestSubCommunicators:
    def test_analytic_on_split_halves(self):
        def body(comm):
            sub = yield from comm.split(comm.rank % 2)
            value = yield from sub.allreduce(float(comm.rank), SUM,
                                             algorithm="analytic")
            return value

        result = run_spmd(8, body)
        evens = sum(r for r in range(8) if r % 2 == 0)
        odds = sum(r for r in range(8) if r % 2 == 1)
        for rank, value in enumerate(result.results):
            assert value == (evens if rank % 2 == 0 else odds)

    def test_mixed_discrete_and_analytic_phases(self):
        """Programs can switch per call: discrete where faults matter,
        analytic for bulk-synchronous phases."""
        def body(comm):
            a = yield from comm.allreduce(1.0, SUM,
                                          algorithm="recursive_doubling")
            b = yield from comm.allreduce(a, SUM, algorithm="analytic")
            yield from comm.barrier()
            return b

        result = run_spmd(4, body)
        assert all(v == 16.0 for v in result.results)
