"""2D-decomposed stencil: correctness, grid factorisation, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    ComputeCharge,
    process_grid,
    run_stencil,
    run_stencil2d,
    serial_stencil_reference,
)


class TestProcessGrid:
    @pytest.mark.parametrize("ranks,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)),
        (12, (3, 4)), (16, (4, 4)), (7, (1, 7)), (64, (8, 8)),
    ])
    def test_near_square_factorisation(self, ranks, expected):
        assert process_grid(ranks) == expected

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_factorisation_valid(self, ranks):
        rows, cols = process_grid(ranks)
        assert rows * cols == ranks
        assert rows <= cols


class TestCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 6, 9, 12])
    def test_matches_serial_reference(self, ranks):
        result = run_stencil2d(ranks, n=30, iterations=7)
        assert np.allclose(result.grid, serial_stencil_reference(30, 7))

    def test_matches_1d_decomposition(self):
        """Both decompositions compute the identical answer."""
        one = run_stencil(4, n=24, iterations=5)
        two = run_stencil2d(4, n=24, iterations=5)
        assert np.allclose(one.grid, two.grid)

    def test_boundary_preserved(self):
        result = run_stencil2d(4, n=16, iterations=3)
        assert np.all(result.grid[0, :] == 1.0)
        assert np.all(result.grid[-1, :] == 0.0)
        assert np.all(result.grid[1:, 0] == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stencil2d(4, n=3, iterations=1)
        with pytest.raises(ValueError):
            run_stencil2d(2, n=16, iterations=0)
        with pytest.raises(ValueError):
            run_stencil2d(100, n=8, iterations=1)


class TestSurfaceToVolume:
    def test_2d_moves_fewer_bytes_at_scale(self):
        """The defining property: at 16 ranks the block decomposition's
        halo traffic is well below the slab decomposition's."""
        charge = ComputeCharge(effective_flops=3e9)
        one = run_stencil(16, n=512, iterations=2, charge=charge)
        two = run_stencil2d(16, n=512, iterations=2, charge=charge)
        assert two.bytes_moved if hasattr(two, "bytes_moved") else True
        # Compare via the fabric accounting of a dedicated run.
        from repro.messaging import run_spmd  # noqa: F401 (import check)
        # Indirect but robust: 2D is faster on a slow fabric at scale.
        slow_one = run_stencil(16, n=512, iterations=2, charge=charge,
                               technology="fast_ethernet")
        slow_two = run_stencil2d(16, n=512, iterations=2, charge=charge,
                                 technology="fast_ethernet")
        assert slow_two.elapsed < slow_one.elapsed

    def test_two_ranks_decompositions_equivalent(self):
        """At p=2 the 2D grid degenerates to 1x2 slabs: both codes are
        the same decomposition and should cost about the same."""
        charge = ComputeCharge(effective_flops=3e9)
        one = run_stencil(2, n=256, iterations=3, charge=charge,
                          technology="gigabit_ethernet")
        two = run_stencil2d(2, n=256, iterations=3, charge=charge,
                            technology="gigabit_ethernet")
        assert two.elapsed == pytest.approx(one.elapsed, rel=0.15)

    def test_2d_advantage_grows_with_scale(self):
        """With overlapped nonblocking halos the four smaller edges never
        lose to the two big slabs, and the gap widens as perimeters
        shrink — the E19 shape at test scale."""
        charge = ComputeCharge(effective_flops=3e9)
        ratios = []
        for p in (4, 16):
            one = run_stencil(p, n=512, iterations=2, charge=charge,
                              technology="gigabit_ethernet")
            two = run_stencil2d(p, n=512, iterations=2, charge=charge,
                                technology="gigabit_ethernet")
            ratios.append(one.elapsed / two.elapsed)
        assert ratios[0] >= 0.95
        assert ratios[1] > ratios[0]

    def test_grid_shape_recorded(self):
        result = run_stencil2d(6, n=32, iterations=1)
        assert result.grid_shape == (2, 3)
