"""Engine semantics: determinism, processes, interrupts, run control."""

import pytest

from repro.sim import Interrupt, RecordingTracer, Simulator
from repro.sim.engine import SimulationError


class TestClock:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_until_advances_exactly(self, sim):
        sim.process(self._sleeper(sim, 10.0))
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0
        assert sim.run() == pytest.approx(10.0)

    def test_run_until_past_raises(self, sim):
        sim.process(self._sleeper(sim, 5.0))
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_empty_run_reaches_until(self, sim):
        assert sim.run(until=7.0) == 7.0

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == pytest.approx(3.0)

    def test_max_events_bounds_work(self, sim):
        for _ in range(10):
            sim.timeout(1.0)
        sim.run(max_events=3)
        assert sim.events_executed == 3

    @staticmethod
    def _sleeper(sim, delay):
        yield sim.timeout(delay)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            tracer = RecordingTracer()
            sim = Simulator(tracer=tracer)

            def worker(sim, name, delay):
                yield sim.timeout(delay)
                yield sim.timeout(delay)

            for i in range(20):
                sim.process(worker(sim, f"w{i}", (i % 5) * 0.5), name=f"w{i}")
            sim.run()
            return [(r.time, r.name) for r in tracer.records]

        assert build() == build()

    def test_simultaneous_events_fire_in_schedule_order(self, sim):
        order = []

        def worker(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(worker(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value_is_event_value(self, sim):
        def body(sim):
            yield sim.timeout(1)
            return 99

        assert sim.run_process(body(sim)) == 99

    def test_exception_propagates(self, sim):
        def body(sim):
            yield sim.timeout(1)
            raise KeyError("blown")

        with pytest.raises(KeyError):
            sim.run_process(body(sim))

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_yielding_non_event_fails_cleanly(self, sim):
        def body(sim):
            yield 42

        with pytest.raises(SimulationError, match="must yield Event"):
            sim.run_process(body(sim))

    def test_yielding_foreign_event_fails(self, sim):
        other = Simulator()

        def body(sim):
            yield other.timeout(1)

        with pytest.raises(SimulationError, match="another simulator"):
            sim.run_process(body(sim))

    def test_waiting_on_child_process(self, sim):
        def child(sim):
            yield sim.timeout(2)
            return "child-result"

        def parent(sim):
            result = yield sim.process(child(sim))
            return result, sim.now

        assert sim.run_process(parent(sim)) == ("child-result", 2.0)

    def test_child_failure_propagates_to_parent(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run_process(parent(sim)) == "caught inner"

    def test_deadlock_detected(self, sim):
        def body(sim):
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(body(sim))

    def test_active_process_visible_during_step(self, sim):
        seen = []

        def body(sim):
            seen.append(sim.active_process)
            yield sim.timeout(1)

        process = sim.process(body(sim))
        sim.run()
        assert seen == [process]
        assert sim.active_process is None


class TestInterrupt:
    def test_interrupt_wakes_sleeper_early(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
                return "overslept"
            except Interrupt as interrupt:
                return ("woken", interrupt.cause, sim.now)

        def alarm(sim, victim):
            yield sim.timeout(3)
            victim.interrupt("alarm!")

        victim = sim.process(sleeper(sim))
        sim.process(alarm(sim, victim))
        sim.run()
        assert victim.value == ("woken", "alarm!", 3.0)

    def test_stale_wakeup_after_interrupt_ignored(self, sim):
        """The abandoned timeout fires later and must not resume the
        process a second time."""
        def sleeper(sim):
            try:
                yield sim.timeout(10)
            except Interrupt:
                yield sim.timeout(20)  # outlives the stale timeout at t=10
                return sim.now

        def alarm(sim, victim):
            yield sim.timeout(1)
            victim.interrupt()

        victim = sim.process(sleeper(sim))
        sim.process(alarm(sim, victim))
        sim.run()
        assert victim.value == pytest.approx(21.0)

    def test_interrupting_finished_process_rejected(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        process = sim.process(quick(sim))
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_uncaught_interrupt_fails_process(self, sim):
        def fragile(sim):
            yield sim.timeout(100)

        def alarm(sim, victim):
            yield sim.timeout(1)
            victim.interrupt("no handler")

        victim = sim.process(fragile(sim))
        victim.defused = True
        sim.process(alarm(sim, victim))
        sim.run()
        assert not victim.ok
        assert isinstance(victim.value, Interrupt)

    def test_double_interrupt_delivered_in_order(self, sim):
        causes = []

        def sturdy(sim):
            for _ in range(2):
                try:
                    yield sim.timeout(100)
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)
            return causes

        def alarm(sim, victim):
            yield sim.timeout(1)
            victim.interrupt("first")
            victim.interrupt("second")

        victim = sim.process(sturdy(sim))
        sim.process(alarm(sim, victim))
        sim.run()
        assert victim.value == ["first", "second"]


class TestTracer:
    def test_records_event_stream(self):
        tracer = RecordingTracer()
        sim = Simulator(tracer=tracer)

        def body(sim):
            yield sim.timeout(1.0)

        sim.process(body(sim), name="traced")
        sim.run()
        assert any("timeout" in name for name in tracer.names())
        assert all(r.time >= 0 for r in tracer.records)

    def test_limit_respected(self):
        tracer = RecordingTracer(limit=5)
        sim = Simulator(tracer=tracer)
        for _ in range(50):
            sim.timeout(1.0)
        sim.run()
        assert len(tracer.records) == 5
