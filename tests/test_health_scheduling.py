"""Degraded-mode batch scheduling: zombies, spares, drains, backoff."""

import math

import pytest

from repro.health import (
    DegradedBatchSimulator,
    DrainWindow,
)
from repro.scheduler import (
    FaultyBatchSimulator,
    Job,
    WorkloadGenerator,
    WorkloadParams,
    get_policy,
)
from repro.sim import RandomStreams

YEAR = 365.25 * 86400.0


def workload(count=120, nodes=32, load=0.7, seed=3):
    generator = WorkloadGenerator(
        WorkloadParams(max_nodes=nodes, offered_load=load),
        RandomStreams(seed))
    return generator.generate(count)


def degraded(jobs, **kwargs):
    base = dict(total_nodes=32, policy=get_policy("easy"),
                node_mtbf_seconds=0.05 * YEAR, repair_seconds=7200.0,
                streams=RandomStreams(9))
    base.update(kwargs)
    return DegradedBatchSimulator(**base).run(jobs)


class TestOracleEquivalence:
    def test_zero_detection_matches_oracle_simulator(self):
        """With instantaneous detection, no spares, and no drains, the
        degraded simulator replays the oracle's RNG stream and must
        reproduce its schedule exactly."""
        jobs = workload()
        oracle = FaultyBatchSimulator(
            32, get_policy("easy"), node_mtbf_seconds=0.05 * YEAR,
            repair_seconds=7200.0, checkpoint_interval=3600.0,
            streams=RandomStreams(9)).run(jobs)
        detected = degraded(jobs, detection_seconds=0.0,
                            checkpoint_interval=3600.0)
        assert detected.completions == oracle.completions
        assert detected.failures == oracle.failures
        assert detected.job_kills == oracle.job_kills
        assert detected.goodput_node_seconds == pytest.approx(
            oracle.goodput_node_seconds)
        assert detected.lost_node_seconds == pytest.approx(
            oracle.lost_node_seconds)
        assert detected.zombie_node_seconds == 0.0

    def test_no_failures_clean_run(self):
        jobs = workload(count=80)
        result = degraded(jobs, node_mtbf_seconds=math.inf)
        assert result.failures == 0
        assert result.zombie_node_seconds == 0.0
        assert result.health_log == ()
        assert len(result.completions) == 80


class TestDetectionLatency:
    def test_detection_window_breeds_zombies(self):
        jobs = workload()
        blind = degraded(jobs, detection_seconds=1800.0,
                         checkpoint_interval=3600.0)
        assert blind.job_kills > 0
        assert blind.zombie_node_seconds > 0.0
        assert len(blind.completions) == len(jobs)

    def test_slower_detection_wastes_more(self):
        jobs = workload()

        def waste(detect):
            return degraded(jobs, detection_seconds=detect,
                            checkpoint_interval=3600.0).waste_fraction

        assert waste(3600.0) > waste(0.0)

    def test_lost_work_clocked_at_strike_not_detection(self):
        """Zombie time is pure waste on top of lost work: the checkpoint
        arithmetic must not credit progress made while dead."""
        jobs = workload()
        instant = degraded(jobs, detection_seconds=0.0,
                           checkpoint_interval=3600.0)
        slow = degraded(jobs, detection_seconds=1800.0,
                        checkpoint_interval=3600.0)
        # Same strikes (same stream): per-kill durable credit decided at
        # the strike, so goodput is conserved in both.
        total = sum(job.node_seconds for job in jobs)
        assert instant.goodput_node_seconds == pytest.approx(total,
                                                             rel=1e-9)
        assert slow.goodput_node_seconds == pytest.approx(total, rel=1e-9)

    def test_health_log_records_the_pipeline(self):
        result = degraded(workload(), detection_seconds=1800.0)
        assert result.failures > 0
        log = "\n".join(result.health_log)
        assert "cause=missed-heartbeats" in log
        assert "cause=silence-confirmed" in log
        assert "cause=repaired" in log


class TestSparePool:
    def test_spares_absorb_failures(self):
        jobs = workload()
        bare = degraded(jobs, detection_seconds=900.0)
        pooled = degraded(jobs, detection_seconds=900.0, spare_nodes=4)
        assert pooled.spare_activations > 0
        assert pooled.min_spare_depth < 4
        assert pooled.degraded_node_seconds < bare.degraded_node_seconds
        assert pooled.availability > bare.availability

    def test_depleted_pool_falls_back_to_degraded(self):
        """One spare, many failures: activations stop at the pool and
        later failures still take capacity out."""
        jobs = workload()
        result = degraded(jobs, detection_seconds=900.0, spare_nodes=1,
                          node_mtbf_seconds=0.02 * YEAR)
        assert result.min_spare_depth == 0
        assert result.degraded_node_seconds > 0.0

    def test_node_identity_is_deterministic(self):
        """Strikes take the lowest in-service id: the first suspicion in
        the log is always node 0, and every struck node completes the
        suspected -> dead -> repairing -> healthy cycle."""
        result = degraded(workload(), detection_seconds=900.0,
                          spare_nodes=2)
        assert result.spare_activations > 0
        suspected = [line for line in result.health_log
                     if "cause=missed-heartbeats" in line]
        assert suspected[0].split()[2] == "node=0"
        # Repairs can still be pending when the workload drains, but
        # no node is ever repaired without having been struck first.
        repaired = [line for line in result.health_log
                    if "cause=repaired" in line]
        assert 0 < len(repaired) <= len(suspected)


class TestRequeueBackoff:
    MTBF = 20_000.0
    RUNTIME = 5_000.0
    DETECT = 900.0
    REPAIR = 3_600.0
    BACKOFF = 7_200.0

    def find_seed(self):
        """A seed whose first strike kills the only job mid-run and
        whose second strike lands after every restart of interest
        (mirrors the simulator's RNG draw order: the next-failure gap
        is drawn before the struck-in-use uniform)."""
        horizon = self.DETECT + self.BACKOFF + self.RUNTIME
        for seed in range(500):
            rng = RandomStreams(seed).get("scheduler.failures")
            first = float(rng.exponential(self.MTBF))
            gap = float(rng.exponential(self.MTBF))
            if first < self.RUNTIME and gap > horizon:
                return seed, first
        raise AssertionError("no suitable seed in range")

    def test_backoff_delays_the_restart(self):
        """Single-node machine, one job: the kill, the repair, and the
        requeue are fully deterministic, so the backoff's effect on the
        completion time is exact."""
        seed, struck_at = self.find_seed()

        def run(backoff):
            job = Job(0, 0.0, nodes=1, runtime=self.RUNTIME,
                      estimate=self.RUNTIME)
            return degraded([job], total_nodes=1,
                            node_mtbf_seconds=self.MTBF,
                            detection_seconds=self.DETECT,
                            repair_seconds=self.REPAIR,
                            requeue_backoff_seconds=backoff,
                            streams=RandomStreams(seed))

        detected_at = struck_at + self.DETECT
        # Eager requeue: the restart waits only for the repair.
        eager = run(0.0)
        assert eager.job_kills == 1 and eager.requeues == 1
        assert eager.completions[0][1] == pytest.approx(
            detected_at + self.REPAIR + self.RUNTIME)
        # Backoff beyond the repair: the restart waits for the backoff.
        patient = run(self.BACKOFF)
        assert patient.requeues == 1
        assert patient.completions[0][1] == pytest.approx(
            detected_at + self.BACKOFF + self.RUNTIME)


class TestDrains:
    def test_drain_takes_and_returns_capacity(self):
        job = Job(0, 0.0, nodes=4, runtime=1000.0, estimate=1000.0)
        result = degraded([job], node_mtbf_seconds=math.inf,
                          total_nodes=8,
                          drains=(DrainWindow(100.0, 600.0, nodes=2),))
        assert 0 in result.completions
        assert result.drain_shortfall == 0
        # 2 nodes out for 500 s.
        assert result.degraded_node_seconds == pytest.approx(1000.0)
        log = "\n".join(result.health_log)
        assert "cause=drain" in log and "cause=undrain" in log

    def test_drain_takes_only_free_nodes(self):
        """Demand beyond the free pool is recorded, never forced."""
        job = Job(0, 0.0, nodes=8, runtime=1000.0, estimate=1000.0)
        result = degraded([job], node_mtbf_seconds=math.inf,
                          total_nodes=8,
                          drains=(DrainWindow(100.0, 200.0, nodes=3),))
        assert result.drain_shortfall == 3
        assert result.degraded_node_seconds == 0.0
        assert result.completions[0][1] == pytest.approx(1000.0)

    def test_full_width_job_waits_out_a_drain(self):
        jobs = [Job(0, 0.0, nodes=2, runtime=100.0, estimate=100.0),
                Job(1, 150.0, nodes=8, runtime=100.0, estimate=100.0)]
        result = degraded(jobs, node_mtbf_seconds=math.inf, total_nodes=8,
                          drains=(DrainWindow(120.0, 500.0, nodes=8),))
        # Job 1 needs the whole machine; it must wait for the undrain.
        assert result.completions[1][1] == pytest.approx(600.0)


class TestDeterminism:
    def test_same_seed_same_log(self):
        jobs = workload()

        def log():
            return degraded(jobs, detection_seconds=900.0, spare_nodes=2,
                            checkpoint_interval=3600.0,
                            streams=RandomStreams(9)).health_log

        assert log() == log()

    def test_policies_survive_degraded_capacity(self):
        jobs = workload(count=60)
        for policy in ("fcfs", "easy", "conservative", "sjf"):
            result = degraded(jobs, policy=get_policy(policy),
                              detection_seconds=900.0, spare_nodes=2)
            assert len(result.completions) == 60


class TestValidation:
    def test_constructor_guards(self):
        policy = get_policy("fcfs")
        with pytest.raises(ValueError):
            DegradedBatchSimulator(4, policy, 1e6, detection_seconds=-1.0)
        with pytest.raises(ValueError):
            DegradedBatchSimulator(4, policy, 1e6, spare_nodes=-1)
        with pytest.raises(ValueError):
            DegradedBatchSimulator(4, policy, 1e6,
                                   requeue_backoff_seconds=-1.0)
        with pytest.raises(ValueError):
            DrainWindow(5.0, 5.0)
        with pytest.raises(ValueError):
            DrainWindow(0.0, 1.0, nodes=0)

    def test_empty_workload_raises(self):
        with pytest.raises(ValueError):
            DegradedBatchSimulator(4, get_policy("fcfs"), 1e6).run([])
