"""Detection-driven runs are bit-deterministic: one seed, one history.

Two properties, each across both detector algorithms:

* the canonical health-event log (every membership transition, with
  times rendered to fixed precision) is byte-identical across runs;
* the Chrome trace of an instrumented run is byte-identical, heartbeat
  spans and all.

These are the guardrails that make detector-timeout sweeps (bench E21)
meaningful: any difference between configurations is the *config*, not
run-to-run noise.
"""

import pytest

from repro.fault import run_campaign
from repro.health import DetectionSpec
from repro.obs import Observability, chrome_trace_json, render_metrics
from tests.conftest import make_stencil_spec
from tests.test_fault_detection import CRASH, PARTITION

HB = 1e-4

CONFIGS = {
    "fixed": DetectionSpec(detector="fixed", heartbeat_interval=HB,
                           suspect_after=3 * HB, dead_after=6 * HB),
    "phi": DetectionSpec(detector="phi", heartbeat_interval=HB),
}


def run_once(detector, obs=None):
    """The standard false-suspicion scenario under ``detector``."""
    spec = make_stencil_spec(name=f"det-{detector}",
                             detection=CONFIGS[detector],
                             node_faults=(CRASH,),
                             link_faults=(PARTITION,))
    return run_campaign(spec, obs=obs)


class TestHealthLogDeterminism:
    @pytest.mark.parametrize("detector", sorted(CONFIGS))
    def test_same_seed_byte_identical_health_log(self, detector):
        first = run_once(detector).faulty.detection
        second = run_once(detector).faulty.detection
        log = "\n".join(first.health_log)
        assert log == "\n".join(second.health_log)
        assert log  # non-trivial: the scenario forces transitions
        assert first.detections == second.detections
        assert first.heartbeats_sent == second.heartbeats_sent
        assert first.heartbeats_lost == second.heartbeats_lost

    def test_detector_configs_diverge(self):
        """Sanity: the two algorithms see the same scenario differently
        — determinism is not 'everything is identical'."""
        fixed = run_once("fixed").faulty.detection
        phi = run_once("phi").faulty.detection
        assert fixed.health_log != phi.health_log


class TestTraceDeterminism:
    @pytest.mark.parametrize("detector", sorted(CONFIGS))
    def test_same_seed_byte_identical_chrome_trace(self, detector):
        first, second = Observability(), Observability()
        run_once(detector, obs=first)
        run_once(detector, obs=second)
        text = chrome_trace_json(first)
        assert text == chrome_trace_json(second)
        assert "health" in text  # detection spans made it into the trace

    def test_metrics_dump_identical(self):
        first, second = Observability(), Observability()
        run_once("fixed", obs=first)
        run_once("fixed", obs=second)
        assert render_metrics(first.metrics) == render_metrics(
            second.metrics)
