"""LogGP calibration: the fitter recovers what the catalog generated."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import INTERCONNECTS, get_interconnect
from repro.network.loggp_fit import LogGPFit, fit_loggp
from repro.messaging import measure_and_fit


class TestFitMath:
    def test_exact_synthetic_data(self):
        sizes = [0, 1000, 10_000, 100_000]
        startup, gap = 20e-6, 1e-8
        times = [startup + gap * n for n in sizes]
        fit = fit_loggp(sizes, times)
        assert fit.startup_seconds == pytest.approx(startup, rel=1e-9)
        assert fit.gap_per_byte == pytest.approx(gap, rel=1e-9)
        assert fit.rms_residual == pytest.approx(0.0, abs=1e-12)
        assert fit.bandwidth == pytest.approx(1e8)
        assert fit.n_half == pytest.approx(startup / gap)

    def test_noisy_data_close(self):
        rng = np.random.default_rng(0)
        sizes = np.linspace(0, 1 << 20, 20)
        times = 20e-6 + 1e-9 * sizes
        noisy = times * rng.normal(1.0, 0.02, size=20)
        fit = fit_loggp(sizes.astype(int), noisy)
        assert fit.gap_per_byte == pytest.approx(1e-9, rel=0.1)

    def test_as_params_round_trips_message_time(self):
        fit = LogGPFit(startup_seconds=30e-6, gap_per_byte=1e-9,
                       rms_residual=0.0)
        params = fit.as_params()
        assert params.message_time(0) == pytest.approx(30e-6, rel=0.01)
        assert params.bandwidth == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loggp([1], [1.0])
        with pytest.raises(ValueError):
            fit_loggp([5, 5], [1.0, 1.0])
        with pytest.raises(ValueError):
            fit_loggp([0, 10], [-1.0, 1.0])
        # Decreasing times cannot be LogGP-shaped.
        with pytest.raises(ValueError, match="not LogGP-shaped"):
            fit_loggp([0, 1_000_000], [1.0, 0.5])
        with pytest.raises(ValueError):
            LogGPFit(1e-6, 1e-9, 0.0).as_params(overhead_fraction=1.5)

    @given(st.floats(min_value=1e-6, max_value=1e-3),
           st.floats(min_value=1e-10, max_value=1e-7))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_parameters(self, startup, gap):
        sizes = [0, 4096, 65_536, 1 << 20]
        times = [startup + gap * n for n in sizes]
        fit = fit_loggp(sizes, times)
        assert fit.startup_seconds == pytest.approx(startup, rel=1e-6)
        assert fit.gap_per_byte == pytest.approx(gap, rel=1e-6)


class TestEndToEndCalibration:
    @pytest.mark.parametrize("technology", ["gigabit_ethernet",
                                            "infiniband_4x"])
    def test_fit_recovers_catalog_entry(self, technology):
        """Measuring the simulator and fitting must reproduce the catalog
        parameters that generated the traffic — the stack is
        self-consistent end to end.

        The fitted startup is the *fabric-level* zero-byte cost
        (2o + g + L + hop latency), which exceeds the idealised LogGP
        ``message_time(0)`` by the injection gap and switch hop — the
        same difference real calibrations see between model and wire.
        """
        fit, measurements = measure_and_fit(technology)
        catalog = INTERCONNECTS[technology]
        params = catalog.loggp
        assert fit.bandwidth == pytest.approx(params.bandwidth, rel=0.02)
        fabric_startup = (2 * params.overhead + params.gap + params.latency
                          + catalog.hop_latency)
        assert fit.startup_seconds == pytest.approx(fabric_startup,
                                                    rel=0.15)
        assert len(measurements) == 5

    def test_measured_times_monotone(self):
        _fit, measurements = measure_and_fit("myrinet_2000")
        sizes = sorted(measurements)
        times = [measurements[s] for s in sizes]
        assert times == sorted(times)
