"""Whole-program dataflow rules: the determinism half of the linter.

The file-scope rules (REP001–REP010) check invariants an AST can prove
one module at a time.  This module adds a second, *project* phase: a
:class:`SymbolGraph` built from every scanned module — module-level
definitions classified by value kind, import edges resolved through
:class:`~repro.lint.engine.ImportMap`, and an approximate call graph —
plus three flow-sensitive rules that walk each module with a per-scope
kind environment:

* **REP011** (:class:`UnorderedIterationRule`) — iteration whose order
  the runtime does not define: ``for x in some_set``, comprehensions
  over sets (including sets imported from another module), and unsorted
  filesystem enumeration (``os.listdir``, ``glob.glob``,
  ``Path.iterdir`` …) escaping without a ``sorted(...)`` wrapper.
* **REP012** (:class:`RngAliasRule`) — RNG-stream aliasing: a
  generator derived from :class:`~repro.sim.rng.RandomStreams` stored
  in a module-level global (every importer perturbs one shared stream
  state), or one local generator threaded into two or more process
  spawns (the call graph decides what "spawns" means, so indirection
  through a helper does not hide it).
* **REP013** (:class:`IdentityOrderRule`) — identity-dependent
  ordering: ``id()`` / ``hash()`` (or explicit ``object.__hash__`` /
  ``object.__repr__``) in sort keys, heap entries, or dict keys.
  ``id()`` depends on allocation addresses and ``hash(str)`` is salted
  per process, so any ordering derived from them differs run to run.

The classification lattice is deliberately coarse — ``set``,
``fs-order``, ``rng-streams``, ``rng-generator``, ``ordered``,
``unknown`` — and statements are interpreted in source order per scope
(no fixpoint).  That trades completeness for zero false positives on
idiomatic code: ``sorted(s)`` launders a set into an ordered sequence,
``list(s)`` does not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    ERROR,
    Finding,
    ModuleInfo,
    ProjectRule,
    resolve_dotted,
)

__all__ = [
    "KIND_FS",
    "KIND_GENERATOR",
    "KIND_ORDERED",
    "KIND_SET",
    "KIND_STREAMS",
    "KIND_UNKNOWN",
    "FunctionInfo",
    "GlobalSymbol",
    "IdentityOrderRule",
    "RngAliasRule",
    "SymbolGraph",
    "UnorderedIterationRule",
    "classify",
]

#: Value kinds tracked by the flow environment.
KIND_SET = "set"                  # unordered container (or order-tainted)
KIND_FS = "fs-order"              # unsorted filesystem enumeration
KIND_STREAMS = "rng-streams"      # a RandomStreams registry
KIND_GENERATOR = "rng-generator"  # a Generator drawn from a stream
KIND_ORDERED = "ordered"          # deterministically ordered sequence
KIND_UNKNOWN = "unknown"

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
_FS_DOTTED = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})
#: Order-insensitive consumers: an unsorted enumeration fed straight into
#: one of these cannot leak ordering into results.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all",
})
_SORT_CALLS = frozenset({"sorted", "min", "max"})
_HEAP_PUSH = frozenset({
    "heapq.heappush", "heapq.heappushpop", "heapq.heapreplace",
})
_HEAP_NSORT = frozenset({"heapq.nsmallest", "heapq.nlargest"})


def _in_test_or_benchmark(module: ModuleInfo) -> bool:
    """True for test/benchmark files, which may do hacky things freely."""
    parts = module.rel.split("/")
    return (parts[0] in ("tests", "benchmarks")
            or parts[-1].startswith("test_")
            or parts[-1].startswith("bench_"))


@dataclass(frozen=True)
class GlobalSymbol:
    """One module-level binding: where it lives and what kind it holds."""

    module: str
    name: str
    kind: str
    lineno: int


@dataclass(frozen=True)
class FunctionInfo:
    """One function in the approximate call graph.

    ``calls`` holds dotted names of resolvable callees (project-local
    functions resolve to ``module.func``); ``spawns_directly`` is True
    when the body contains a ``<sim>.process(...)`` call.
    """

    dotted: str
    calls: Tuple[str, ...]
    spawns_directly: bool


class SymbolGraph:
    """Project-wide defs/uses index over every scanned module.

    Built once per project pass from the :class:`ModuleInfo` list; rules
    query it to classify names across module boundaries
    (:meth:`name_kind`), locate a symbol's defining module
    (:meth:`origin`), enumerate a global's importers
    (:meth:`importers_of`), and decide whether a function transitively
    spawns simulator processes (:meth:`spawns`).
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self._modules: Dict[str, ModuleInfo] = {}
        self._assigns: Dict[str, Dict[str, ast.expr]] = {}
        self._assign_lines: Dict[str, Dict[str, int]] = {}
        self._kind_memo: Dict[Tuple[str, str], str] = {}
        self._functions: Dict[str, FunctionInfo] = {}
        self._spawn_memo: Dict[str, bool] = {}
        for module in modules:
            if not module.dotted:
                continue
            self._modules[module.dotted] = module
            self._index_module(module)

    def _index_module(self, module: ModuleInfo) -> None:
        assigns: Dict[str, ast.expr] = {}
        lines: Dict[str, int] = {}
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, prefix=module.dotted)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._index_function(
                            module, item,
                            prefix=f"{module.dotted}.{stmt.name}")
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = value       # last assignment wins
                    lines[target.id] = target.lineno
        self._assigns[module.dotted] = assigns
        self._assign_lines[module.dotted] = lines

    def _index_function(self, module: ModuleInfo, node: ast.AST,
                        prefix: str) -> None:
        name = getattr(node, "name", "")
        calls: Set[str] = set()
        spawns = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == "process":
                spawns = True
            elif isinstance(func, ast.Name):
                dotted = module.imports.members.get(func.id)
                calls.add(dotted if dotted
                          else f"{module.dotted}.{func.id}")
            else:
                dotted = resolve_dotted(func, module.imports)
                if dotted:
                    calls.add(dotted)
        info = FunctionInfo(dotted=f"{prefix}.{name}",
                            calls=tuple(sorted(calls)),
                            spawns_directly=spawns)
        self._functions[info.dotted] = info

    def module(self, dotted: str) -> Optional[ModuleInfo]:
        """The scanned module named ``dotted``, if any."""
        return self._modules.get(dotted)

    def global_kind(self, module_dotted: str, name: str) -> str:
        """Kind of module-level binding ``module_dotted.name``."""
        return self._global_kind(module_dotted, name, frozenset())

    def _global_kind(self, module_dotted: str, name: str,
                     stack: frozenset) -> str:
        key = (module_dotted, name)
        if key in self._kind_memo:
            return self._kind_memo[key]
        if key in stack:
            return KIND_UNKNOWN                      # import cycle guard
        module = self._modules.get(module_dotted)
        if module is None:
            return KIND_UNKNOWN
        stack = stack | {key}
        node = self._assigns.get(module_dotted, {}).get(name)
        if node is not None:
            kind = classify(node, module, {}, self, _stack=stack)
        else:
            origin = module.imports.members.get(name)
            if origin is None:
                kind = KIND_UNKNOWN
            else:
                split = self._split_origin(origin)
                if split is None:
                    kind = KIND_UNKNOWN
                else:
                    kind = self._global_kind(split[0], split[1], stack)
        self._kind_memo[key] = kind
        return kind

    def _split_origin(self, origin: str) -> Optional[Tuple[str, str]]:
        """Split ``repro.a.b.NAME`` into (module, symbol) if module known."""
        parts = origin.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self._modules:
                if cut == len(parts) - 1:
                    return prefix, parts[cut]
                return None                # attribute chain, not a symbol
        return None

    def name_kind(self, module: ModuleInfo, name: str,
                  _stack: frozenset = frozenset()) -> str:
        """Kind of an unbound ``name`` referenced inside ``module``.

        Checks the module's own globals first, then follows
        ``from X import name`` chains across scanned modules.
        """
        if name in self._assigns.get(module.dotted, {}):
            return self._global_kind(module.dotted, name, _stack)
        origin = module.imports.members.get(name)
        if origin is not None:
            split = self._split_origin(origin)
            if split is not None:
                return self._global_kind(split[0], split[1], _stack)
        return KIND_UNKNOWN

    def origin(self, module: ModuleInfo,
               name: str) -> Optional[GlobalSymbol]:
        """Defining site of ``name`` as seen from ``module``, if known."""
        if name in self._assigns.get(module.dotted, {}):
            line = self._assign_lines[module.dotted].get(name, 1)
            return GlobalSymbol(module.dotted, name,
                                self.global_kind(module.dotted, name), line)
        origin = module.imports.members.get(name)
        if origin is None:
            return None
        split = self._split_origin(origin)
        if split is None or split[0] == module.dotted:
            return None
        target = self._modules.get(split[0])
        if target is None or split[1] not in self._assigns[split[0]]:
            return None
        line = self._assign_lines[split[0]].get(split[1], 1)
        return GlobalSymbol(split[0], split[1],
                            self.global_kind(split[0], split[1]), line)

    def importers_of(self, module_dotted: str, name: str) -> List[str]:
        """Modules that ``from module import name`` (sorted, excl. self)."""
        origin = f"{module_dotted}.{name}"
        return sorted(
            dotted for dotted, module in self._modules.items()
            if dotted != module_dotted
            and origin in module.imports.members.values())

    def spawns(self, dotted: str) -> bool:
        """True when ``dotted`` transitively reaches a ``.process()`` call."""
        memo = self._spawn_memo
        if dotted in memo:
            return memo[dotted]
        memo[dotted] = False                         # cycle guard
        info = self._functions.get(dotted)
        if info is None:
            return False
        result = info.spawns_directly or any(
            self.spawns(callee) for callee in info.calls)
        memo[dotted] = result
        return result


def classify(node: ast.expr, module: ModuleInfo, env: Dict[str, str],
             graph: Optional[SymbolGraph],
             _stack: frozenset = frozenset()) -> str:
    """Kind of the value ``node`` evaluates to, given environment ``env``.

    ``env`` maps local names to kinds (statement-ordered, per scope);
    unbound names fall through to ``graph`` for module globals and
    cross-module imports.  Anything unrecognised is ``KIND_UNKNOWN`` —
    the rules only act on positive classifications.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return KIND_SET
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if graph is not None:
            return graph.name_kind(module, node.id, _stack)
        return KIND_UNKNOWN
    if isinstance(node, ast.Call):
        return _classify_call(node, module, env, graph, _stack)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        left = classify(node.left, module, env, graph, _stack)
        right = classify(node.right, module, env, graph, _stack)
        if KIND_SET in (left, right):
            return KIND_SET
        return KIND_UNKNOWN
    if isinstance(node, ast.IfExp):
        body = classify(node.body, module, env, graph, _stack)
        orelse = classify(node.orelse, module, env, graph, _stack)
        if KIND_SET in (body, orelse):
            return KIND_SET
        return body if body == orelse else KIND_UNKNOWN
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp,
                         ast.GeneratorExp, ast.Dict, ast.DictComp)):
        return KIND_ORDERED
    return KIND_UNKNOWN


def _classify_call(node: ast.Call, module: ModuleInfo, env: Dict[str, str],
                   graph: Optional[SymbolGraph], stack: frozenset) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in ("set", "frozenset"):
            return KIND_SET
        if func.id == "sorted":
            return KIND_ORDERED
        if func.id in ("list", "tuple", "iter", "reversed") and node.args:
            # list(a_set) materialises the *nondeterministic* order:
            # the taint survives the conversion; only sorted() clears it.
            inner = classify(node.args[0], module, env, graph, stack)
            return KIND_SET if inner == KIND_SET else KIND_ORDERED
        if func.id == "RandomStreams":
            origin = module.imports.members.get(func.id, "")
            if origin.endswith("RandomStreams"):
                return KIND_STREAMS
    if isinstance(func, ast.Attribute):
        receiver = classify(func.value, module, env, graph, stack)
        if receiver == KIND_STREAMS:
            if func.attr in ("get", "fresh"):
                return KIND_GENERATOR
            if func.attr == "fork":
                return KIND_STREAMS
        if receiver == KIND_SET and func.attr in _SET_METHODS:
            return KIND_SET
        if func.attr == "iterdir" and not node.args:
            return KIND_FS
        if func.attr in ("glob", "rglob") and node.args:
            # Path.glob("*.json") / Path.rglob take a pattern argument;
            # glob.glob via a module alias resolves through _FS_DOTTED.
            return KIND_FS
    dotted = resolve_dotted(func, module.imports)
    if dotted is not None:
        if dotted in _FS_DOTTED:
            return KIND_FS
        if dotted.endswith(".RandomStreams"):
            return KIND_STREAMS
        if dotted == "numpy.random.default_rng":
            return KIND_GENERATOR
    return KIND_UNKNOWN


def _own_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The statement's direct expression children (not nested statements)."""
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def _bind_targets(target: ast.expr, kind: str, env: Dict[str, str]) -> None:
    """Bind an assignment/loop target in ``env`` (tuples bind unknown)."""
    if isinstance(target, ast.Name):
        env[target.id] = kind
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_targets(element, KIND_UNKNOWN, env)


def _sanctioned_nodes(tree: ast.AST) -> Set[int]:
    """ids of nodes inside order-insensitive consumers or ``in`` tests.

    ``sorted(os.listdir(d))`` or ``name in os.listdir(d)`` are
    deterministic uses of a nondeterministic enumeration; calls found in
    these positions are not reported.
    """
    sanctioned: Set[int] = set()
    for node in ast.walk(tree):
        roots: List[ast.expr] = []
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE):
            roots = list(node.args)
        elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            roots = list(node.comparators)
        for root in roots:
            for sub in ast.walk(root):
                sanctioned.add(id(sub))
    return sanctioned


class UnorderedIterationRule(ProjectRule):
    """REP011: iteration order the runtime does not define.

    Model code must not iterate sets (order varies with hash seeding and
    insertion history) or unsorted filesystem listings (order varies
    with the filesystem).  Wrapping in ``sorted(...)`` — or consuming
    through ``len``/``sum``/``set``/membership — is the sanctioned fix.
    """

    code = "REP011"
    name = "unordered-iteration"
    severity = ERROR
    description = ("iteration over sets or unsorted filesystem "
                   "enumeration is order-nondeterministic in model code")

    def check_project(self, module: ModuleInfo,
                      graph: object) -> List[Finding]:
        """Flag set/fs-order iteration reachable in ``module``."""
        if _in_test_or_benchmark(module):
            return []
        assert isinstance(graph, SymbolGraph)
        findings: List[Finding] = []
        sanctioned = _sanctioned_nodes(module.tree)
        self._scan(module, graph, module.tree.body, {}, sanctioned,
                   findings)
        return findings

    def _scan(self, module: ModuleInfo, graph: SymbolGraph,
              body: Sequence[ast.stmt], env: Dict[str, str],
              sanctioned: Set[int], findings: List[Finding]) -> None:
        for stmt in body:
            self._check_exprs(module, graph, env, _own_exprs(stmt),
                              sanctioned, findings)
            if isinstance(stmt, ast.Assign):
                kind = classify(stmt.value, module, env, graph)
                for target in stmt.targets:
                    # An fs-order value is reported at its producing
                    # call; the variable binds unknown to avoid a
                    # second report at the iteration site.
                    _bind_targets(target,
                                  KIND_UNKNOWN if kind == KIND_FS else kind,
                                  env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                kind = classify(stmt.value, module, env, graph)
                _bind_targets(stmt.target,
                              KIND_UNKNOWN if kind == KIND_FS else kind,
                              env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_iteration(module, graph, env, stmt.iter,
                                      findings)
                _bind_targets(stmt.target, KIND_UNKNOWN, env)
                self._scan(module, graph, stmt.body, env, sanctioned,
                           findings)
                self._scan(module, graph, stmt.orelse, env, sanctioned,
                           findings)
            elif isinstance(stmt, (ast.While, ast.If)):
                self._scan(module, graph, stmt.body, env, sanctioned,
                           findings)
                self._scan(module, graph, stmt.orelse, env, sanctioned,
                           findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan(module, graph, stmt.body, env, sanctioned,
                           findings)
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._scan(module, graph, part, env, sanctioned,
                               findings)
                for handler in stmt.handlers:
                    self._scan(module, graph, handler.body, env,
                               sanctioned, findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = dict(env)
                for arg in ast.walk(stmt.args):
                    if isinstance(arg, ast.arg):
                        inner[arg.arg] = KIND_UNKNOWN
                self._scan(module, graph, stmt.body, inner, sanctioned,
                           findings)
            elif isinstance(stmt, ast.ClassDef):
                self._scan(module, graph, stmt.body, dict(env),
                           sanctioned, findings)

    def _check_exprs(self, module: ModuleInfo, graph: SymbolGraph,
                     env: Dict[str, str], exprs: Sequence[ast.expr],
                     sanctioned: Set[int],
                     findings: List[Finding]) -> None:
        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.comprehension):
                    self._check_iteration(module, graph, env, sub.iter,
                                          findings)
                elif (isinstance(sub, ast.Call)
                      and id(sub) not in sanctioned
                      and classify(sub, module, env, graph) == KIND_FS):
                    findings.append(self.finding(
                        module, sub,
                        f"unsorted filesystem enumeration "
                        f"'{module.segment(sub.func)}(...)' — wrap in "
                        f"sorted(...) so traversal order is "
                        f"reproducible"))

    def _check_iteration(self, module: ModuleInfo, graph: SymbolGraph,
                         env: Dict[str, str], iterable: ast.expr,
                         findings: List[Finding]) -> None:
        kind = classify(iterable, module, env, graph)
        if kind != KIND_SET:
            return
        message = (f"iteration over set '{module.segment(iterable)}' is "
                   f"order-nondeterministic — iterate sorted(...) or use "
                   f"an ordered container")
        if isinstance(iterable, ast.Name) and iterable.id not in env:
            origin = graph.origin(module, iterable.id)
            if origin is not None and origin.module != module.dotted:
                message += (f" (defined at {origin.module}:"
                            f"{origin.lineno})")
        findings.append(self.finding(module, iterable, message))


class RngAliasRule(ProjectRule):
    """REP012: one RNG stream aliased where independent draws are needed.

    Two shapes: a generator bound to a *module-level global* (every
    importer advances the same hidden state, so adding an import changes
    results elsewhere), and one generator threaded into two or more
    process spawns (interleaving then decides who draws what).  The fix
    is always the same: derive a named stream per consumer via
    ``RandomStreams.get``/``fresh``.
    """

    code = "REP012"
    name = "rng-stream-aliasing"
    severity = ERROR
    description = ("a RandomStreams-derived generator must not be shared "
                   "via module globals or across process spawns")

    def check_project(self, module: ModuleInfo,
                      graph: object) -> List[Finding]:
        """Flag shared-generator globals and multi-spawn threading."""
        if _in_test_or_benchmark(module):
            return []
        assert isinstance(graph, SymbolGraph)
        findings: List[Finding] = []
        self._check_globals(module, graph, findings)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, graph, node, findings)
        return findings

    def _check_globals(self, module: ModuleInfo, graph: SymbolGraph,
                       findings: List[Finding]) -> None:
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            if classify(value, module, {}, graph) != KIND_GENERATOR:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                message = (f"RNG generator bound to module-level global "
                           f"'{target.id}': every importer shares (and "
                           f"perturbs) one stream state — derive a named "
                           f"stream per consumer instead")
                importers = graph.importers_of(module.dotted, target.id)
                if importers:
                    message += f" (imported by {', '.join(importers)})"
                findings.append(self.finding(module, stmt, message))

    def _check_function(self, module: ModuleInfo, graph: SymbolGraph,
                        func: ast.AST, findings: List[Finding]) -> None:
        env: Dict[str, str] = {}
        bind_depth: Dict[str, int] = {}
        spawn_uses: Dict[str, int] = {}
        reported: Set[str] = set()
        self._walk_body(module, graph, getattr(func, "body", []), env,
                        bind_depth, spawn_uses, reported, findings,
                        loop_depth=0)

    def _walk_body(self, module: ModuleInfo, graph: SymbolGraph,
                   body: Sequence[ast.stmt], env: Dict[str, str],
                   bind_depth: Dict[str, int], spawn_uses: Dict[str, int],
                   reported: Set[str], findings: List[Finding],
                   loop_depth: int) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                kind = classify(stmt.value, module, env, graph)
                for target in stmt.targets:
                    _bind_targets(target, kind, env)
                    if isinstance(target, ast.Name):
                        bind_depth[target.id] = loop_depth
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                kind = classify(stmt.value, module, env, graph)
                _bind_targets(stmt.target, kind, env)
                if isinstance(stmt.target, ast.Name):
                    bind_depth[stmt.target.id] = loop_depth
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue                   # nested defs get their own scan
            for expr in _own_exprs(stmt):
                self._check_spawns(module, graph, env, bind_depth, expr,
                                   spawn_uses, reported, findings,
                                   loop_depth)
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._walk_body(module, graph, stmt.body, env, bind_depth,
                                spawn_uses, reported, findings,
                                loop_depth + 1)
                self._walk_body(module, graph, stmt.orelse, env,
                                bind_depth, spawn_uses, reported, findings,
                                loop_depth)
            elif isinstance(stmt, ast.If):
                self._walk_body(module, graph, stmt.body, env, bind_depth,
                                spawn_uses, reported, findings, loop_depth)
                self._walk_body(module, graph, stmt.orelse, env,
                                bind_depth, spawn_uses, reported, findings,
                                loop_depth)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_body(module, graph, stmt.body, env, bind_depth,
                                spawn_uses, reported, findings, loop_depth)
            elif isinstance(stmt, ast.Try):
                for part in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._walk_body(module, graph, part, env, bind_depth,
                                    spawn_uses, reported, findings,
                                    loop_depth)
                for handler in stmt.handlers:
                    self._walk_body(module, graph, handler.body, env,
                                    bind_depth, spawn_uses, reported,
                                    findings, loop_depth)

    def _check_spawns(self, module: ModuleInfo, graph: SymbolGraph,
                      env: Dict[str, str], bind_depth: Dict[str, int],
                      expr: ast.expr, spawn_uses: Dict[str, int],
                      reported: Set[str], findings: List[Finding],
                      loop_depth: int) -> None:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            if not self._is_spawn(module, graph, sub):
                continue
            arg_roots = list(sub.args) + [kw.value for kw in sub.keywords]
            for arg_node in (walked for root in arg_roots
                             for walked in ast.walk(root)):
                if not isinstance(arg_node, ast.Name):
                    continue
                if env.get(arg_node.id) != KIND_GENERATOR:
                    continue
                # A spawn in a loop counts double only when the generator
                # was bound *outside* the loop: one fresh stream derived
                # per iteration is the sanctioned pattern, not aliasing.
                hoisted = loop_depth > bind_depth.get(arg_node.id, 0)
                spawn_uses[arg_node.id] = (
                    spawn_uses.get(arg_node.id, 0) + (2 if hoisted else 1))
                if (spawn_uses[arg_node.id] >= 2
                        and arg_node.id not in reported):
                    reported.add(arg_node.id)
                    findings.append(self.finding(
                        module, sub,
                        f"generator '{arg_node.id}' is threaded into "
                        f"multiple process spawns — each process needs "
                        f"its own stream (RandomStreams.get/fresh per "
                        f"process)"))

    @staticmethod
    def _is_spawn(module: ModuleInfo, graph: SymbolGraph,
                  call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "process":
            return True
        if isinstance(func, ast.Name):
            dotted = module.imports.members.get(
                func.id, f"{module.dotted}.{func.id}")
            return graph.spawns(dotted)
        dotted_or_none = resolve_dotted(func, module.imports)
        return dotted_or_none is not None and graph.spawns(dotted_or_none)


class IdentityOrderRule(ProjectRule):
    """REP013: ordering derived from object identity.

    ``id()`` is an allocation address and ``hash()`` of str/bytes is
    salted per process; any sort key, heap entry, or dict key built from
    them orders differently run to run.  Use an explicit stable key
    (sequence number, name) instead.
    """

    code = "REP013"
    name = "identity-dependent-ordering"
    severity = ERROR
    description = ("id()/hash() in sort keys, heap entries, or dict keys "
                   "makes ordering depend on allocation addresses")

    _IDENTITY_CALLS = frozenset({"id", "hash"})
    _IDENTITY_DOTTED = frozenset({"object.__hash__", "object.__repr__"})

    def check_project(self, module: ModuleInfo,
                      graph: object) -> List[Finding]:
        """Flag identity functions in ordering-sensitive positions."""
        if _in_test_or_benchmark(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_call(module, node, findings)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and self._identity_in(module, key):
                        findings.append(self.finding(
                            module, key,
                            "identity-derived dict key: id()/hash() "
                            "values differ between runs — key by a "
                            "stable attribute instead"))
            elif isinstance(node, ast.DictComp):
                if self._identity_in(module, node.key):
                    findings.append(self.finding(
                        module, node.key,
                        "identity-derived dict key: id()/hash() values "
                        "differ between runs — key by a stable "
                        "attribute instead"))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and self._identity_in(module, target.slice)):
                        findings.append(self.finding(
                            module, target.slice,
                            "identity-derived dict key: id()/hash() "
                            "values differ between runs — key by a "
                            "stable attribute instead"))
        return findings

    def _check_call(self, module: ModuleInfo, call: ast.Call,
                    findings: List[Finding]) -> None:
        func = call.func
        dotted = resolve_dotted(func, module.imports)
        sort_like = (
            (isinstance(func, ast.Name) and func.id in _SORT_CALLS)
            or (isinstance(func, ast.Attribute) and func.attr == "sort")
            or (dotted in _HEAP_NSORT)
        )
        if sort_like:
            for keyword in call.keywords:
                if keyword.arg == "key" and self._identity_in(
                        module, keyword.value):
                    findings.append(self.finding(
                        module, keyword.value,
                        "identity-dependent sort key: id()/hash() order "
                        "is allocation-dependent — derive the key from "
                        "stable data (name, sequence number)"))
        if dotted in _HEAP_PUSH:
            for entry in call.args[1:]:
                if self._identity_in(module, entry):
                    findings.append(self.finding(
                        module, entry,
                        "identity-derived heap entry: id()/hash() break "
                        "ties nondeterministically — use a sequence "
                        "number for tie-breaking"))

    def _identity_in(self, module: ModuleInfo, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id in self._IDENTITY_CALLS:
            return True                                  # key=id / key=hash
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name) and func.id in self._IDENTITY_CALLS:
                return True
            if isinstance(func, ast.Attribute):
                chain = module.segment(func)
                if chain in self._IDENTITY_DOTTED:
                    return True
        return False
