"""Core machinery of the invariant checker: findings, modules, rules, runner.

The engine is deliberately small and dependency-free (stdlib ``ast`` only)
so it can run anywhere the library runs — in CI, in a pre-PR checklist,
and inside its own test suite.  It provides:

* :class:`Finding` — one diagnostic, with a stable :meth:`Finding.key`
  used by the baseline mechanism;
* :class:`ModuleInfo` — a parsed source file plus the derived facts every
  rule needs (dotted module name, package layer, import aliases,
  ``# repro: noqa[...]`` suppressions);
* :class:`Rule` / :class:`RuleVisitor` — the visitor framework rules are
  written against;
* :func:`lint_paths` / :func:`lint_module` — the runner;
* :func:`load_baseline` / :func:`write_baseline` — grandfathered findings.

Suppressions are inline comments on the *reported* line::

    tag_base = 1 << 20  # repro: noqa[REP003] tag namespace, not bytes

A bare ``# repro: noqa`` suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.lint.cache import LintCache

__all__ = [
    "ENGINE_VERSION",
    "ERROR",
    "WARNING",
    "Finding",
    "ImportMap",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "RuleVisitor",
    "apply_baseline",
    "iter_python_files",
    "lint_module",
    "lint_paths",
    "load_baseline",
    "resolve_dotted",
    "write_baseline",
]

#: Severity levels.  ``error`` findings fail the run; ``warning`` findings
#: are reported but do not affect the exit status.
ERROR = "error"
WARNING = "warning"

#: Version of the engine's *finding semantics*.  Bump whenever a change to
#: the engine (not to an individual rule's metadata, which the cache
#: fingerprints separately) could alter what a rule reports for unchanged
#: source — it is part of the incremental cache key, so bumping forces a
#: cold run everywhere.
ENGINE_VERSION = 1

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: str = ERROR

    def key(self) -> str:
        """Stable identity for the baseline: survives line-number drift."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class ImportMap:
    """Local-name -> dotted-origin aliases harvested from a module's imports.

    ``modules`` maps names bound by ``import`` statements (``np`` ->
    ``numpy``); ``members`` maps names bound by ``from X import y [as z]``
    (``default_rng`` -> ``numpy.random.default_rng``).

    ``package`` is the dotted package that anchors *relative* imports.
    For a plain module it is the parent of ``dotted``; for a package
    (``__init__.py``) it is ``dotted`` itself — ``from . import engine``
    inside ``repro.lint``'s ``__init__`` means ``repro.lint.engine``, not
    ``repro.engine``.  When ``package`` is ``None`` it is derived from
    ``dotted`` assuming a plain module (backward-compatible default).
    """

    def __init__(self, tree: ast.AST, dotted: str = "",
                 package: Optional[str] = None) -> None:
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, str] = {}
        if package is None:
            package = dotted.rsplit(".", 1)[0] if "." in dotted else ""
        self.package = package
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        self.modules[alias.name.split(".")[0]] = \
                            alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    context = package.split(".") if package else []
                    context = context[: len(context) - (node.level - 1)]
                    base = ".".join(context + ([base] if base else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self.members[local] = origin


def resolve_dotted(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical dotted path of an attribute chain, or ``None``.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases ``numpy``; names that were never imported resolve
    to ``None`` so local variables cannot trigger import-based rules.
    """
    attrs: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = imports.modules.get(current.id)
    if base is None:
        base = imports.members.get(current.id)
    if base is None:
        return None
    return ".".join([base] + list(reversed(attrs)))


class ModuleInfo:
    """A parsed source file plus the facts rules need about it."""

    def __init__(self, path: Path, rel: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.dotted = self._dotted_name(rel)
        self.is_package = Path(rel).name == "__init__.py"
        parts = self.dotted.split(".")
        self.package = parts[1] if len(parts) > 1 else ""
        if self.is_package:
            # A package's relative imports resolve against itself:
            # ``from . import engine`` in repro/lint/__init__.py names
            # repro.lint.engine.
            self.import_package = self.dotted
        elif "." in self.dotted:
            self.import_package = self.dotted.rsplit(".", 1)[0]
        else:
            self.import_package = ""
        self.imports = ImportMap(tree, self.dotted,
                                 package=self.import_package)
        self.noqa = self._parse_noqa(self.lines)

    @staticmethod
    def _dotted_name(rel: str) -> str:
        parts = list(Path(rel).parts)
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @staticmethod
    def _parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
        suppressions: Dict[int, Optional[Set[str]]] = {}
        for number, text in enumerate(lines, start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                suppressions[number] = None          # suppress everything
            else:
                suppressions[number] = {
                    code.strip().upper()
                    for code in codes.split(",") if code.strip()
                }
        return suppressions

    def suppressed(self, line: int, code: str) -> bool:
        """True when a ``# repro: noqa`` comment covers ``code`` on ``line``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or code.upper() in codes

    def segment(self, node: ast.AST) -> str:
        """Raw source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """Base class for one checkable invariant.

    Subclasses set the class attributes and either point ``visitor`` at a
    :class:`RuleVisitor` subclass or override :meth:`check` outright.
    """

    code: str = "REP000"
    name: str = "unnamed"
    severity: str = ERROR
    description: str = ""
    visitor: Optional[type] = None

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run the rule over one module, returning raw findings."""
        if self.visitor is None:  # pragma: no cover - abstract guard
            raise NotImplementedError(f"{self.code} defines no visitor")
        walker = self.visitor(self, module)
        walker.visit(module.tree)
        return walker.findings

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
            severity=self.severity,
        )


class RuleVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` with finding collection bound to one rule."""

    def __init__(self, rule: Rule, module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding for ``node``."""
        self.findings.append(self.rule.finding(self.module, node, message))


@dataclass
class LintResult:
    """Outcome of a lint run: visible findings plus bookkeeping counts."""

    findings: List[Finding]
    files_scanned: int
    baselined: int
    cache_hits: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Findings that should fail the run."""
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def exit_code(self) -> int:
        """0 when no error-severity findings remain."""
        return 1 if self.errors else 0


class _ParseFailure(Rule):
    """Pseudo-rule used to report unparseable files."""

    code = "REP000"
    name = "parse-failure"
    description = "file could not be parsed as Python source"


_PARSE_FAILURE = _ParseFailure()


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _load_module(path: Path, rel: str,
                 source: str) -> Tuple[Optional[ModuleInfo],
                                       Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        finding = Finding(path=rel, line=error.lineno or 1,
                          column=(error.offset or 0) + 1,
                          rule=_PARSE_FAILURE.code,
                          message=f"syntax error: {error.msg}")
        return None, finding
    return ModuleInfo(path, rel, source, tree), None


def lint_module(module: ModuleInfo, rules: Sequence[Rule]) -> List[Finding]:
    """All non-suppressed findings for one parsed module."""
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    seen.add(found.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
    return sorted(seen)


def lint_paths(paths: Iterable[Path], root: Path, rules: Sequence[Rule],
               baseline: Optional[Set[str]] = None,
               cache: Optional["LintCache"] = None) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the relative paths recorded in findings (and therefore
    baseline keys); ``baseline`` holds keys of grandfathered findings to
    hide from the result.  ``cache`` (a
    :class:`repro.lint.cache.LintCache`) serves per-file findings keyed by
    content hash: a hit skips parsing and rule visits entirely, a miss is
    checked cold and stored, so results are identical with or without it.
    """
    root = root.resolve()
    findings: List[Finding] = []
    files = iter_python_files(paths)
    cache_hits = 0
    for path in files:
        rel = _relative_posix(path, root)
        source = path.read_text(encoding="utf-8")
        if cache is not None:
            cached = cache.get(rel, source)
            if cached is not None:
                findings.extend(cached)
                cache_hits += 1
                continue
        module, failure = _load_module(path, rel, source)
        if failure is not None:
            file_findings = [failure]
        else:
            assert module is not None
            file_findings = lint_module(module, rules)
        if cache is not None:
            cache.put(rel, source, file_findings)
        findings.extend(file_findings)
    if cache is not None:
        cache.save()
    visible, baselined = apply_baseline(sorted(findings), baseline or set())
    return LintResult(findings=visible, files_scanned=len(files),
                      baselined=baselined, cache_hits=cache_hits)


def apply_baseline(findings: Sequence[Finding],
                   baseline: Set[str]) -> Tuple[List[Finding], int]:
    """Split findings into (visible, grandfathered-count)."""
    visible = [f for f in findings if f.key() not in baseline]
    return visible, len(findings) - len(visible)


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("findings", []))


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline for ``findings`` (sorted keys, stable output)."""
    payload = {
        "version": 1,
        "tool": "repro.lint",
        "findings": sorted({finding.key() for finding in findings}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
