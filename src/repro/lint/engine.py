"""Core machinery of the invariant checker: findings, modules, rules, runner.

The engine is deliberately small and dependency-free (stdlib ``ast`` only)
so it can run anywhere the library runs — in CI, in a pre-PR checklist,
and inside its own test suite.  It provides:

* :class:`Finding` — one diagnostic, with a stable :meth:`Finding.key`
  used by the baseline mechanism;
* :class:`ModuleInfo` — a parsed source file plus the derived facts every
  rule needs (dotted module name, package layer, import aliases,
  ``# repro: noqa[...]`` suppressions);
* :class:`Rule` / :class:`RuleVisitor` — the visitor framework rules are
  written against;
* :func:`lint_paths` / :func:`lint_module` — the runner;
* :func:`load_baseline` / :func:`write_baseline` — grandfathered findings.

Suppressions are inline comments on the *reported* line::

    tag_base = 1 << 20  # repro: noqa[REP003] tag namespace, not bytes

A bare ``# repro: noqa`` suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.lint.cache import LintCache

__all__ = [
    "ENGINE_VERSION",
    "ERROR",
    "WARNING",
    "Finding",
    "ImportMap",
    "LintResult",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "apply_baseline",
    "import_closure",
    "iter_python_files",
    "lint_module",
    "lint_module_project",
    "lint_paths",
    "load_baseline",
    "resolve_dotted",
    "tree_fingerprint",
    "write_baseline",
]

#: Severity levels.  ``error`` findings fail the run; ``warning`` findings
#: are reported but do not affect the exit status.
ERROR = "error"
WARNING = "warning"

#: Version of the engine's *finding semantics*.  Bump whenever a change to
#: the engine (not to an individual rule's metadata, which the cache
#: fingerprints separately) could alter what a rule reports for unchanged
#: source — it is part of the incremental cache key, so bumping forces a
#: cold run everywhere.  v2: two-phase runs (file rules + project rules)
#: with separately-keyed project entries.
ENGINE_VERSION = 2

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: str = ERROR

    def key(self) -> str:
        """Stable identity for the baseline: survives line-number drift."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class ImportMap:
    """Local-name -> dotted-origin aliases harvested from a module's imports.

    ``modules`` maps names bound by ``import`` statements (``np`` ->
    ``numpy``); ``members`` maps names bound by ``from X import y [as z]``
    (``default_rng`` -> ``numpy.random.default_rng``).

    ``package`` is the dotted package that anchors *relative* imports.
    For a plain module it is the parent of ``dotted``; for a package
    (``__init__.py``) it is ``dotted`` itself — ``from . import engine``
    inside ``repro.lint``'s ``__init__`` means ``repro.lint.engine``, not
    ``repro.engine``.  When ``package`` is ``None`` it is derived from
    ``dotted`` assuming a plain module (backward-compatible default).
    """

    def __init__(self, tree: ast.AST, dotted: str = "",
                 package: Optional[str] = None) -> None:
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, str] = {}
        if package is None:
            package = dotted.rsplit(".", 1)[0] if "." in dotted else ""
        self.package = package
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        self.modules[alias.name.split(".")[0]] = \
                            alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    context = package.split(".") if package else []
                    context = context[: len(context) - (node.level - 1)]
                    base = ".".join(context + ([base] if base else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self.members[local] = origin


def resolve_dotted(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical dotted path of an attribute chain, or ``None``.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases ``numpy``; names that were never imported resolve
    to ``None`` so local variables cannot trigger import-based rules.
    """
    attrs: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = imports.modules.get(current.id)
    if base is None:
        base = imports.members.get(current.id)
    if base is None:
        return None
    return ".".join([base] + list(reversed(attrs)))


class ModuleInfo:
    """A parsed source file plus the facts rules need about it."""

    def __init__(self, path: Path, rel: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.dotted = self._dotted_name(rel)
        self.is_package = Path(rel).name == "__init__.py"
        parts = self.dotted.split(".")
        self.package = parts[1] if len(parts) > 1 else ""
        if self.is_package:
            # A package's relative imports resolve against itself:
            # ``from . import engine`` in repro/lint/__init__.py names
            # repro.lint.engine.
            self.import_package = self.dotted
        elif "." in self.dotted:
            self.import_package = self.dotted.rsplit(".", 1)[0]
        else:
            self.import_package = ""
        self.imports = ImportMap(tree, self.dotted,
                                 package=self.import_package)
        self.noqa = self._parse_noqa(self.lines)

    @staticmethod
    def _dotted_name(rel: str) -> str:
        parts = list(Path(rel).parts)
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @staticmethod
    def _parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
        suppressions: Dict[int, Optional[Set[str]]] = {}
        for number, text in enumerate(lines, start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                suppressions[number] = None          # suppress everything
            else:
                suppressions[number] = {
                    code.strip().upper()
                    for code in codes.split(",") if code.strip()
                }
        return suppressions

    def suppressed(self, line: int, code: str) -> bool:
        """True when a ``# repro: noqa`` comment covers ``code`` on ``line``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or code.upper() in codes

    def segment(self, node: ast.AST) -> str:
        """Raw source text of ``node`` (empty string when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """Base class for one checkable invariant.

    Subclasses set the class attributes and either point ``visitor`` at a
    :class:`RuleVisitor` subclass or override :meth:`check` outright.

    ``scope`` is ``"file"`` for rules that see one module at a time (the
    cacheable, parallelisable default) and ``"project"`` for whole-program
    rules (:class:`ProjectRule`) that additionally see the symbol graph
    built from every scanned module.
    """

    code: str = "REP000"
    name: str = "unnamed"
    severity: str = ERROR
    description: str = ""
    scope: str = "file"
    visitor: Optional[type] = None

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run the rule over one module, returning raw findings."""
        if self.visitor is None:  # pragma: no cover - abstract guard
            raise NotImplementedError(f"{self.code} defines no visitor")
        walker = self.visitor(self, module)
        walker.visit(module.tree)
        return walker.findings

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A whole-program rule: checked against the full symbol graph.

    Project rules run in a second phase after every file has been parsed,
    so they can follow imports across module boundaries.  Subclasses
    override :meth:`check_project`; :meth:`Rule.check` is unsupported
    because a lone module is not enough context.
    """

    scope = "project"

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Unsupported — project rules need the graph, not one module."""
        raise NotImplementedError(
            f"{self.code} is a project rule; use check_project()")

    def check_project(self, module: ModuleInfo,
                      graph: object) -> List[Finding]:
        """Run the rule over ``module`` with the whole-program ``graph``.

        ``graph`` is a :class:`repro.lint.dataflow.SymbolGraph`; it is
        typed loosely here to keep the engine free of rule imports.
        """
        raise NotImplementedError  # pragma: no cover - abstract


class RuleVisitor(ast.NodeVisitor):
    """``ast.NodeVisitor`` with finding collection bound to one rule."""

    def __init__(self, rule: Rule, module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding for ``node``."""
        self.findings.append(self.rule.finding(self.module, node, message))


@dataclass
class LintResult:
    """Outcome of a lint run: visible findings plus bookkeeping counts."""

    findings: List[Finding]
    files_scanned: int
    baselined: int
    cache_hits: int = 0
    project_cache_hits: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Findings that should fail the run."""
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def exit_code(self) -> int:
        """0 when no error-severity findings remain."""
        return 1 if self.errors else 0


class _ParseFailure(Rule):
    """Pseudo-rule used to report unparseable files."""

    code = "REP000"
    name = "parse-failure"
    description = "file could not be parsed as Python source"


_PARSE_FAILURE = _ParseFailure()


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _load_module(path: Path, rel: str,
                 source: str) -> Tuple[Optional[ModuleInfo],
                                       Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        finding = Finding(path=rel, line=error.lineno or 1,
                          column=(error.offset or 0) + 1,
                          rule=_PARSE_FAILURE.code,
                          message=f"syntax error: {error.msg}")
        return None, finding
    return ModuleInfo(path, rel, source, tree), None


def lint_module(module: ModuleInfo, rules: Sequence[Rule]) -> List[Finding]:
    """All non-suppressed file-scope findings for one parsed module."""
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope != "file":
            continue
        for finding in rule.check(module):
            if not module.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def lint_module_project(module: ModuleInfo, graph: object,
                        rules: Sequence[Rule]) -> List[Finding]:
    """All non-suppressed project-scope findings for one parsed module."""
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope != "project":
            continue
        for finding in rule.check_project(module, graph):  # type: ignore[attr-defined]
            if not module.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def tree_fingerprint(shas: Dict[str, str]) -> str:
    """Digest of the whole scanned tree (rel path + content sha per file).

    Project findings depend on *every* file, so their cache entries are
    keyed by this fingerprint: any file changing (or appearing, or
    vanishing) invalidates all project entries at once while per-file
    entries stay warm.
    """
    digest = hashlib.sha256()
    for rel in sorted(shas):
        digest.update(f"{rel}\x1f{shas[rel]}\x1e".encode("utf-8"))
    return digest.hexdigest()


def _closure_names(rel: str) -> Tuple[str, str]:
    """(dotted module name, relative-import anchor) for a closure file.

    Unlike :meth:`ModuleInfo._dotted_name` this is anchored purely at the
    source root — no special-casing of the ``repro`` package — so the
    closure walk works over any package tree (the xp cache tests build
    synthetic ones).
    """
    parts = list(Path(rel).parts)
    is_package = parts[-1] == "__init__.py"
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if is_package:
        parts = parts[:-1]
    dotted = ".".join(parts)
    if is_package:
        package = dotted
    elif "." in dotted:
        package = dotted.rsplit(".", 1)[0]
    else:
        package = ""
    return dotted, package


def _resolve_module_files(dotted: str, src_root: Path) -> List[Path]:
    """Files under ``src_root`` that importing ``dotted`` executes.

    ``a.b.c`` tries ``a/b/c.py`` then ``a/b/c/__init__.py``, falling
    back through shorter prefixes — so a *member* origin such as
    ``repro.sim.engine.Simulator`` still lands on ``repro/sim/engine.py``
    — and additionally includes every ancestor package ``__init__.py``,
    because importing a submodule executes those too.  Names that
    resolve to nothing under ``src_root`` (stdlib, third party) return
    an empty list and simply drop out of the closure.
    """
    parts = dotted.split(".")
    found: List[Path] = []
    depth = len(parts)
    while depth > 0:
        base = src_root.joinpath(*parts[:depth])
        module = base.with_suffix(".py")
        init = base / "__init__.py"
        if module.is_file():
            found.append(module)
            break
        if init.is_file():
            found.append(init)
            break
        depth -= 1
    for k in range(1, depth):
        init = src_root.joinpath(*parts[:k]) / "__init__.py"
        if init.is_file():
            found.append(init)
    return found


def import_closure(roots: Iterable[Path],
                   src_root: Path) -> Dict[str, str]:
    """Transitive local-import closure of ``roots``: ``{rel: sha256}``.

    Walks each module's :class:`ImportMap` member origins plus raw
    ``import a.b.c`` dotted names (the map intentionally truncates those
    to their first segment for alias resolution, which is too coarse
    here), resolving every candidate to a file under ``src_root`` and
    recursing.  Only files inside ``src_root`` enter the closure, keyed
    by their POSIX path relative to it.

    This is the code half of the experiment cache key
    (:mod:`repro.xp.fingerprint`): fold the returned mapping with
    :func:`tree_fingerprint` and any edit to any transitively imported
    file changes the digest.  Unparseable files contribute their content
    hash but no further edges.
    """
    src_root = Path(src_root).resolve()
    shas: Dict[str, str] = {}
    stack = iter_python_files(roots)
    while stack:
        path = stack.pop()
        try:
            rel = path.relative_to(src_root).as_posix()
        except ValueError:
            continue  # outside the tree: not local code
        if rel in shas:
            continue
        source = path.read_text(encoding="utf-8")
        shas[rel] = _sha256(source)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        dotted, package = _closure_names(rel)
        imports = ImportMap(tree, dotted, package=package)
        candidates = set(imports.members.values())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    candidates.add(alias.name)
        for name in sorted(candidates):
            stack.extend(_resolve_module_files(name, src_root))
    return shas


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    seen.add(found.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
    return sorted(seen)


#: Rule set installed in each pool worker by :func:`_init_worker`, so
#: rules are pickled once per process instead of once per file.
_WORKER_RULES: Tuple[Rule, ...] = ()


def _init_worker(rules: Tuple[Rule, ...]) -> None:
    """Pool initializer: stash the rule set in the worker process."""
    global _WORKER_RULES
    _WORKER_RULES = rules


def _check_one(task: Tuple[str, str, str], rules: Sequence[Rule],
               ) -> Tuple[str, List[Finding], Optional[ModuleInfo], bool]:
    """Lint one file's file-scope rules; returns the parsed module too."""
    path, rel, source = task
    module, failure = _load_module(Path(path), rel, source)
    if failure is not None:
        return rel, [failure], None, True
    assert module is not None
    return rel, lint_module(module, rules), module, False


def _check_one_worker(task: Tuple[str, str, str],
                      ) -> Tuple[str, List[Finding], None, bool]:
    """Pool worker wrapper: drop the module (ASTs are costly to pickle)."""
    rel, findings, _module, failed = _check_one(task, _WORKER_RULES)
    return rel, findings, None, failed


def _run_file_phase(pending: Sequence[Tuple[Path, str, str]],
                    rules: Sequence[Rule], jobs: int,
                    ) -> List[Tuple[str, List[Finding],
                                    Optional[ModuleInfo], bool]]:
    """Run file-scope rules over ``pending``, optionally on a process pool.

    Parallel results come back in submission order (``Pool.map``), so the
    merged finding stream is byte-identical to a serial run.  Serial runs
    additionally hand back each parsed :class:`ModuleInfo` so the project
    phase can reuse it; workers drop theirs rather than pickle an AST.
    """
    tasks = [(str(path), rel, source) for path, rel, source in pending]
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=min(jobs, len(tasks)),
                                  initializer=_init_worker,
                                  initargs=(tuple(rules),)) as pool:
            return pool.map(_check_one_worker, tasks, chunksize=4)
    return [_check_one(task, rules) for task in tasks]


def lint_paths(paths: Iterable[Path], root: Path, rules: Sequence[Rule],
               baseline: Optional[Set[str]] = None,
               cache: Optional["LintCache"] = None,
               jobs: int = 1) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the relative paths recorded in findings (and therefore
    baseline keys); ``baseline`` holds keys of grandfathered findings to
    hide from the result.  ``cache`` (a
    :class:`repro.lint.cache.LintCache`) serves per-file findings keyed by
    content hash: a hit skips parsing and rule visits entirely, a miss is
    checked cold and stored, so results are identical with or without it.

    Runs in two phases.  Phase 1 applies file-scope rules per file —
    cacheable per content hash and, with ``jobs > 1``, fanned out over a
    process pool.  Phase 2 builds the whole-program symbol graph and
    applies project-scope rules (:class:`ProjectRule`); their findings are
    cached per file but keyed additionally by :func:`tree_fingerprint`, so
    *any* source change re-runs the project phase exactly once while
    leaving per-file entries warm.  Findings are globally sorted, so
    serial, parallel, cold and warm runs all report identically.
    """
    root = root.resolve()
    findings: List[Finding] = []
    files = iter_python_files(paths)
    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    cache_hits = 0
    project_hits = 0
    order: List[str] = []
    paths_by_rel: Dict[str, Path] = {}
    sources: Dict[str, str] = {}
    modules: Dict[str, ModuleInfo] = {}
    unparseable: Set[str] = set()
    pending: List[Tuple[Path, str, str]] = []
    for path in files:
        rel = _relative_posix(path, root)
        source = path.read_text(encoding="utf-8")
        order.append(rel)
        paths_by_rel[rel] = path
        sources[rel] = source
        if cache is not None:
            cached = cache.get(rel, source)
            if cached is not None:
                findings.extend(cached)
                cache_hits += 1
                continue
        pending.append((path, rel, source))
    for rel, file_findings, module, failed in _run_file_phase(
            pending, file_rules, jobs):
        if failed:
            unparseable.add(rel)
        elif module is not None:
            modules[rel] = module
        if cache is not None:
            cache.put(rel, sources[rel], file_findings)
        findings.extend(file_findings)
    if project_rules and order:
        tree = tree_fingerprint({rel: _sha256(sources[rel])
                                 for rel in order})
        missing: List[str] = []
        project_cached: Dict[str, List[Finding]] = {}
        for rel in order:
            hit = (cache.get_project(rel, sources[rel], tree)
                   if cache is not None else None)
            if hit is None:
                missing.append(rel)
            else:
                project_cached[rel] = hit
                project_hits += 1
        if missing:
            for rel in order:
                if rel in modules or rel in unparseable:
                    continue
                module, failure = _load_module(paths_by_rel[rel], rel,
                                               sources[rel])
                if failure is not None:
                    unparseable.add(rel)
                else:
                    assert module is not None
                    modules[rel] = module
            from repro.lint.dataflow import SymbolGraph

            graph = SymbolGraph(list(modules.values()))
            for rel in missing:
                module = modules.get(rel)
                if module is None:
                    project_findings: List[Finding] = []
                else:
                    project_findings = lint_module_project(
                        module, graph, project_rules)
                if cache is not None:
                    cache.put_project(rel, sources[rel], tree,
                                      project_findings)
                findings.extend(project_findings)
        for rel in order:
            findings.extend(project_cached.get(rel, []))
    if cache is not None:
        cache.save()
    visible, baselined = apply_baseline(sorted(findings), baseline or set())
    return LintResult(findings=visible, files_scanned=len(files),
                      baselined=baselined, cache_hits=cache_hits,
                      project_cache_hits=project_hits)


def _sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def apply_baseline(findings: Sequence[Finding],
                   baseline: Set[str]) -> Tuple[List[Finding], int]:
    """Split findings into (visible, grandfathered-count)."""
    visible = [f for f in findings if f.key() not in baseline]
    return visible, len(findings) - len(visible)


def load_baseline(path: Path) -> Set[str]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("findings", []))


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the baseline for ``findings`` (sorted keys, stable output)."""
    payload = {
        "version": 1,
        "tool": "repro.lint",
        "findings": sorted({finding.key() for finding in findings}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
