"""The invariant catalog: REP001-REP013.

Each rule encodes one convention the reproduction's credibility rests on
(see DESIGN.md "Static analysis & invariants" for the full catalog with
rationale).  The file-scope rules (REP001-REP010) are small
:class:`~repro.lint.engine.RuleVisitor` subclasses defined here; the
whole-program dataflow rules (REP011-REP013) live in
:mod:`repro.lint.dataflow` and run in the project phase.  All register
in :data:`RULES`; adding a rule means adding a class and one registry
entry.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.dataflow import (
    IdentityOrderRule,
    RngAliasRule,
    UnorderedIterationRule,
)
from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    RuleVisitor,
    resolve_dotted,
)
from repro.units import EXA, GIB, GIGA, KIB, KILO, MEGA, MIB, PETA, TERA, TIB

__all__ = [
    "LAYERS",
    "RULES",
    "BroadExceptRule",
    "CrossLayerImportRule",
    "DocstringRule",
    "ExportListRule",
    "FloatEqualityRule",
    "IdentityOrderRule",
    "MagicScaleLiteralRule",
    "MutableDefaultRule",
    "RandomSourceRule",
    "RngAliasRule",
    "SeededConstructorRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "get_rules",
]

#: Modules allowed to construct raw generators: the sanctioned RNG façade.
_RNG_MODULE = "repro.sim.rng"

#: Generator constructors that bypass RandomStreams.
_GENERATOR_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "random.Random",
    "random.SystemRandom",
}

#: Wall-clock sources that must never leak into model code (virtual time
#: comes from the simulator; benchmarks measuring the library itself are
#: exempt).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: DESIGN.md layering, as ranks: a package may only import strictly lower
#: ranks.  ``units`` is importable by everyone; the tool layers sit on
#: top — ``lint`` above every library package, and ``xp`` (the experiment
#: fleet runner) above ``lint``, whose engine it reuses for code
#: fingerprints.
LAYERS: Dict[str, int] = {
    "units": 0,
    "obs": 5,
    "sim": 10,
    "tech": 10,
    "analysis": 10,
    "network": 20,
    "nodes": 20,
    "scheduler": 20,
    "cluster": 30,
    "health": 30,
    "messaging": 30,
    "fault": 35,
    "jobs": 38,
    "io": 40,
    "apps": 50,
    "lint": 60,
    "xp": 70,
}

#: Decimal scale values with the repro.units name to use instead.  Only
#: exponent-notation literals (``1e9``) are flagged: ``1000.0`` written
#: out is assumed deliberate.
_DECIMAL_SCALES: Dict[float, str] = {
    KILO: "KILO",
    MEGA: "MEGA",
    GIGA: "GIGA",
    TERA: "TERA",
    PETA: "PETA",
    EXA: "EXA",
}

#: Binary scale values (as ints) with their repro.units names.
_BINARY_SCALES: Dict[int, str] = {
    int(KIB): "KIB",
    int(MIB): "MIB",
    int(GIB): "GIB",
    int(TIB): "TIB",
}

#: ``1 << k`` / ``2 ** k`` shift/exponent forms of the binary scales.
_BINARY_EXPONENTS: Dict[int, str] = {
    10: "KIB",
    20: "MIB",
    30: "GIB",
    40: "TIB",
}

#: Every repro.units scale constant name (used by the manual-formatting
#: check to recognise divisors like ``x / MEGA``).
_SCALE_NAMES: Set[str] = (set(_DECIMAL_SCALES.values())
                          | set(_BINARY_SCALES.values()))

#: A prefixed unit immediately after an interpolated value — the
#: signature of hand-rolled ``f"{x / MEGA:.0f} MB/s"`` formatting that
#: the repro.units ``format_*`` helpers exist to replace.
_UNIT_SUFFIX_RE = re.compile(
    r"^\s*[KMGTPE]i?(?:B|b|FLOPS|W|Hz)(?:/s)?\b")


def _in_test_or_benchmark(module: ModuleInfo) -> bool:
    parts = module.rel.split("/")
    return "benchmarks" in parts or "tests" in parts


class _RandomSourceVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.module.imports)
        if dotted is not None:
            head = dotted.split(".")
            if head[0] == "random" and len(head) > 1:
                self.report(node, f"stochastic call '{dotted}' outside "
                                  f"{_RNG_MODULE}; draw from a RandomStreams "
                                  f"stream instead")
            elif dotted.startswith("numpy.random."):
                self.report(node, f"stochastic call '{dotted}' outside "
                                  f"{_RNG_MODULE}; draw from a RandomStreams "
                                  f"stream instead")
        self.generic_visit(node)


class RandomSourceRule(Rule):
    """REP001: all randomness flows through ``repro.sim.rng``."""

    code = "REP001"
    name = "ad-hoc-randomness"
    description = ("no random.* / numpy.random.* calls outside "
                   "repro.sim.rng; use RandomStreams")
    visitor = _RandomSourceVisitor

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Skip the sanctioned RNG module itself."""
        if module.dotted == _RNG_MODULE:
            return []
        return super().check(module)


class _WallClockVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.module.imports)
        if dotted in _WALL_CLOCK:
            self.report(node, f"wall-clock call '{dotted}' in model code; "
                              f"simulated time comes from the event engine")
        self.generic_visit(node)


class WallClockRule(Rule):
    """REP002: model code never reads wall-clock time."""

    code = "REP002"
    name = "wall-clock-leak"
    description = ("no time.time/perf_counter/datetime.now in model code "
                   "(benchmarks and tests exempt)")
    visitor = _WallClockVisitor

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Benchmarks time the library itself, so they are exempt."""
        if _in_test_or_benchmark(module):
            return []
        return super().check(module)


class _MagicScaleVisitor(RuleVisitor):
    def _flag(self, node: ast.AST, name: str) -> None:
        text = self.module.segment(node) or "literal"
        self.report(node, f"magic scale literal '{text}'; use "
                          f"repro.units.{name}")

    def visit_Constant(self, node: ast.Constant) -> None:
        value = node.value
        if isinstance(value, float) and value in _DECIMAL_SCALES:
            text = self.module.segment(node)
            if "e" in text or "E" in text:
                self._flag(node, _DECIMAL_SCALES[value])
        elif (isinstance(value, int) and not isinstance(value, bool)
                and value in _BINARY_SCALES):
            self._flag(node, _BINARY_SCALES[value])

    @classmethod
    def _fold(cls, node: ast.AST) -> Optional[Union[int, float]]:
        """Constant-fold ``*``/``**`` trees of numeric literals, else None."""
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)):
            return node.value
        if (isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Mult, ast.Pow))):
            left = cls._fold(node.left)
            right = cls._fold(node.right)
            if left is None or right is None:
                return None
            try:
                if isinstance(node.op, ast.Mult):
                    return left * right
                if abs(right) > 64:  # huge exponents are never scales
                    return None
                return left ** right
            except (OverflowError, ValueError, ZeroDivisionError):
                return None
        return None

    @staticmethod
    def _scale_name(value: object) -> Optional[str]:
        """The repro.units constant equal to ``value``, or None."""
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            if value in _BINARY_SCALES:
                return _BINARY_SCALES[value]
            if float(value) in _DECIMAL_SCALES:
                return _DECIMAL_SCALES[float(value)]
            return None
        if isinstance(value, float) and value in _DECIMAL_SCALES:
            return _DECIMAL_SCALES[value]
        return None

    def _derived_guard(self, node: ast.BinOp) -> bool:
        """Avoid flagging coincidences like ``32 * 32`` as KIB.

        ``**`` of constants is always scale-building; a ``*`` chain only
        counts as a derived scale when some literal in it is itself at
        least KILO (``1024 * 1024``, ``1000 * 1000000``, ...).
        """
        if isinstance(node.op, ast.Pow):
            return True
        for child in ast.walk(node):
            if (isinstance(child, ast.Constant)
                    and isinstance(child.value, (int, float))
                    and not isinstance(child.value, bool)
                    and abs(child.value) >= KILO):
                return True
        return False

    def visit_BinOp(self, node: ast.BinOp) -> None:
        base = node.left
        exponent = node.right
        if (isinstance(base, ast.Constant) and isinstance(exponent, ast.Constant)
                and isinstance(base.value, int)
                and isinstance(exponent.value, int)
                and exponent.value in _BINARY_EXPONENTS):
            form = None
            if isinstance(node.op, ast.LShift) and base.value == 1:
                form = _BINARY_EXPONENTS[exponent.value]
            elif isinstance(node.op, ast.Pow) and base.value == 2:
                form = _BINARY_EXPONENTS[exponent.value]
            if form is not None:
                self._flag(node, form)
                return
        folded = self._fold(node)
        if folded is not None:
            name = self._scale_name(folded)
            if name is not None and self._derived_guard(node):
                text = self.module.segment(node) or "expression"
                self.report(node, f"derived scale '{text}'; use "
                                  f"repro.units.{name}")
                return
        self.generic_visit(node)

    def _scale_divisor(self, expr: ast.AST) -> Optional[str]:
        """Name of the repro.units scale ``expr`` divides by, or None."""
        if not (isinstance(expr, ast.BinOp)
                and isinstance(expr.op, ast.Div)):
            return None
        right = expr.right
        dotted = resolve_dotted(right, self.module.imports)
        if dotted is not None and dotted.startswith("repro.units."):
            name = dotted.rsplit(".", 1)[1]
            if name in _SCALE_NAMES:
                return name
        if isinstance(right, ast.Name) and right.id in _SCALE_NAMES:
            return right.id
        if isinstance(right, ast.Constant):
            return self._scale_name(right.value)
        return None

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        values = list(node.values)
        for position, value in enumerate(values):
            if not isinstance(value, ast.FormattedValue):
                continue
            divisor = self._scale_divisor(value.value)
            if divisor is None:
                continue
            if position + 1 >= len(values):
                continue
            text_node = values[position + 1]
            if not (isinstance(text_node, ast.Constant)
                    and isinstance(text_node.value, str)):
                continue
            match = _UNIT_SUFFIX_RE.match(text_node.value)
            if match is None:
                continue
            unit = match.group(0).strip()
            self.report(value.value,
                        f"manual unit formatting: value divided by "
                        f"{divisor} and suffixed '{unit}'; use the "
                        f"repro.units format_* helpers (format_si, "
                        f"format_bytes, format_flops, ...)")
        self.generic_visit(node)


class MagicScaleLiteralRule(Rule):
    """REP003: scale factors come from ``repro.units``, not magic numbers.

    Covers plain literals (``1e9``), shift/exponent spellings
    (``1 << 30``, ``2**20``), derived constant products folding to a
    scale (``1024 * 1024``, ``10 ** 9``), and manual unit formatting
    that bypasses the ``format_*`` helpers
    (``f"{x / MEGA:.0f} MB/s"``).
    """

    code = "REP003"
    name = "magic-scale-literal"
    description = ("no 1e9 / 1 << 30-style scale literals, derived scale "
                   "products (1024 * 1024, 10 ** 9), or manual "
                   "'{x / MEGA} MB'-style unit formatting where "
                   "repro.units provides the constant or format_* helper")
    visitor = _MagicScaleVisitor

    def check(self, module: ModuleInfo) -> List[Finding]:
        """``repro.units`` defines the constants, so it is exempt."""
        if module.dotted == "repro.units":
            return []
        return super().check(module)


class _FloatEqualityVisitor(RuleVisitor):
    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        operands = [node.left] + list(node.comparators)
        has_float = any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        )
        if has_eq and has_float:
            self.report(node, "exact ==/!= against a float literal; use "
                              "math.isclose or an ordered comparison")
        self.generic_visit(node)


class FloatEqualityRule(Rule):
    """REP004: no exact equality against float literals."""

    code = "REP004"
    name = "float-equality"
    description = "no ==/!= comparisons against float literals"
    visitor = _FloatEqualityVisitor


class _MutableDefaultVisitor(RuleVisitor):
    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                      "OrderedDict", "Counter", "deque"}

    def _is_mutable(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def _check_function(self, node: ast.AST) -> None:
        arguments = node.args
        for default in list(arguments.defaults) + list(arguments.kw_defaults):
            if self._is_mutable(default):
                self.report(default, f"mutable default argument in "
                                     f"'{node.name}'; use None and create "
                                     f"inside the body")
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function


class MutableDefaultRule(Rule):
    """REP005: no mutable default arguments."""

    code = "REP005"
    name = "mutable-default"
    description = "no list/dict/set literals (or constructors) as defaults"
    visitor = _MutableDefaultVisitor


def _bound_names(body: Iterable[ast.stmt]) -> Set[str]:
    """Names bound at (conditional) top level: defs, assigns, imports."""
    names: Set[str] = set()
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        names.add(child.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            names |= _bound_names(node.body)
            names |= _bound_names(node.orelse)
        elif isinstance(node, ast.Try):
            names |= _bound_names(node.body)
            names |= _bound_names(node.orelse)
            names |= _bound_names(node.finalbody)
            for handler in node.handlers:
                names |= _bound_names(handler.body)
    return names


def _public_defs(body: Iterable[ast.stmt]) -> List[ast.stmt]:
    """Top-level public def/class statements (recursing into If/Try)."""
    defs: List[ast.stmt] = []
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                defs.append(node)
        elif isinstance(node, ast.If):
            defs.extend(_public_defs(node.body))
            defs.extend(_public_defs(node.orelse))
        elif isinstance(node, ast.Try):
            defs.extend(_public_defs(node.body))
    return defs


class ExportListRule(Rule):
    """REP006: ``__all__`` exists and matches the public surface."""

    code = "REP006"
    name = "export-list"
    description = ("every module defines __all__; every public def/class "
                   "is listed; every entry is bound")

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Compare ``__all__`` against the module's top-level bindings."""
        findings: List[Finding] = []
        declaration: Optional[ast.stmt] = None
        exported: Optional[List[str]] = None
        for node in module.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    declaration = node
                    try:
                        value = ast.literal_eval(node.value)  # type: ignore[arg-type]
                    except (ValueError, SyntaxError):
                        value = None
                    if (isinstance(value, (list, tuple))
                            and all(isinstance(item, str) for item in value)):
                        exported = list(value)
                    else:
                        findings.append(self.finding(
                            module, node, "__all__ is not a literal "
                                          "list/tuple of strings"))
        if declaration is None:
            anchor = module.tree.body[0] if module.tree.body else module.tree
            findings.append(self.finding(
                module, anchor, "module defines no __all__"))
            return findings
        if exported is None:
            return findings
        if len(set(exported)) != len(exported):
            findings.append(self.finding(
                module, declaration, "__all__ has duplicate entries"))
        bound = _bound_names(module.tree.body)
        for name in exported:
            if name not in bound:
                findings.append(self.finding(
                    module, declaration,
                    f"__all__ lists '{name}' but the module never binds it"))
        for public in _public_defs(module.tree.body):
            if public.name not in exported:  # type: ignore[attr-defined]
                findings.append(self.finding(
                    module, public,
                    f"public definition '{public.name}' missing from "  # type: ignore[attr-defined]
                    f"__all__ (export it or prefix with _)"))
        return findings


class _CrossLayerVisitor(RuleVisitor):
    def _target_package(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        if parts[0] != "repro":
            return None
        return parts[1] if len(parts) > 1 else ""

    def _check_target(self, node: ast.AST, dotted: str) -> None:
        target = self._target_package(dotted)
        if target is None:
            return
        source = self.module.package
        source_rank = LAYERS.get(source)
        if source_rank is None:
            return
        if target == "":
            self.report(node, f"repro.{source} imports the package root "
                              f"'repro' (cyclic); import the concrete "
                              f"module instead")
            return
        if target == source:
            return
        target_rank = LAYERS.get(target)
        if target_rank is None:
            return
        if target_rank >= source_rank:
            self.report(node, f"layer violation: repro.{source} "
                              f"(layer {source_rank}) may not import "
                              f"repro.{target} (layer {target_rank})")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                self._check_target(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # import_package is the anchoring package for relative
            # imports — for an __init__.py it is the module's own dotted
            # name, not its parent (a `from . import x` in
            # repro/lint/__init__.py means repro.lint.x).
            package = self.module.import_package
            context = package.split(".") if package else []
            context = context[: len(context) - (node.level - 1)]
            dotted = ".".join(context + ([node.module] if node.module else []))
        else:
            dotted = node.module or ""
        if dotted == "repro" or dotted.startswith("repro."):
            self._check_target(node, dotted)


class CrossLayerImportRule(Rule):
    """REP007: DESIGN.md layering holds (no same- or upward-layer imports)."""

    code = "REP007"
    name = "cross-layer-import"
    description = ("packages import strictly lower DESIGN.md layers only "
                   "(units < obs < sim/tech/analysis < "
                   "network/nodes/scheduler < cluster/messaging < fault "
                   "< io < apps < lint)")
    visitor = _CrossLayerVisitor


class _SeededConstructorVisitor(RuleVisitor):
    _PARAMS = {"seed", "rng"}

    def _check_function(self, node: ast.AST) -> None:
        if node.name.startswith("_"):
            self.generic_visit(node)
            return
        arguments = node.args
        names = [arg.arg for arg in (arguments.posonlyargs + arguments.args
                                     + arguments.kwonlyargs)]
        trigger = next((n for n in names if n in self._PARAMS), None)
        if trigger is not None:
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    dotted = resolve_dotted(child.func, self.module.imports)
                    if dotted in _GENERATOR_CONSTRUCTORS:
                        self.report(child,
                                    f"public function '{node.name}' takes "
                                    f"'{trigger}' but constructs its own "
                                    f"generator via '{dotted}'; derive it "
                                    f"from RandomStreams")
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function


class SeededConstructorRule(Rule):
    """REP008: seeded public APIs accept RandomStreams-derived generators."""

    code = "REP008"
    name = "seeded-constructor"
    description = ("public functions with a seed/rng parameter must not "
                   "construct raw generators; derive from RandomStreams")
    visitor = _SeededConstructorVisitor

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Skip the sanctioned RNG module itself."""
        if module.dotted == _RNG_MODULE:
            return []
        return super().check(module)


class DocstringRule(Rule):
    """REP009: modules and public definitions carry docstrings."""

    code = "REP009"
    name = "docstring-coverage"
    description = ("every module, public top-level def/class, and public "
                   "method of a public class has a docstring (benchmarks "
                   "and tests exempt)")

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Walk the AST instead of importing: covers every module, not
        just the names a package re-exports, and costs no import-time
        side effects (the reflection pass this replaced paid both)."""
        if _in_test_or_benchmark(module):
            return []
        findings: List[Finding] = []
        if not ast.get_docstring(module.tree):
            anchor = module.tree.body[0] if module.tree.body else module.tree
            findings.append(self.finding(
                module, anchor, "module has no docstring"))
        for node in _public_defs(module.tree.body):
            kind = ("class" if isinstance(node, ast.ClassDef)
                    else "function")
            if not ast.get_docstring(node):  # type: ignore[arg-type]
                findings.append(self.finding(
                    module, node,
                    f"public {kind} '{node.name}' has no docstring"))  # type: ignore[attr-defined]
            if isinstance(node, ast.ClassDef):
                for method in _public_defs(node.body):
                    if not isinstance(method, (ast.FunctionDef,
                                               ast.AsyncFunctionDef)):
                        continue
                    if not ast.get_docstring(method):
                        findings.append(self.finding(
                            module, method,
                            f"public method '{node.name}.{method.name}' "
                            f"has no docstring"))
        return findings


class _BroadExceptVisitor(RuleVisitor):
    _BROAD = {"Exception", "BaseException"}

    def _broad_name(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in self._BROAD:
            return expr.id
        dotted = resolve_dotted(expr, self.module.imports)
        if dotted in {"builtins.Exception", "builtins.BaseException"}:
            return dotted.rsplit(".", 1)[1]
        return None

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' swallows injected faults "
                              "(Interrupt, RankFailure); catch the specific "
                              "errors the block can actually handle")
        else:
            exprs = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            for expr in exprs:
                broad = self._broad_name(expr)
                if broad is not None:
                    self.report(expr,
                                f"'except {broad}:' swallows injected "
                                f"faults (Interrupt, RankFailure); catch "
                                f"the specific errors the block can "
                                f"actually handle")
        self.generic_visit(node)


class BroadExceptRule(Rule):
    """REP010: no blanket exception handlers in model code."""

    code = "REP010"
    name = "broad-except"
    description = ("no bare 'except:' / 'except Exception:' / "
                   "'except BaseException:' in model code — blanket "
                   "handlers swallow injected faults and simulator "
                   "interrupts (benchmarks and tests exempt)")
    visitor = _BroadExceptVisitor

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Test harnesses legitimately catch everything."""
        if _in_test_or_benchmark(module):
            return []
        return super().check(module)


#: The registry, in catalog order.
RULES: Tuple[Rule, ...] = (
    RandomSourceRule(),
    WallClockRule(),
    MagicScaleLiteralRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    ExportListRule(),
    CrossLayerImportRule(),
    SeededConstructorRule(),
    DocstringRule(),
    BroadExceptRule(),
    UnorderedIterationRule(),
    RngAliasRule(),
    IdentityOrderRule(),
)


def get_rules(select: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """The registered rules, optionally filtered to the given codes."""
    if select is None:
        return RULES
    wanted = {code.upper() for code in select}
    unknown = wanted - {rule.code for rule in RULES}
    if unknown:
        raise ValueError(f"unknown rule codes: {sorted(unknown)}")
    return tuple(rule for rule in RULES if rule.code in wanted)
