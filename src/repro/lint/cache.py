"""Incremental lint cache: re-check only files whose content changed.

A cold ``python -m repro lint`` parses every file and runs every rule
over it; on a warm, unchanged tree that work is pure waste (and grows
linearly with the tree).  The cache remembers each file's findings,
keyed by three things that together determine them exactly:

* the file's **content SHA-256** — findings depend only on source text
  (``# repro: noqa`` suppressions are comments, hence part of the hash);
* a **rule-set fingerprint** — SHA-256 over the active selection's
  ``(code, name, severity, description)`` tuples, so ``--select`` subsets
  and edited rule metadata never serve stale results;
* the **engine version** (:data:`repro.lint.engine.ENGINE_VERSION`) —
  bumped manually when engine semantics change without touching rule
  metadata.

Entries persist as deterministic JSON (sorted keys, stable indent) in
``.repro-lint-cache/cache.json`` under the lint root.  Any mismatch —
edited file, different rule selection, bumped engine version, corrupt or
truncated cache file — degrades to a cold check of the affected scope.
The cache can therefore never change *what* is reported, only how much
re-parsing it takes (``tests/test_lint_cache.py`` proves byte-identical
findings with and without it).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import ENGINE_VERSION, Finding, Rule

__all__ = [
    "CACHE_DIR_NAME",
    "CACHE_FILE_NAME",
    "LintCache",
    "rule_fingerprint",
]

#: Directory created under the lint root to hold the cache file.
CACHE_DIR_NAME = ".repro-lint-cache"

#: The single JSON document inside :data:`CACHE_DIR_NAME`.
CACHE_FILE_NAME = "cache.json"


def rule_fingerprint(rules: Sequence[Rule]) -> str:
    """SHA-256 fingerprint of a rule selection's identity.

    Covers each rule's code, name, severity, and description, order-
    independently: the same set of rules always fingerprints the same,
    and editing any rule's metadata (the conventional marker that its
    semantics moved) invalidates every cached entry.
    """
    parts = sorted(
        "\x1f".join((rule.code, rule.name, rule.severity, rule.description))
        for rule in rules
    )
    return hashlib.sha256("\x1e".join(parts).encode("utf-8")).hexdigest()


def _content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _decode_findings(raw: object) -> Optional[List[Finding]]:
    """Decode a stored findings list; ``None`` on any malformation."""
    if not isinstance(raw, list):
        return None
    findings: List[Finding] = []
    for item in raw:
        if not isinstance(item, dict):
            return None
        try:
            findings.append(Finding(
                path=str(item["path"]),
                line=int(item["line"]),
                column=int(item["column"]),
                rule=str(item["rule"]),
                message=str(item["message"]),
                severity=str(item["severity"]),
            ))
        except (KeyError, TypeError, ValueError):
            return None
    return findings


class LintCache:
    """Per-file findings keyed by content hash, rule set, engine version.

    One instance corresponds to one ``(directory, rules, engine_version)``
    triple.  ``get``/``put`` operate on a single file's raw (pre-baseline)
    findings; ``save`` persists the accumulated state.  A missing,
    corrupt, or mismatched cache file simply loads as empty — the caller
    never needs to handle cache errors.
    """

    def __init__(self, directory: Path, rules: Sequence[Rule],
                 engine_version: int = ENGINE_VERSION) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CACHE_FILE_NAME
        self.fingerprint = rule_fingerprint(rules)
        self.engine_version = engine_version
        self._files: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # missing, unreadable, or truncated: start cold
        if not isinstance(data, dict):
            return
        if data.get("engine_version") != self.engine_version:
            return
        if data.get("rule_fingerprint") != self.fingerprint:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    def get(self, rel: str, source: str) -> Optional[List[Finding]]:
        """Cached file-scope findings for ``rel`` at this content, or None.

        Returns ``None`` (a miss) when the file is unknown, its content
        hash differs, or the stored entry is malformed in any way.
        """
        entry = self._files.get(rel)
        if not isinstance(entry, dict):
            return None
        if entry.get("sha256") != _content_digest(source):
            return None
        return _decode_findings(entry.get("findings"))

    def get_project(self, rel: str, source: str,
                    tree: str) -> Optional[List[Finding]]:
        """Cached project-scope findings for ``rel``, or ``None``.

        Project findings depend on the *whole* scanned tree, so the entry
        is additionally keyed by the tree fingerprint
        (:func:`repro.lint.engine.tree_fingerprint`): any file changing
        anywhere misses every project entry at once.
        """
        entry = self._files.get(rel)
        if not isinstance(entry, dict):
            return None
        if entry.get("sha256") != _content_digest(source):
            return None
        project = entry.get("project")
        if not isinstance(project, dict) or project.get("tree") != tree:
            return None
        return _decode_findings(project.get("findings"))

    def put(self, rel: str, source: str,
            findings: Sequence[Finding]) -> None:
        """Record file-scope ``findings`` for ``rel`` at this content."""
        self._files[rel] = {
            "sha256": _content_digest(source),
            "findings": [f.as_dict() for f in sorted(findings)],
        }
        self._dirty = True

    def put_project(self, rel: str, source: str, tree: str,
                    findings: Sequence[Finding]) -> None:
        """Record project-scope ``findings`` for ``rel`` at this tree."""
        digest = _content_digest(source)
        entry = self._files.get(rel)
        if not isinstance(entry, dict) or entry.get("sha256") != digest:
            # No matching file-scope entry (shouldn't happen in a normal
            # run): store a null findings list so get() still misses.
            entry = {"sha256": digest, "findings": None}
            self._files[rel] = entry
        entry["project"] = {
            "tree": tree,
            "findings": [f.as_dict() for f in sorted(findings)],
        }
        self._dirty = True

    def save(self) -> None:
        """Write the cache file (deterministic JSON); no-op when clean.

        Skipping the write on an all-hits run keeps a warm lint from
        touching the filesystem at all beyond reads.
        """
        if not self._dirty:
            return
        payload = {
            "version": 1,
            "tool": "repro.lint",
            "engine_version": self.engine_version,
            "rule_fingerprint": self.fingerprint,
            "files": self._files,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        self._dirty = False
