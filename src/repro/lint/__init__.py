"""``repro.lint`` — AST-based invariant checker for the reproduction.

The simulator's credibility rests on conventions no test can see from the
outside: every stochastic draw flows through
:class:`~repro.sim.rng.RandomStreams`, every quantity is in base SI units
via :mod:`repro.units`, simulated time never reads the wall clock, and
the DESIGN.md layering holds.  This package machine-checks those
conventions (REP001-REP013) instead of trusting comments — file-scope
rules per module, plus whole-program dataflow rules
(:mod:`repro.lint.dataflow`) that follow symbols across imports:

* ``python -m repro lint`` — run the checker (see :mod:`repro.lint.cli`);
  warm runs are incremental via a content-hash cache
  (:mod:`repro.lint.cache`);
* ``tests/test_lint_self.py`` — CI gate: the codebase lints clean;
* DESIGN.md "Rule catalog" — what each rule enforces and why.

The engine is stdlib-``ast`` only and layered above everything else:
nothing in the model imports ``repro.lint``.
"""

from repro.lint.cache import (
    CACHE_DIR_NAME,
    LintCache,
    rule_fingerprint,
)
from repro.lint.dataflow import SymbolGraph
from repro.lint.engine import (
    ENGINE_VERSION,
    ERROR,
    WARNING,
    Finding,
    ImportMap,
    LintResult,
    ModuleInfo,
    ProjectRule,
    Rule,
    RuleVisitor,
    apply_baseline,
    iter_python_files,
    lint_module,
    lint_module_project,
    lint_paths,
    load_baseline,
    resolve_dotted,
    tree_fingerprint,
    write_baseline,
)
from repro.lint.rules import LAYERS, RULES, get_rules

__all__ = [
    "CACHE_DIR_NAME",
    "ENGINE_VERSION",
    "ERROR",
    "WARNING",
    "Finding",
    "ImportMap",
    "LAYERS",
    "LintCache",
    "LintResult",
    "ModuleInfo",
    "ProjectRule",
    "RULES",
    "Rule",
    "RuleVisitor",
    "SymbolGraph",
    "apply_baseline",
    "get_rules",
    "iter_python_files",
    "lint_module",
    "lint_module_project",
    "lint_paths",
    "load_baseline",
    "resolve_dotted",
    "rule_fingerprint",
    "tree_fingerprint",
    "write_baseline",
]
