"""Command-line front end: ``python -m repro lint``.

::

    python -m repro lint                         # lint src/repro, text output
    python -m repro lint --format json           # machine-readable findings
    python -m repro lint --select REP001,REP007  # subset of rules
    python -m repro lint --write-baseline        # grandfather current findings
    python -m repro lint --no-baseline           # ignore the baseline file
    python -m repro lint --no-cache              # ignore the incremental cache
    python -m repro lint -j 4                    # cold checks on 4 processes
    python -m repro lint --stats                 # report hits + wall time
    python -m repro lint --list-rules            # print the rule catalog
    python -m repro lint path/to/file.py ...     # explicit targets

Results are cached per file under ``.repro-lint-cache/`` at the lint
root (see :mod:`repro.lint.cache`), so a warm run on an unchanged tree
only re-hashes files instead of re-parsing them; ``--no-cache`` is the
escape hatch and ``--stats`` shows what the cache did.

Exit status: 0 when no error-severity findings remain after baseline and
``# repro: noqa`` suppression, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.cache import CACHE_DIR_NAME, LintCache
from repro.lint.engine import LintResult, lint_paths, load_baseline, \
    write_baseline
from repro.lint.rules import RULES, get_rules

__all__ = ["add_arguments", "default_root", "default_targets", "main", "run"]

#: Baseline filename looked up at the lint root when ``--baseline`` is
#: not given explicitly.
BASELINE_NAME = "lint-baseline.json"


def default_root() -> Path:
    """The repository root when running from a src-layout checkout.

    Falls back to the installed package's parent directory, which keeps
    finding paths stable (``src/repro/...``) wherever possible.
    """
    package_dir = Path(__file__).resolve().parent.parent
    if package_dir.parent.name == "src":
        return package_dir.parent.parent
    return package_dir.parent


def default_targets(root: Path) -> List[Path]:
    """What to lint when no paths are given: the ``repro`` package."""
    src_layout = root / "src" / "repro"
    if src_layout.is_dir():
        return [src_layout]
    return [Path(__file__).resolve().parent.parent]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro.__main__``)."""
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {BASELINE_NAME} "
                             f"at the repo root, when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(e.g. REP001,REP007)")
    parser.add_argument("--root", type=Path, default=None,
                        help="directory findings paths are relative to")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental result cache "
                             "(re-parse every file)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"cache directory (default: {CACHE_DIR_NAME} "
                             f"at the lint root)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for cold file checks "
                             "(0 = one per CPU; findings are identical "
                             "to a serial run)")
    parser.add_argument("--stats", action="store_true",
                        help="report files scanned, cache hits, and wall "
                             "time")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _stats_dict(result: LintResult, elapsed: float) -> dict:
    scanned = result.files_scanned
    hits = result.cache_hits
    return {
        "files_scanned": scanned,
        "cache_hits": hits,
        "cache_hit_rate": round(hits / scanned, 4) if scanned else 0.0,
        "project_cache_hits": result.project_cache_hits,
        "wall_time_seconds": round(elapsed, 6),
    }


def _render_text(result: LintResult, baseline_note: str,
                 elapsed: Optional[float] = None) -> str:
    lines = [finding.render() for finding in result.findings]
    errors = len(result.errors)
    warnings = len(result.findings) - errors
    cache_note = (f", {result.cache_hits} cached"
                  if result.cache_hits else "")
    summary = (f"{errors} error(s), {warnings} warning(s) in "
               f"{result.files_scanned} file(s){baseline_note}{cache_note}")
    lines.append(summary)
    if elapsed is not None:
        stats = _stats_dict(result, elapsed)
        lines.append(f"stats: {stats['files_scanned']} file(s) scanned, "
                     f"{stats['cache_hits']} cache hit(s) "
                     f"({stats['cache_hit_rate']:.0%}), wall time "
                     f"{stats['wall_time_seconds']:.3f}s")
    return "\n".join(lines)


def _render_json(result: LintResult,
                 elapsed: Optional[float] = None) -> str:
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": len(result.errors),
        "files_scanned": result.files_scanned,
        "baselined": result.baselined,
        "cache_hits": result.cache_hits,
    }
    if elapsed is not None:
        payload["stats"] = _stats_dict(result, elapsed)
    return json.dumps(payload, indent=2)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation and print its report."""
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.name:20s} [{rule.severity}] "
                  f"{rule.description}")
        return 0

    started = time.perf_counter()  # repro: noqa[REP002] lint is a host-side tool; --stats times the linter itself, not the model

    try:
        select = (None if args.select is None
                  else [c.strip().upper() for c in args.select.split(",")
                        if c.strip()])
        rules = get_rules(select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    root = (args.root or default_root()).resolve()
    paths = [p for p in (args.paths or default_targets(root))]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or (root / BASELINE_NAME)
    baseline = set() if args.no_baseline else load_baseline(baseline_path)

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir or (root / CACHE_DIR_NAME)
        cache = LintCache(cache_dir, rules)

    jobs = args.jobs
    if jobs == 0:
        import os
        jobs = os.cpu_count() or 1
    if jobs < 1:
        print(f"error: --jobs must be >= 0, got {args.jobs}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        raw = lint_paths(paths, root, rules, baseline=None, cache=cache,
                         jobs=jobs)
        write_baseline(baseline_path, raw.findings)
        print(f"wrote {len(raw.findings)} finding(s) to {baseline_path}")
        return 0

    result = lint_paths(paths, root, rules, baseline=baseline, cache=cache,
                        jobs=jobs)
    elapsed = time.perf_counter() - started  # repro: noqa[REP002] see above: wall time of the lint run itself
    stats_elapsed = elapsed if args.stats else None
    note = f", {result.baselined} baselined" if result.baselined else ""
    if args.format == "json":
        print(_render_json(result, stats_elapsed))
    else:
        print(_render_text(result, note, stats_elapsed))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based invariant checker for the repro codebase",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
