"""Exporters: Chrome ``trace_event`` JSON and a plain-text metrics dump.

The Chrome format (loadable in Perfetto / ``chrome://tracing``) wants
microsecond timestamps, one ``pid``/``tid`` pair per row of the UI, and
phase codes: ``"X"`` for complete (begin+duration) events, ``"i"`` for
instants, ``"M"`` for metadata such as thread names.  We map one span
track to one ``tid``, assigned in sorted-track-name order so the same
simulation always yields the same file — the golden-file test asserts
byte-identical output across runs with one seed.

Everything here is a pure function of an :class:`~repro.obs.spans.\
Observability`; nothing mutates it except :func:`chrome_trace` calling
``finalize()`` to close dangling spans before rendering.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.metrics import MetricKey, MetricsRegistry
from repro.obs.spans import Observability
from repro.units import MEGA

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "render_metrics",
    "write_chrome_trace",
    "write_metrics",
]

#: All spans live in one synthetic process in the trace UI.
_PID = 1


def _microseconds(seconds: float) -> float:
    """Virtual seconds -> the microseconds Chrome expects."""
    return seconds * MEGA


def chrome_trace(obs: Observability) -> Dict[str, Any]:
    """Render ``obs`` as a Chrome ``trace_event`` document (a dict).

    Tracks become tids in sorted-name order; events are sorted by
    ``(tid, ts, -dur, name)`` so enclosing spans precede their children
    and the output is a pure function of the recorded data.
    """
    obs.finalize()
    tracks = sorted({s.track for s in obs.spans}
                    | {i.track for i in obs.instants})
    tids = {track: index + 1 for index, track in enumerate(tracks)}

    events: List[Dict[str, Any]] = []
    for track in tracks:
        events.append({
            "ph": "M", "pid": _PID, "tid": tids[track],
            "name": "thread_name", "args": {"name": track},
        })

    rows: List[Dict[str, Any]] = []
    for span in obs.spans:
        args: Dict[str, Any] = dict(span.attrs)
        if span.status != "ok":
            args["status"] = span.status
        rows.append({
            "ph": "X", "pid": _PID, "tid": tids[span.track],
            "name": span.name, "ts": _microseconds(span.start),
            "dur": _microseconds(span.duration), "args": args,
        })
    for inst in obs.instants:
        rows.append({
            "ph": "i", "pid": _PID, "tid": tids[inst.track],
            "name": inst.name, "ts": _microseconds(inst.time),
            "s": "t", "args": dict(inst.attrs),
        })
    rows.sort(key=lambda e: (e["tid"], e["ts"], -e.get("dur", 0.0),
                             e["name"]))
    events.extend(rows)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(obs: Observability) -> str:
    """The trace document serialized deterministically (sorted keys)."""
    return json.dumps(chrome_trace(obs), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(obs: Observability, path: str) -> None:
    """Write the Chrome trace JSON for ``obs`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(obs))
        handle.write("\n")


def _format_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def render_metrics(registry: MetricsRegistry) -> str:
    """Plain-text dump of every series, one line each, sorted by key.

    Format is ``kind name{labels} value`` — close enough to Prometheus
    exposition to be greppable, deliberately not claiming compliance.
    """
    lines: List[str] = []
    for counter in registry.counters():
        lines.append(
            f"counter {_format_key(counter.key)} {counter.value:g}")
    for gauge in registry.gauges():
        lines.append(f"gauge {_format_key(gauge.key)} {gauge.value:g}")
    for hist in registry.histograms():
        summary = hist.summary()
        parts = " ".join(
            f"{k}={summary[k]:g}" for k in sorted(summary))
        lines.append(f"histogram {_format_key(hist.key)} {parts}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write the plain-text metrics dump for ``registry`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_metrics(registry))
