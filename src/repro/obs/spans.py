"""Sim-time spans: the tracing half of the observability layer.

A *span* is a named interval of virtual time on a *track* (one track per
simulated process, plus explicit tracks like ``"campaign"``).  Spans
nest: opening a span while another is open on the same track makes it a
child, and because every track follows one generator call stack, the
resulting forest is properly nested by construction — a property the
test suite asserts over randomized application runs.

The two implementations share one interface:

* :class:`Observability` records everything (spans, instants, metrics);
* :class:`NullObservability` — the default on every simulator — returns
  the :data:`NULL_SPAN` singleton from :meth:`~Observability.span` and
  discards the rest.  The disabled path costs one call and one ``with``
  block, which the perf bench bounds at <=3% of instrumented workloads.

Instrumented code never imports a concrete class; it asks its simulator
for ``sim.obs`` and calls :meth:`~Observability.span` /
:meth:`~Observability.instant` unconditionally::

    with sim.obs.span("fabric.transfer", src=src, dst=dst):
        ...

Clocks are injected (:meth:`Observability.bind_clock`) so this package
stays below ``repro.sim`` in the layering and both the event engine and
the scheduler's standalone loop can feed it timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)

__all__ = [
    "DEFAULT_TRACK",
    "InstantRecord",
    "NULL_OBS",
    "NULL_SPAN",
    "NullObservability",
    "NullSpan",
    "Observability",
    "Span",
    "SpanRecord",
]

#: Track used when no process-specific track has been established.
DEFAULT_TRACK = "main"


@dataclass
class SpanRecord:
    """One closed (or finalized) span.

    ``parent_id`` refers to the enclosing span's ``span_id`` on the same
    track (``None`` for track roots).  ``status`` is ``"ok"``,
    ``"error"`` (an exception escaped the body) or ``"open"`` (the span
    was still open when the trace was finalized).
    """

    span_id: int
    name: str
    track: str
    start: float
    end: float
    parent_id: Optional[int]
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class InstantRecord:
    """A point event on a track (exported as a Chrome ``ph: "i"``)."""

    name: str
    track: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """Handle to an open span; also its own context manager.

    Returned by :meth:`Observability.span`.  Close either by leaving the
    ``with`` block or by calling :meth:`close` explicitly (the campaign
    supervisor holds incarnation spans across ``sim.run`` calls).
    """

    __slots__ = ("_obs", "record", "_closed")

    def __init__(self, obs: "Observability", record: SpanRecord) -> None:
        self._obs = obs
        self.record = record
        self._closed = False

    def __bool__(self) -> bool:
        """True: this is a live, recording span (cf. :class:`NullSpan`)."""
        return True

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered after the span opened."""
        self.record.attrs.update(attrs)
        return self

    def close(self, status: str = "ok") -> None:
        """Close the span at the current clock reading."""
        if self._closed:
            return
        self._closed = True
        self._obs._close_span(self, status)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close("error" if exc_type is not None else "ok")
        return False


class NullSpan:
    """The do-nothing span: one shared instance, falsy, no state."""

    __slots__ = ()

    def __bool__(self) -> bool:
        """False: lets callers skip attribute computation when disabled."""
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        """Discard the attributes."""
        return self

    def close(self, status: str = "ok") -> None:
        """No-op."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: The singleton every disabled ``span()`` call returns.
NULL_SPAN = NullSpan()


class Observability:
    """Recording tracer + metrics registry for one simulation.

    Spans and instants land on *tracks*; the current track is switched
    by the event engine as it resumes processes, so instrumentation
    sites never name their track explicitly (supervisor-level code, which
    runs outside any process, passes ``track=`` instead).
    """

    #: Fast-path flag callers may cache (``sim._obs_enabled``).
    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = (
            clock if clock is not None else lambda: 0.0)
        self.metrics: MetricsRegistry = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self._stacks: Dict[str, List[Span]] = {}
        self._current_track: str = DEFAULT_TRACK
        self._next_span_id = 0
        self._track_uses: Dict[str, int] = {}

    # -- clock & track plumbing (called by the engine) --------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a time source (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    def now(self) -> float:
        """Current reading of the bound clock."""
        return self._clock()

    @property
    def current_track(self) -> str:
        """The track new spans land on when none is named."""
        return self._current_track

    def set_track(self, track: str) -> None:
        """Switch the current track (the engine calls this per resume)."""
        self._current_track = track

    def unique_track(self, name: str) -> str:
        """A track name not yet in use, derived from ``name``.

        Process names repeat across campaign incarnations; the first use
        keeps the bare name, later ones get a ``~k`` suffix — assignment
        order is deterministic because process creation order is.
        """
        count = self._track_uses.get(name, 0)
        self._track_uses[name] = count + 1
        return name if count == 0 else f"{name}~{count}"

    # -- recording ---------------------------------------------------------

    def span(self, name: str, track: Optional[str] = None,
             **attrs: Any) -> Span:
        """Open a span at the current clock; use as a context manager."""
        where = track if track is not None else self._current_track
        stack = self._stacks.get(where)
        if stack is None:
            stack = self._stacks[where] = []
        parent = stack[-1].record.span_id if stack else None
        self._next_span_id += 1
        record = SpanRecord(span_id=self._next_span_id, name=name,
                            track=where, start=self._clock(),
                            end=float("nan"), parent_id=parent, attrs=attrs)
        handle = Span(self, record)
        stack.append(handle)
        return handle

    def _close_span(self, handle: Span, status: str) -> None:
        record = handle.record
        record.end = self._clock()
        record.status = status
        stack = self._stacks.get(record.track, [])
        if handle in stack:
            stack.remove(handle)
        self.spans.append(record)

    def add_span(self, name: str, start: float, end: float,
                 track: Optional[str] = None, status: str = "ok",
                 **attrs: Any) -> SpanRecord:
        """Record a span retroactively (both endpoints already known).

        Used for intervals only identifiable after the fact, like the
        lost-work window behind a node fault.  Retroactive spans are
        track roots (no parent inference)."""
        record = SpanRecord(
            span_id=self._bump_id(), name=name,
            track=track if track is not None else self._current_track,
            start=start, end=end, parent_id=None, status=status, attrs=attrs)
        self.spans.append(record)
        return record

    def instant(self, name: str, track: Optional[str] = None,
                time: Optional[float] = None, **attrs: Any) -> None:
        """Record a point event at ``time`` (default: the clock now)."""
        self.instants.append(InstantRecord(
            name=name,
            track=track if track is not None else self._current_track,
            time=time if time is not None else self._clock(),
            attrs=attrs))

    def _bump_id(self) -> int:
        self._next_span_id += 1
        return self._next_span_id

    def finalize(self) -> None:
        """Close every still-open span (status ``"open"``) — call before
        exporting so teardown-interrupted incarnations still render."""
        for stack in self._stacks.values():
            for handle in reversed(list(stack)):
                handle.close("open")

    # -- convenience -------------------------------------------------------

    def counter(self, name: str, **labels: str):
        """Shorthand for ``self.metrics.counter(...)``."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str):
        """Shorthand for ``self.metrics.gauge(...)``."""
        return self.metrics.gauge(name, **labels)

    def span_tree(self) -> Dict[str, List[SpanRecord]]:
        """Finished spans grouped by track, each list sorted by
        ``(start, -duration)`` so parents precede their children."""
        grouped: Dict[str, List[SpanRecord]] = {}
        for record in self.spans:
            grouped.setdefault(record.track, []).append(record)
        for records in grouped.values():
            records.sort(key=lambda r: (r.start, -r.duration, r.span_id))
        return grouped


class NullObservability(Observability):
    """Discards everything; the default wired into every simulator.

    :meth:`span` returns the shared :data:`NULL_SPAN` without touching
    any state, and the metrics registry is the no-op
    :class:`~repro.obs.metrics.NullMetricsRegistry` — so instrumented
    hot paths cost a call and a truth test when observability is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.metrics: NullMetricsRegistry = NULL_REGISTRY

    def span(self, name: str, track: Optional[str] = None,
             **attrs: Any) -> NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return NULL_SPAN

    def add_span(self, name: str, start: float, end: float,
                 track: Optional[str] = None, status: str = "ok",
                 **attrs: Any) -> None:  # type: ignore[override]
        """Discard the span."""

    def instant(self, name: str, track: Optional[str] = None,
                time: Optional[float] = None, **attrs: Any) -> None:
        """Discard the event."""

    def set_track(self, track: str) -> None:
        """No-op (there is nothing to attribute)."""


#: Shared disabled instance; safe to share because it holds no state.
NULL_OBS = NullObservability()
