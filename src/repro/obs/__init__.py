"""repro.obs — cross-cutting observability: spans, metrics, exporters.

Layer rank 5: above :mod:`repro.units`, below everything else, so the
simulator, fabric, messaging, fault supervisor and scheduler can all
import it.  It never imports upward — time comes in through an injected
clock callable (:meth:`Observability.bind_clock`).

Three pieces:

* :mod:`repro.obs.spans` — sim-time span tracing with per-track nesting
  and a zero-cost :class:`NullSpan` path when disabled;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  deterministic iteration, snapshot and reset;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  plain-text metrics rendering, surfaced as ``python -m repro trace``.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    render_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.spans import (
    DEFAULT_TRACK,
    NULL_OBS,
    NULL_SPAN,
    InstantRecord,
    NullObservability,
    NullSpan,
    Observability,
    Span,
    SpanRecord,
)

__all__ = [
    "Counter",
    "DEFAULT_TRACK",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullMetricsRegistry",
    "NullObservability",
    "NullSpan",
    "Observability",
    "Span",
    "SpanRecord",
    "chrome_trace",
    "chrome_trace_json",
    "render_metrics",
    "write_chrome_trace",
    "write_metrics",
]
