"""Named counters, gauges and histograms with label sets.

The registry is the numeric half of the observability layer: span-heavy
code records *where* virtual time goes, metrics record *how much* of
everything happened.  Identity is ``(name, sorted label items)``, so

::

    registry.counter("comm.sends", rank="0").inc()
    registry.counter("comm.sends", rank="1").inc()

creates two series under one name.  Handles are cached — instrumented
hot paths may call :meth:`MetricsRegistry.counter` per event without
allocating — and iteration order is sorted by key, never insertion
order, so renders and snapshots are deterministic regardless of which
code path touched a series first.

Existing per-layer summaries (``repro.cluster.metrics``,
``repro.scheduler.metrics``) stay the computation site; they gained
``publish()`` methods that copy their fields into a registry so one
trace dump covers every layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricKey",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullMetricsRegistry",
]

#: Identity of one series: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    return name, tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (resets only via the registry)."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter decrement: {amount!r}")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, nodes busy)."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta`` (may be negative)."""
        self.value += delta


class Histogram:
    """Streaming summary of observations: count/sum/min/max + samples.

    Keeps every observation (simulations are small enough) so exports
    can compute exact quantiles; ``summary()`` is what renders.
    """

    __slots__ = ("key", "samples")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self.samples)

    def summary(self) -> Dict[str, float]:
        """count/sum/min/mean/max of the observations so far."""
        if not self.samples:
            return {"count": 0.0, "sum": 0.0}
        return {
            "count": float(len(self.samples)),
            "sum": sum(self.samples),
            "min": min(self.samples),
            "mean": sum(self.samples) / len(self.samples),
            "max": max(self.samples),
        }


@dataclass(frozen=True)
class _Snapshot:
    """Immutable copy of a registry at one moment (see ``snapshot()``)."""

    counters: Dict[MetricKey, float]
    gauges: Dict[MetricKey, float]
    histograms: Dict[MetricKey, Tuple[float, ...]]


class MetricsRegistry:
    """Create-or-fetch home for every metric series in one simulation."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = _key(name, labels)
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(key)
        return handle

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = _key(name, labels)
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(key)
        return handle

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = _key(name, labels)
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(key)
        return handle

    # -- deterministic iteration ------------------------------------------

    def counters(self) -> Iterator[Counter]:
        """Counters in sorted-key order (independent of creation order)."""
        for key in sorted(self._counters):
            yield self._counters[key]

    def gauges(self) -> Iterator[Gauge]:
        """Gauges in sorted-key order."""
        for key in sorted(self._gauges):
            yield self._gauges[key]

    def histograms(self) -> Iterator[Histogram]:
        """Histograms in sorted-key order."""
        for key in sorted(self._histograms):
            yield self._histograms[key]

    def __len__(self) -> int:
        """Total number of registered series."""
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- snapshot / reset --------------------------------------------------

    def snapshot(self) -> _Snapshot:
        """Immutable copy of all current values (for before/after diffs)."""
        return _Snapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: tuple(h.samples)
                        for k, h in self._histograms.items()},
        )

    def reset(self) -> None:
        """Zero every series, keeping the handles callers already hold."""
        for c in self._counters.values():
            c.value = 0.0
        for g in self._gauges.values():
            g.value = 0.0
        for h in self._histograms.values():
            h.samples.clear()


class NullCounter(Counter):
    """Counter that discards increments (shared; holds no state)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""


class NullGauge(Gauge):
    """Gauge that discards writes (shared; holds no state)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """No-op."""

    def add(self, delta: float) -> None:
        """No-op."""


class NullHistogram(Histogram):
    """Histogram that discards observations (shared; holds no state)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_COUNTER = NullCounter(("", ()))
_NULL_GAUGE = NullGauge(("", ()))
_NULL_HISTOGRAM = NullHistogram(("", ()))


class NullMetricsRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments."""

    def counter(self, name: str, **labels: str) -> Counter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM


#: Shared disabled registry used by ``NullObservability``.
NULL_REGISTRY = NullMetricsRegistry()
