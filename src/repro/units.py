"""Unit helpers for the quantities the cluster-futures models trade in.

Everything in :mod:`repro` is stored internally in *base SI-ish* units:

* compute rate   — FLOPS (floating point operations per second)
* capacity       — bytes
* time           — seconds
* power          — watts
* money          — US dollars (nominal, no inflation adjustment)
* area           — square metres

These helpers exist so model code and reports never juggle magic
``1e9``-style constants: parse human strings (``"4.5 GFLOPS"``,
``"512 MB"``), scale values, and format them back for tables.

The module is dependency-free (stdlib only) so every layer may import it.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Tuple

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "PETA",
    "EXA",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "parse_flops",
    "parse_bytes",
    "parse_time",
    "format_flops",
    "format_bytes",
    "format_time",
    "format_power",
    "format_dollars",
    "format_si",
    "doubling_time_from_cagr",
    "cagr_from_doubling_time",
    "UnitError",
]

# Decimal (SI) prefixes — used for rates (FLOPS, bit/s) and money.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15
EXA = 1e18

# Binary prefixes — used for memory capacities when exactness matters.
KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

_SI_PREFIXES: Dict[str, float] = {
    "": 1.0,
    "k": KILO,
    "K": KILO,
    "M": MEGA,
    "G": GIGA,
    "T": TERA,
    "P": PETA,
    "E": EXA,
}

_BINARY_PREFIXES: Dict[str, float] = {
    "Ki": KIB,
    "Mi": MIB,
    "Gi": GIB,
    "Ti": TIB,
}

_TIME_SUFFIXES: Dict[str, float] = {
    "ns": 1e-9,
    "us": 1e-6,
    "µs": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "min": 60.0,
    "m": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
    "y": 365.25 * 86400.0,
    "yr": 365.25 * 86400.0,
}


class UnitError(ValueError):
    """Raised when a quantity string cannot be parsed."""


_NUMBER_RE = re.compile(
    r"^\s*([-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)\s*([A-Za-zµ/]*)\s*$"
)


def _split(text: str) -> Tuple[float, str]:
    """Split ``"12.5 GFLOPS"`` into ``(12.5, "GFLOPS")``."""
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    return float(match.group(1)), match.group(2)


def parse_flops(text: str) -> float:
    """Parse a compute rate like ``"2 GFLOPS"`` or ``"1.5 Tflops"`` to FLOPS.

    A bare number (``"3e9"``) is taken to already be in FLOPS.
    """
    value, unit = _split(text)
    if unit == "":
        return value
    lowered = unit.lower()
    if not lowered.endswith(("flops", "flop/s")):
        raise UnitError(f"not a FLOPS quantity: {text!r}")
    prefix = unit[: len(unit) - (6 if lowered.endswith("flop/s") else 5)]
    try:
        return value * _SI_PREFIXES[prefix]
    except KeyError:
        raise UnitError(f"unknown FLOPS prefix {prefix!r} in {text!r}") from None


def parse_bytes(text: str) -> float:
    """Parse a capacity like ``"512 MB"``, ``"16 GiB"`` or ``"2TB"`` to bytes.

    Decimal prefixes (``MB``) are powers of ten; binary prefixes (``MiB``)
    are powers of two, matching universal storage-industry practice.
    """
    value, unit = _split(text)
    if unit == "":
        return value
    if not unit.endswith("B"):
        raise UnitError(f"not a byte quantity: {text!r}")
    prefix = unit[:-1]
    if prefix in _BINARY_PREFIXES:
        return value * _BINARY_PREFIXES[prefix]
    try:
        return value * _SI_PREFIXES[prefix]
    except KeyError:
        raise UnitError(f"unknown byte prefix {prefix!r} in {text!r}") from None


def parse_time(text: str) -> float:
    """Parse a duration like ``"5 us"``, ``"1.5 h"`` or ``"30"`` to seconds."""
    value, unit = _split(text)
    if unit == "":
        return value
    try:
        return value * _TIME_SUFFIXES[unit]
    except KeyError:
        raise UnitError(f"unknown time suffix {unit!r} in {text!r}") from None


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with the best decimal prefix, e.g. ``format_si(2.5e9,
    "FLOPS")`` -> ``"2.5 GFLOPS"``.

    Values below 1 fall back to scientific notation rather than milli-
    prefixes, since sub-unit rates never appear in our reports.
    """
    if value == 0:
        return f"0 {unit}"
    if not math.isfinite(value):
        return f"{value} {unit}"
    magnitude = abs(value)
    for prefix, factor in (
        ("E", EXA),
        ("P", PETA),
        ("T", TERA),
        ("G", GIGA),
        ("M", MEGA),
        ("k", KILO),
    ):
        # The relative tolerance keeps values a float-ulp below a prefix
        # boundary (e.g. 8 Gb/s -> 999999999.9999999 B/s) from dropping a
        # prefix and rendering as "1e+03 MB/s" instead of "1 GB/s".
        if magnitude >= factor * (1.0 - 1e-9):
            return f"{value / factor:.{precision}g} {prefix}{unit}"
    if magnitude >= 1:
        return f"{value:.{precision}g} {unit}"
    return f"{value:.{precision}e} {unit}"


def format_flops(value: float, precision: int = 3) -> str:
    """Format a FLOPS rate with the best SI prefix."""
    return format_si(value, "FLOPS", precision)


def format_bytes(value: float, precision: int = 3) -> str:
    """Format a byte capacity with the best *binary* prefix (``GiB`` etc.)."""
    if value == 0:
        return "0 B"
    magnitude = abs(value)
    for prefix, factor in (("Ti", TIB), ("Gi", GIB), ("Mi", MIB), ("Ki", KIB)):
        # Same boundary tolerance as format_si: see the comment there.
        if magnitude >= factor * (1.0 - 1e-9):
            return f"{value / factor:.{precision}g} {prefix}B"
    return f"{value:.{precision}g} B"


def format_time(value: float, precision: int = 3) -> str:
    """Format a duration using the most readable unit (ns up to years)."""
    if value == 0:
        return "0 s"
    magnitude = abs(value)
    for suffix, factor in (
        ("y", _TIME_SUFFIXES["y"]),
        ("d", 86400.0),
        ("h", 3600.0),
        ("min", 60.0),
        ("s", 1.0),
        ("ms", 1e-3),
        ("us", 1e-6),
        ("ns", 1e-9),
    ):
        if magnitude >= factor:
            return f"{value / factor:.{precision}g} {suffix}"
    return f"{value:.{precision}e} s"


def format_power(value: float, precision: int = 3) -> str:
    """Format a power draw with the best SI prefix (``kW``, ``MW``)."""
    return format_si(value, "W", precision)


def format_dollars(value: float) -> str:
    """Format a dollar amount with thousands separators (``$1,250,000``)."""
    if value >= 1e7:
        return f"${value / 1e6:,.1f}M"
    return f"${value:,.0f}"


def doubling_time_from_cagr(cagr: float) -> float:
    """Years to double given a compound annual growth rate.

    ``cagr`` is fractional: 0.6 means +60 %/year (classic Moore cadence for
    transistor counts is ~0.41, i.e. doubling every ~2 years).
    """
    if cagr <= 0:
        raise ValueError("CAGR must be positive to define a doubling time")
    return math.log(2.0) / math.log1p(cagr)


def cagr_from_doubling_time(years: float) -> float:
    """Compound annual growth rate implied by a doubling time in years."""
    if years <= 0:
        raise ValueError("doubling time must be positive")
    return 2.0 ** (1.0 / years) - 1.0
