"""Piecewise-constant free-node profile, the engine under backfilling.

The profile answers two questions the backfill policies need:

* ``earliest_start(width, duration)`` — first time a ``width``-node job
  can run for ``duration`` without hitting a capacity dip;
* ``reserve(start, duration, width)`` — commit capacity so later queries
  see it.

Times are absolute; the final segment extends to infinity.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["FreeNodeProfile"]


class FreeNodeProfile:
    """Free node count as a step function of time."""

    def __init__(self, now: float, total_nodes: int,
                 running: List[Tuple[float, int]]) -> None:
        """``running`` is ``[(estimated_end_time, nodes), ...]`` for jobs
        currently holding nodes; ends before ``now`` are treated as ending
        at ``now`` (an overrun job still holds its nodes)."""
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.total_nodes = total_nodes
        in_use = sum(nodes for _end, nodes in running)
        if in_use > total_nodes:
            raise ValueError(
                f"running jobs hold {in_use} > {total_nodes} nodes"
            )
        # Build release events.  A job that overran its estimate still
        # holds its nodes *at* `now`; clamp its release to the instant
        # strictly after `now` so "start now" queries see the truth while
        # future queries treat the release as imminent.
        overrun_release = math.nextafter(now, math.inf)
        releases = sorted((max(end, overrun_release), nodes)
                          for end, nodes in running)
        self._times: List[float] = [now]
        self._free: List[int] = [total_nodes - in_use]
        for end, nodes in releases:
            if end > self._times[-1]:
                self._times.append(end)
                self._free.append(self._free[-1] + nodes)
            else:  # same instant: merge
                self._free[-1] += nodes

    # -- queries ------------------------------------------------------------

    def free_at(self, time: float) -> int:
        """Free nodes at an instant (segments are [t_i, t_{i+1}))."""
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start")
        index = 0
        for i, t in enumerate(self._times):
            if t <= time:
                index = i
            else:
                break
        return self._free[index]

    def earliest_start(self, width: int, duration: float) -> float:
        """First time ``width`` nodes stay free for ``duration``."""
        if width > self.total_nodes:
            raise ValueError(
                f"job wants {width} nodes; machine has {self.total_nodes}"
            )
        if duration <= 0:
            raise ValueError("duration must be positive")
        count = len(self._times)
        anchor = 0
        while anchor < count:
            if self._free[anchor] < width:
                anchor += 1
                continue
            start = self._times[anchor]
            end = start + duration
            # Verify every segment overlapping [start, end).
            violated_at = None
            for j in range(anchor + 1, count):
                if self._times[j] >= end:
                    break
                if self._free[j] < width:
                    violated_at = j
                    break
            if violated_at is None:
                return start
            anchor = violated_at + 1
        # Only the final (infinite) segment remains; it must have full
        # capacity free, so any width fits there.
        return self._times[-1]

    # -- mutation -------------------------------------------------------------

    def reserve(self, start: float, duration: float, width: int) -> None:
        """Subtract ``width`` nodes over [start, start+duration)."""
        if duration <= 0 or width < 1:
            raise ValueError("reserve needs positive duration and width")
        end = start + duration
        self._split_at(start)
        self._split_at(end)
        for i, t in enumerate(self._times):
            if start <= t < end:
                if self._free[i] < width:
                    raise ValueError(
                        f"overbooked at t={t}: {self._free[i]} free < {width}"
                    )
                self._free[i] -= width

    def _split_at(self, time: float) -> None:
        """Insert a breakpoint at ``time`` if within the profile span."""
        if time <= self._times[0]:
            return
        for i, t in enumerate(self._times):
            if t == time:
                return
            if t > time:
                self._times.insert(i, time)
                self._free.insert(i, self._free[i - 1])
                return
        # Beyond the last breakpoint: extend with the final value.
        self._times.append(time)
        self._free.append(self._free[-1])

    def segments(self) -> List[Tuple[float, int]]:
        """Copy of the (time, free) steps, for tests and debugging."""
        return list(zip(self._times, self._free))
