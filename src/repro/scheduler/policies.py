"""Scheduling policies: FCFS, SJF, EASY and conservative backfilling.

A policy is a pure decision function: given the clock, the queue (in
arrival order), and what is running, return the jobs to start *now*.  The
simulator re-invokes it at every arrival and completion, so policies keep
no clock state of their own.

Backfilling follows the canonical definitions (Lifka's EASY; Feitelson &
Weil's conservative):

* **EASY** — only the *head* job gets a reservation (the "shadow time");
  any other queued job may start now if it fits and either finishes by the
  shadow time (per its estimate) or uses only nodes the head job will not
  need ("spare" nodes).
* **conservative** — every queued job gets a reservation in queue order; a
  job starts now exactly when its reservation is now.  Reservations are
  recomputed from current state at each scheduling point (the standard
  simulator simplification; actual runtimes shorter than estimates only
  ever move reservations earlier, so no queued job is penalised).

Estimates, not actual runtimes, drive all reservation arithmetic — the
policies cannot see the future.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.scheduler.job import Job
from repro.scheduler.profile import FreeNodeProfile

__all__ = [
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "EasyBackfill",
    "ConservativeBackfill",
    "get_policy",
]

#: ``running`` as policies see it: (estimated end time, width) pairs.
RunningView = List[Tuple[float, int]]


class SchedulingPolicy:
    """Interface; subclasses implement :meth:`select`."""

    name: str = "abstract"

    def select(self, now: float, queue: List[Job], running: RunningView,
               free_nodes: int, total_nodes: int) -> List[Job]:
        """Jobs (subset of ``queue``) to start at ``now``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FcfsPolicy(SchedulingPolicy):
    """Strict first-come-first-served: never skip the queue head."""

    name = "fcfs"

    def select(self, now: float, queue: List[Job], running: RunningView,
               free_nodes: int, total_nodes: int) -> List[Job]:
        """Start the queue prefix that fits; stop at the first blocker."""
        starts: List[Job] = []
        for job in queue:
            if job.nodes > free_nodes:
                break  # head blocked: nobody behind it may pass
            starts.append(job)
            free_nodes -= job.nodes
        return starts


class SjfPolicy(SchedulingPolicy):
    """Shortest (estimated) job first; starvation-prone by design — it is
    the cautionary baseline in the E7 comparison."""

    name = "sjf"

    def select(self, now: float, queue: List[Job], running: RunningView,
               free_nodes: int, total_nodes: int) -> List[Job]:
        """Greedily start the shortest (estimated) jobs that fit."""
        starts: List[Job] = []
        for job in sorted(queue, key=lambda j: (j.estimate, j.submit_time)):
            if job.nodes <= free_nodes:
                starts.append(job)
                free_nodes -= job.nodes
        return starts


class EasyBackfill(SchedulingPolicy):
    """FCFS plus aggressive backfilling around a single head reservation."""

    name = "easy"

    def select(self, now: float, queue: List[Job], running: RunningView,
               free_nodes: int, total_nodes: int) -> List[Job]:
        """FCFS prefix, then backfill behind the head's reservation."""
        starts: List[Job] = []
        remaining = list(queue)

        # Start the queue prefix FCFS-style.
        while remaining and remaining[0].nodes <= free_nodes:
            job = remaining.pop(0)
            starts.append(job)
            free_nodes -= job.nodes
            running = running + [(now + job.estimate, job.nodes)]

        if not remaining:
            return starts

        # Head is blocked: compute its shadow time and spare nodes.
        head = remaining[0]
        profile = FreeNodeProfile(now, total_nodes, running)
        shadow = profile.earliest_start(head.nodes, head.estimate)
        spare = profile.free_at(shadow) - head.nodes

        for job in remaining[1:]:
            if job.nodes > free_nodes:
                continue
            finishes_before_shadow = now + job.estimate <= shadow
            fits_in_spare = job.nodes <= spare
            if finishes_before_shadow or fits_in_spare:
                starts.append(job)
                free_nodes -= job.nodes
                if not finishes_before_shadow:
                    spare -= job.nodes
        return starts


class ConservativeBackfill(SchedulingPolicy):
    """Every queued job holds a reservation; backfill may not delay any."""

    name = "conservative"

    def select(self, now: float, queue: List[Job], running: RunningView,
               free_nodes: int, total_nodes: int) -> List[Job]:
        """Reserve for every queued job; start those whose slot is now."""
        starts: List[Job] = []
        profile = FreeNodeProfile(now, total_nodes, running)
        for job in queue:
            start = profile.earliest_start(job.nodes, job.estimate)
            profile.reserve(start, job.estimate, job.nodes)
            if start <= now:
                starts.append(job)
        return starts


_POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (FcfsPolicy, SjfPolicy, EasyBackfill, ConservativeBackfill)
}


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name; ``KeyError`` lists the options."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
