"""Scheduling metrics: utilization, waits, bounded slowdown.

Definitions follow the parallel-workloads literature so the E7 curves are
comparable with published backfilling studies:

* **utilization** — node-seconds of actual work divided by node-seconds of
  capacity over the span from first submission to last completion;
* **bounded slowdown** — per job, response time over ``max(runtime, 10 s)``
  floored at 1; reported as mean and p95;
* **wait** — start minus submit, mean and max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import MetricsRegistry
from repro.scheduler.simulator import ScheduleResult

__all__ = ["ScheduleMetrics", "evaluate_schedule"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary of one schedule run."""

    utilization: float
    mean_wait: float
    max_wait: float
    mean_bounded_slowdown: float
    p95_bounded_slowdown: float
    mean_response: float
    makespan: float
    jobs: int

    def row(self) -> dict:
        """Flat dict for table printers."""
        return {
            "jobs": self.jobs,
            "utilization": round(self.utilization, 4),
            "mean_wait_s": round(self.mean_wait, 1),
            "max_wait_s": round(self.max_wait, 1),
            "mean_bsld": round(self.mean_bounded_slowdown, 2),
            "p95_bsld": round(self.p95_bounded_slowdown, 2),
        }

    def publish(self, registry: MetricsRegistry) -> None:
        """Copy every figure into an observability registry as gauges
        under ``sched.metrics.*`` (one trace dump covers all layers)."""
        gauges = {
            "utilization": self.utilization,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "mean_bounded_slowdown": self.mean_bounded_slowdown,
            "p95_bounded_slowdown": self.p95_bounded_slowdown,
            "mean_response": self.mean_response,
            "makespan": self.makespan,
            "jobs": float(self.jobs),
        }
        for key, value in gauges.items():
            registry.gauge(f"sched.metrics.{key}").set(value)


def evaluate_schedule(result: ScheduleResult,
                      slowdown_threshold: float = 10.0) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` from a completed run."""
    records = result.records
    waits = np.array([r.wait_time for r in records])
    responses = np.array([r.response_time for r in records])
    slowdowns = np.array([r.bounded_slowdown(slowdown_threshold)
                          for r in records])
    work = sum(r.job.node_seconds for r in records)
    capacity = result.total_nodes * max(result.horizon, 1e-12)
    return ScheduleMetrics(
        utilization=min(1.0, work / capacity),
        mean_wait=float(waits.mean()),
        max_wait=float(waits.max()),
        mean_bounded_slowdown=float(slowdowns.mean()),
        p95_bounded_slowdown=float(np.percentile(slowdowns, 95)),
        mean_response=float(responses.mean()),
        makespan=result.makespan,
        jobs=len(records),
    )
