"""Resource management: batch scheduling of parallel jobs.

The keynote: "software tools to manage them will take on new
responsibilities alleviating much of the burden experienced by today's
practitioners" — resource management is named explicitly.  This package
provides the space-sharing batch model the 2002 literature studied:

* :class:`Job` / :class:`JobRecord` — rigid parallel jobs with user
  runtime estimates;
* :class:`WorkloadGenerator` — Feitelson-style synthetic workloads
  (Poisson arrivals, lognormal runtimes, power-of-two-biased widths,
  overestimated runtimes);
* policies — FCFS, SJF, EASY backfilling, conservative backfilling;
* :class:`BatchSimulator` — the event-driven cluster that runs a workload
  under a policy;
* :func:`evaluate_schedule` — utilization, wait, bounded slowdown.
"""

from repro.scheduler.job import Job, JobRecord, JobState, scale_jobs
from repro.scheduler.workload import WorkloadGenerator, WorkloadParams
from repro.scheduler.policies import (
    ConservativeBackfill,
    EasyBackfill,
    FcfsPolicy,
    SchedulingPolicy,
    SjfPolicy,
    get_policy,
)
from repro.scheduler.simulator import BatchSimulator, ScheduleResult
from repro.scheduler.metrics import ScheduleMetrics, evaluate_schedule
from repro.scheduler.faults import FaultyBatchSimulator, FaultyScheduleResult
from repro.scheduler.swf import dump_swf, format_swf, load_swf, parse_swf

__all__ = [
    "BatchSimulator",
    "FaultyBatchSimulator",
    "FaultyScheduleResult",
    "ConservativeBackfill",
    "EasyBackfill",
    "FcfsPolicy",
    "Job",
    "JobRecord",
    "JobState",
    "ScheduleMetrics",
    "ScheduleResult",
    "SchedulingPolicy",
    "SjfPolicy",
    "WorkloadGenerator",
    "WorkloadParams",
    "dump_swf",
    "evaluate_schedule",
    "format_swf",
    "load_swf",
    "parse_swf",
    "scale_jobs",
    "get_policy",
]
