"""Fault-aware batch operation: failures meet the scheduler.

The keynote's two system-software threads — resource management and fault
recovery — are one problem in production: node failures kill running jobs,
killed jobs re-enter the queue, and the machine runs degraded while nodes
repair.  :class:`FaultyBatchSimulator` extends the batch event loop with:

* Poisson node failures at the aggregate rate ``capacity / node_mtbf``
  (failures strike a uniformly random node, so a job's kill probability
  is proportional to its width — wide jobs die more, as in real logs);
* repair: a failed node is out of capacity for ``repair_seconds``;
* recovery policy: jobs restart from scratch, or from their last
  checkpoint at a fixed interval (the work since it is lost and the
  remaining runtime shrinks accordingly).

Outputs add *goodput* (node-seconds of work that counted toward a
completion) and *lost work* to the usual metrics, so bench E15 can show
what recovery software is worth in delivered machine.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.scheduler.job import Job
from repro.scheduler.policies import SchedulingPolicy
from repro.sim.rng import RandomStreams

__all__ = ["FaultyBatchSimulator", "FaultyScheduleResult"]

_ARRIVAL = 0
_FAILURE = 1
_COMPLETION = 2
_REPAIR = 3


@dataclass
class _RunningJob:
    job: Job
    start_time: float
    remaining_runtime: float      # work left at this attempt's start
    generation: int               # cancels stale completion events


@dataclass
class FaultyScheduleResult:
    """Outcome of a fault-injected workload run."""

    total_nodes: int
    makespan: float
    first_submit: float
    #: job_id -> (original submit, final completion) for finished jobs.
    completions: Dict[int, Tuple[float, float]]
    #: Node-seconds that contributed to a completed attempt.
    goodput_node_seconds: float = 0.0
    #: Node-seconds destroyed by failures (work since last checkpoint).
    lost_node_seconds: float = 0.0
    failures: int = 0
    job_kills: int = 0

    @property
    def horizon(self) -> float:
        """Virtual time from first submit to makespan."""
        return self.makespan - self.first_submit

    @property
    def goodput_utilization(self) -> float:
        """Useful work over capacity — the metric failures actually tax."""
        capacity = self.total_nodes * max(self.horizon, 1e-12)
        return min(1.0, self.goodput_node_seconds / capacity)

    @property
    def waste_fraction(self) -> float:
        """Lost over (lost + useful) node-seconds."""
        total = self.lost_node_seconds + self.goodput_node_seconds
        return self.lost_node_seconds / total if total > 0 else 0.0

    def mean_response(self) -> float:
        """Mean submit-to-final-completion time over finished jobs."""
        if not self.completions:
            raise ValueError("no completed jobs")
        return float(np.mean([end - submit for submit, end
                              in self.completions.values()]))


class FaultyBatchSimulator:
    """Batch simulator with node failures, repair, and checkpoint restart.

    Parameters
    ----------
    total_nodes, policy:
        As in :class:`~repro.scheduler.simulator.BatchSimulator`.
    node_mtbf_seconds:
        Per-node exponential MTBF; ``math.inf`` disables failures.
    repair_seconds:
        Time a failed node is out of service.
    checkpoint_interval:
        ``None`` restarts killed jobs from scratch; a positive value
        restarts them from the last multiple of the interval.  Checkpoint
        write overhead is assumed folded into the runtime (jobs of the
        workload model are wall-clock observations).
    """

    def __init__(self, total_nodes: int, policy: SchedulingPolicy,
                 node_mtbf_seconds: float, repair_seconds: float = 1800.0,
                 checkpoint_interval: Optional[float] = None,
                 streams: Optional[RandomStreams] = None) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        if node_mtbf_seconds <= 0:
            raise ValueError("node MTBF must be positive")
        if repair_seconds < 0:
            raise ValueError("repair time must be non-negative")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.total_nodes = total_nodes
        self.policy = policy
        self.node_mtbf = node_mtbf_seconds
        self.repair_seconds = repair_seconds
        self.checkpoint_interval = checkpoint_interval
        self.streams = streams if streams is not None else RandomStreams(0)

    # -- helpers -------------------------------------------------------------

    def _durable_progress(self, elapsed: float) -> float:
        """Work preserved when a failure strikes after ``elapsed`` of an
        attempt."""
        if self.checkpoint_interval is None:
            return 0.0
        return math.floor(elapsed / self.checkpoint_interval) \
            * self.checkpoint_interval

    # -- the run ---------------------------------------------------------------

    def run(self, jobs: Sequence[Job],
            max_virtual_seconds: float = 10 * 365.25 * 86400.0
            ) -> FaultyScheduleResult:
        """Replay ``jobs`` to completion under failures.

        ``max_virtual_seconds`` guards against pathological configurations
        (MTBF shorter than every job: nothing ever finishes) — exceeding
        it raises rather than looping forever.
        """
        if not jobs:
            raise ValueError("no jobs to schedule")
        for job in jobs:
            if job.nodes > self.total_nodes:
                raise ValueError(
                    f"job {job.job_id} wants {job.nodes} nodes; machine "
                    f"has {self.total_nodes}")
        rng = self.streams.get("scheduler.failures")

        events: List[Tuple[float, int, int, int]] = [
            (job.submit_time, _ARRIVAL, job.job_id, 0) for job in jobs
        ]
        by_id = {job.job_id: job for job in jobs}
        heapq.heapify(events)
        failure_rate = self.total_nodes / self.node_mtbf
        if math.isfinite(self.node_mtbf):
            heapq.heappush(events,
                           (float(rng.exponential(1 / failure_rate)),
                            _FAILURE, -1, 0))

        result = FaultyScheduleResult(
            total_nodes=self.total_nodes,
            makespan=0.0,
            first_submit=min(job.submit_time for job in jobs),
            completions={},
        )
        queue: List[Job] = []
        running: Dict[int, _RunningJob] = {}
        generations: Dict[int, int] = {job.job_id: 0 for job in jobs}
        #: remaining work per job id (shrinks across checkpointed attempts)
        remaining: Dict[int, float] = {job.job_id: job.runtime
                                       for job in jobs}
        down_nodes = 0
        repair_times: List[float] = []  # min-heap of pending repairs
        free = self.total_nodes
        finished = 0

        def handle(now: float, kind: int, job_id: int,
                   generation: int) -> None:
            nonlocal queue, free, down_nodes, finished

            if kind == _ARRIVAL:
                queue.append(by_id[job_id])

            elif kind == _COMPLETION:
                if generation != generations[job_id]:
                    return  # stale: this attempt was killed
                entry = running.pop(job_id)
                free += entry.job.nodes
                finished += 1
                result.completions[job_id] = (entry.job.submit_time, now)
                # Credit only this attempt's work: durable progress from
                # earlier killed attempts was credited at kill time.
                result.goodput_node_seconds += (entry.remaining_runtime
                                                * entry.job.nodes)
                result.makespan = max(result.makespan, now)

            elif kind == _REPAIR:
                down_nodes -= 1
                free += 1
                heapq.heappop(repair_times)

            elif kind == _FAILURE:
                result.failures += 1
                # Schedule the next failure (rate follows nominal size;
                # failures of down nodes are absorbed harmlessly below).
                heapq.heappush(
                    events,
                    (now + float(rng.exponential(1 / failure_rate)),
                     _FAILURE, -1, 0))
                # Which node? in-use with probability (in use / total).
                in_use = sum(r.job.nodes for r in running.values())
                struck_in_use = rng.random() < in_use / self.total_nodes
                if struck_in_use and running:
                    widths = np.array([r.job.nodes
                                       for r in running.values()],
                                      dtype=float)
                    victim_key = list(running)[int(
                        rng.choice(len(widths), p=widths / widths.sum()))]
                    victim = running.pop(victim_key)
                    result.job_kills += 1
                    elapsed = now - victim.start_time
                    durable = min(self._durable_progress(elapsed),
                                  victim.remaining_runtime)
                    lost = min(elapsed, victim.remaining_runtime) - durable
                    result.lost_node_seconds += max(0.0, lost) \
                        * victim.job.nodes
                    result.goodput_node_seconds += durable \
                        * victim.job.nodes
                    remaining[victim_key] = max(
                        1e-9, victim.remaining_runtime - durable)
                    generations[victim_key] += 1
                    # All its nodes come back except the failed one.
                    free += victim.job.nodes - 1
                    queue.append(victim.job)  # resubmitted, queue reorders
                    queue.sort(key=lambda j: (j.submit_time, j.job_id))
                else:
                    # Struck an idle (or already-down) node.
                    if free > 0:
                        free -= 1
                    else:
                        return  # all non-running nodes already down
                down_nodes += 1
                heapq.heappush(repair_times, now + self.repair_seconds)
                heapq.heappush(events, (now + self.repair_seconds,
                                        _REPAIR, -1, 0))

        while events and finished < len(jobs):
            now, kind, job_id, generation = heapq.heappop(events)
            if now > max_virtual_seconds:
                raise RuntimeError(
                    "virtual-time guard exceeded: with this MTBF/repair "
                    "configuration the workload cannot drain")
            handle(now, kind, job_id, generation)
            # Batch simultaneous events before scheduling, matching the
            # plain simulator's semantics (a completion and an arrival at
            # one instant must both be visible to the policy).
            while events and events[0][0] == now:
                _t, kind2, job_id2, generation2 = heapq.heappop(events)
                handle(now, kind2, job_id2, generation2)

            # Scheduling pass.  Down nodes appear to the policy as
            # width-1 pseudo-jobs releasing at their repair times, so
            # backfill reservations account for repairs without any
            # policy-side special casing.
            # Policies see user estimates, never actual runtimes (no
            # oracle); a restarted job's estimate shrinks in proportion
            # to its durable progress.
            running_view = [
                (entry.start_time + entry.job.estimate
                 * (entry.remaining_runtime / entry.job.runtime),
                 entry.job.nodes)
                for entry in running.values()
            ] + [(repair, 1) for repair in repair_times]
            starts = self.policy.select(now, list(queue), running_view,
                                        free, self.total_nodes)
            started: Set[int] = set()
            for job in starts:
                if job.nodes > free or job.job_id in started:
                    raise RuntimeError(
                        f"policy {self.policy.name} overcommitted under "
                        "failures")
                started.add(job.job_id)
                free -= job.nodes
                generations[job.job_id] += 1
                generation = generations[job.job_id]
                work = remaining[job.job_id]
                running[job.job_id] = _RunningJob(
                    job=job, start_time=now,
                    remaining_runtime=work, generation=generation)
                heapq.heappush(events, (now + work, _COMPLETION,
                                        job.job_id, generation))
            if started:
                queue = [j for j in queue if j.job_id not in started]

        if finished < len(jobs):
            raise RuntimeError(
                f"{len(jobs) - finished} jobs never finished (event queue "
                "drained early)")
        return result
