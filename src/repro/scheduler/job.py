"""Rigid parallel jobs, as the 2002 batch-scheduling literature models them.

A job asks for a fixed number of nodes for an estimated runtime; the
actual runtime is typically shorter (users overestimate to avoid the
kill-at-limit).  The gap between estimate and actual is what makes
backfilling interesting, so both are first-class here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional

__all__ = ["Job", "JobRecord", "JobState", "scale_jobs"]


class JobState(enum.Enum):
    """Lifecycle of a job inside the batch system."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class Job:
    """An immutable job description (what the user submitted)."""

    job_id: int
    submit_time: float
    nodes: int
    runtime: float            # actual execution time (seconds)
    estimate: float           # user's runtime estimate (>= runtime typically)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"job {self.job_id}: nodes must be >= 1")
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive")
        if self.estimate <= 0:
            raise ValueError(f"job {self.job_id}: estimate must be positive")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: submit_time must be >= 0")

    @property
    def node_seconds(self) -> float:
        """Work content: nodes × actual runtime."""
        return self.nodes * self.runtime


@dataclass
class JobRecord:
    """A job plus its scheduling outcome (filled in by the simulator)."""

    job: Job
    state: JobState = JobState.QUEUED
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    @property
    def wait_time(self) -> float:
        """Seconds the job queued before starting."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.job.job_id} has not started")
        return self.start_time - self.job.submit_time

    @property
    def response_time(self) -> float:
        """Submit-to-completion (a.k.a. turnaround)."""
        if self.end_time is None:
            raise RuntimeError(f"job {self.job.job_id} has not finished")
        return self.end_time - self.job.submit_time

    def bounded_slowdown(self, threshold: float = 10.0) -> float:
        """Feitelson's bounded slowdown: response over max(runtime, τ),
        floored at 1 — the standard metric that keeps tiny jobs from
        dominating the average."""
        return max(1.0, self.response_time
                   / max(self.job.runtime, threshold))


def scale_jobs(jobs: Iterable[Job], time_scale: float) -> List[Job]:
    """Uniformly scale every job's times by ``time_scale``.

    SWF is an integer-second format — ``format_swf`` rounds — so
    traces must be generated and round-tripped at natural second
    scale, *then* scaled down to whatever the consuming simulation's
    clock wants (the jobs-service campaigns run in milliseconds).
    Widths are untouched; only submit/runtime/estimate scale.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return [replace(job,
                    submit_time=job.submit_time * time_scale,
                    runtime=job.runtime * time_scale,
                    estimate=job.estimate * time_scale)
            for job in jobs]
