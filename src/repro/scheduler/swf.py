"""Standard Workload Format (SWF) import/export.

SWF is the Parallel Workloads Archive's interchange format (Feitelson et
al.) — the lingua franca of the batch-scheduling literature this package
reproduces.  Supporting it means our policies can replay *real site
traces* and our synthetic workloads can feed other simulators.

Format: ``;``-prefixed header comments, then one job per line with 18
whitespace-separated fields.  We consume the four fields the rigid-job
model needs and preserve the rest on export with the conventional ``-1``
"unknown" marker:

====  ======================  ==========================
 #    SWF field               maps to
====  ======================  ==========================
 1    job number              ``Job.job_id``
 2    submit time (s)         ``Job.submit_time``
 4    run time (s)            ``Job.runtime``
 5    allocated processors    ``Job.nodes``
 9    requested time (s)      ``Job.estimate``
====  ======================  ==========================

Jobs with unknown/invalid runtime, width, or submit time (``-1`` fields)
are skipped, as simulators conventionally do; requested-time falls back
to the actual runtime when absent.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Union

from repro.scheduler.job import Job

__all__ = ["parse_swf", "format_swf", "load_swf", "dump_swf"]

_FIELDS = 18


def parse_swf(text: str) -> List[Job]:
    """Parse SWF text into jobs (sorted by submit time).

    Raises :class:`ValueError` on structurally malformed job lines
    (wrong field count / non-numeric fields); *semantically* unusable
    jobs (unknown runtime etc.) are skipped per community convention.
    """
    jobs: List[Job] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) != _FIELDS:
            raise ValueError(
                f"SWF line {line_number}: expected {_FIELDS} fields, got "
                f"{len(fields)}"
            )
        try:
            job_id = int(fields[0])
            submit = float(fields[1])
            runtime = float(fields[3])
            processors = int(fields[4])
            requested = float(fields[8])
        except ValueError as error:
            raise ValueError(
                f"SWF line {line_number}: non-numeric field ({error})"
            ) from None
        if submit < 0 or runtime <= 0 or processors < 1:
            continue  # unknown/cancelled jobs: skip, per convention
        estimate = requested if requested > 0 else runtime
        # Real traces contain under-estimates; the rigid-job model allows
        # them (the scheduler kills nothing here), so pass them through.
        jobs.append(Job(job_id=job_id, submit_time=submit,
                        nodes=processors, runtime=runtime,
                        estimate=estimate))
    jobs.sort(key=lambda job: (job.submit_time, job.job_id))
    return jobs


def format_swf(jobs: Iterable[Job], max_nodes: int = 0,
               comment: str = "") -> str:
    """Serialise jobs as SWF text (unknown fields written as ``-1``)."""
    lines: List[str] = [
        "; SWF written by repro (clusterlaunch)",
    ]
    if comment:
        lines.append(f"; {comment}")
    if max_nodes:
        lines.append(f"; MaxProcs: {max_nodes}")
    for job in jobs:
        fields = [-1] * _FIELDS
        fields[0] = job.job_id
        fields[1] = int(round(job.submit_time))
        fields[2] = -1                       # wait time: scheduler output
        fields[3] = int(round(job.runtime))
        fields[4] = job.nodes
        fields[7] = job.nodes                # requested processors
        fields[8] = int(round(job.estimate))
        lines.append(" ".join(str(f) for f in fields))
    return "\n".join(lines) + "\n"


def load_swf(source: Union[str, TextIO]) -> List[Job]:
    """Load jobs from an SWF file path or open text stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_swf(handle.read())
    return parse_swf(source.read())


def dump_swf(jobs: Iterable[Job], destination: Union[str, TextIO],
             max_nodes: int = 0, comment: str = "") -> None:
    """Write jobs to an SWF file path or open text stream."""
    text = format_swf(jobs, max_nodes=max_nodes, comment=comment)
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
