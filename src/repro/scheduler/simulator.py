"""The batch-system simulator: runs a workload under a policy.

A dedicated event loop (arrivals + completions on a heap) rather than the
generator kernel: a scheduling experiment replays tens of thousands of
jobs where each event does a fixed small amount of work, and the policy is
re-invoked at every event anyway — process machinery would add cost and no
fidelity.  The fault-tolerance package, whose processes genuinely interact,
uses the generator kernel.

Invariants the simulator enforces (and tests assert):

* node conservation — allocated nodes never exceed the machine;
* no job starts before submission;
* every job finishes exactly ``runtime`` after it starts;
* FCFS-family policies never start a job past an eligible earlier one
  (checked by the policy tests, not here).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import NULL_OBS, Observability
from repro.scheduler.job import Job, JobRecord, JobState
from repro.scheduler.policies import SchedulingPolicy

__all__ = ["BatchSimulator", "ScheduleResult"]

_ARRIVAL = 0
_COMPLETION = 1


@dataclass
class ScheduleResult:
    """Everything a workload run produced."""

    records: List[JobRecord]
    total_nodes: int
    #: Time the last job completed.
    makespan: float
    #: Time the first job was submitted (metrics measure from here).
    first_submit: float

    @property
    def horizon(self) -> float:
        """Virtual time from first submit to makespan."""
        return self.makespan - self.first_submit


class BatchSimulator:
    """Event-driven space-sharing cluster."""

    def __init__(self, total_nodes: int, policy: SchedulingPolicy,
                 obs: Optional[Observability] = None) -> None:
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        self.total_nodes = total_nodes
        self.policy = policy
        # This loop has no Simulator clock to bind, so all observability
        # records carry explicit times; instants and counters only (jobs
        # overlap freely, so nested spans would misrender on one track).
        self.obs = obs if obs is not None else NULL_OBS

    def run(self, jobs: Sequence[Job]) -> ScheduleResult:
        """Replay ``jobs`` (any order; they are heap-ordered by submit)."""
        if not jobs:
            raise ValueError("no jobs to schedule")
        for job in jobs:
            if job.nodes > self.total_nodes:
                raise ValueError(
                    f"job {job.job_id} wants {job.nodes} nodes; machine has "
                    f"{self.total_nodes}"
                )

        records: Dict[int, JobRecord] = {
            job.job_id: JobRecord(job=job) for job in jobs
        }
        queue: List[Job] = []          # arrival order
        running: List[Tuple[float, int, int]] = []  # (est_end, width, id)
        free = self.total_nodes
        events: List[Tuple[float, int, int]] = [
            (job.submit_time, _ARRIVAL, job.job_id) for job in jobs
        ]
        heapq.heapify(events)
        now = 0.0
        makespan = 0.0
        obs = self.obs
        obs_on = obs.enabled

        while events:
            now, kind, job_id = heapq.heappop(events)
            record = records[job_id]
            if kind == _ARRIVAL:
                queue.append(record.job)
            else:  # completion
                record.state = JobState.FINISHED
                record.end_time = now
                makespan = max(makespan, now)
                free += record.job.nodes
                running = [r for r in running if r[2] != job_id]
                if obs_on:
                    obs.metrics.counter("sched.completions").inc()

            # Batch simultaneous events before scheduling: a completion and
            # an arrival at the same instant must both be visible.
            while events and events[0][0] == now:
                _t, kind2, job_id2 = heapq.heappop(events)
                record2 = records[job_id2]
                if kind2 == _ARRIVAL:
                    queue.append(record2.job)
                else:
                    record2.state = JobState.FINISHED
                    record2.end_time = now
                    makespan = max(makespan, now)
                    free += record2.job.nodes
                    running = [r for r in running if r[2] != job_id2]
                    if obs_on:
                        obs.metrics.counter("sched.completions").inc()

            starts = self.policy.select(
                now, list(queue),
                [(end, width) for end, width, _id in running],
                free, self.total_nodes,
            )
            started_ids: Set[int] = set()
            for job in starts:
                if job.job_id in started_ids:
                    raise RuntimeError(
                        f"policy {self.policy.name} started job "
                        f"{job.job_id} twice"
                    )
                if job.nodes > free:
                    raise RuntimeError(
                        f"policy {self.policy.name} overcommitted: job "
                        f"{job.job_id} wants {job.nodes}, only {free} free"
                    )
                started_ids.add(job.job_id)
                free -= job.nodes
                record = records[job.job_id]
                record.state = JobState.RUNNING
                record.start_time = now
                running.append((now + job.estimate, job.nodes, job.job_id))
                heapq.heappush(events,
                               (now + job.runtime, _COMPLETION, job.job_id))
                if obs_on:
                    obs.instant("sched.start", track="scheduler", time=now,
                                job=job.job_id, nodes=job.nodes)
                    obs.metrics.counter("sched.starts").inc()
                    obs.metrics.histogram("sched.wait_seconds").observe(
                        now - job.submit_time)
            if started_ids:
                queue = [j for j in queue if j.job_id not in started_ids]
            if obs_on:
                obs.metrics.gauge("sched.free_nodes").set(float(free))
                obs.metrics.gauge("sched.queue_depth").set(
                    float(len(queue)))

        unfinished = [r for r in records.values()
                      if r.state is not JobState.FINISHED]
        if unfinished:
            raise RuntimeError(
                f"{len(unfinished)} jobs never finished (scheduler bug)"
            )
        ordered = [records[job.job_id] for job in
                   sorted(jobs, key=lambda j: (j.submit_time, j.job_id))]
        first_submit = min(job.submit_time for job in jobs)
        if obs_on:
            obs.add_span("sched.run", first_submit, makespan,
                         track="scheduler", jobs=len(records))
            obs.metrics.gauge("sched.makespan").set(makespan)
        return ScheduleResult(
            records=ordered,
            total_nodes=self.total_nodes,
            makespan=makespan,
            first_submit=first_submit,
        )
