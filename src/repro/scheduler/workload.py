"""Synthetic batch workloads, Feitelson-style.

The generator follows the stylised facts of production parallel workloads
that the scheduling literature standardised on:

* **arrivals** — Poisson (exponential inter-arrival), with the rate set so
  the *offered load* (requested node-seconds per node per second) matches
  a target ρ;
* **widths** — log-uniform over [1, max_nodes] rounded to a power of two
  with high probability (power-of-two bias is the strongest regularity in
  the traces), never exceeding the machine;
* **runtimes** — lognormal, heavy right tail;
* **estimates** — actual runtime times a uniform overestimation factor in
  [1, overestimate_max]; a fraction of users nail the estimate exactly.

Every distribution draws from its own named stream of a
:class:`~repro.sim.rng.RandomStreams`, so experiments can vary one aspect
(e.g. load) with common random numbers elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.scheduler.job import Job
from repro.sim.rng import RandomStreams

__all__ = ["WorkloadParams", "WorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic workload."""

    #: Machine size jobs are sized against.
    max_nodes: int = 128
    #: Target offered load ρ in (0, ~1): requested node-seconds arriving
    #: per node-second of capacity.
    offered_load: float = 0.7
    #: Lognormal runtime parameters (seconds): exp(mu) is the median.
    runtime_log_mean: float = float(np.log(900.0))
    runtime_log_sigma: float = 1.4
    #: Probability a width is rounded to a power of two.
    power_of_two_bias: float = 0.75
    #: Upper bound of the uniform overestimation factor.
    overestimate_max: float = 5.0
    #: Fraction of users whose estimate equals the actual runtime.
    exact_estimate_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if not 0 < self.offered_load:
            raise ValueError("offered_load must be positive")
        if not 0 <= self.power_of_two_bias <= 1:
            raise ValueError("power_of_two_bias must be in [0, 1]")
        if self.overestimate_max < 1:
            raise ValueError("overestimate_max must be >= 1")
        if not 0 <= self.exact_estimate_fraction <= 1:
            raise ValueError("exact_estimate_fraction must be in [0, 1]")

    @property
    def mean_runtime(self) -> float:
        """Lognormal mean: exp(mu + sigma^2 / 2)."""
        return float(np.exp(self.runtime_log_mean
                            + self.runtime_log_sigma ** 2 / 2.0))


class WorkloadGenerator:
    """Generate job streams under :class:`WorkloadParams`."""

    def __init__(self, params: WorkloadParams,
                 streams: RandomStreams) -> None:
        self.params = params
        self.streams = streams

    # -- component distributions (separately testable) ---------------------

    def sample_widths(self, count: int) -> np.ndarray:
        """Job widths in nodes (log-uniform, power-of-two biased)."""
        rng = self.streams.get("workload.widths")
        raw = np.exp(rng.uniform(0.0, np.log(self.params.max_nodes + 1),
                                 size=count))
        widths = np.clip(raw.astype(int) + 1, 1, self.params.max_nodes)
        snap = rng.random(count) < self.params.power_of_two_bias
        powers = 2 ** np.round(np.log2(widths)).astype(int)
        widths = np.where(snap, np.clip(powers, 1, self.params.max_nodes),
                          widths)
        return widths

    def sample_runtimes(self, count: int) -> np.ndarray:
        """Actual runtimes (lognormal, floored at one second)."""
        rng = self.streams.get("workload.runtimes")
        runtimes = rng.lognormal(self.params.runtime_log_mean,
                                 self.params.runtime_log_sigma, size=count)
        return np.maximum(runtimes, 1.0)

    def sample_estimates(self, runtimes: np.ndarray) -> np.ndarray:
        """User estimates given actual runtimes."""
        rng = self.streams.get("workload.estimates")
        factors = rng.uniform(1.0, self.params.overestimate_max,
                              size=runtimes.shape)
        exact = rng.random(runtimes.shape) < self.params.exact_estimate_fraction
        return np.where(exact, runtimes, runtimes * factors)

    def arrival_rate(self) -> float:
        """Jobs per second that realise the target offered load.

        ρ = λ · E[nodes · runtime] / max_nodes, with the expectation
        estimated analytically from the width distribution's mean and the
        lognormal mean runtime (independence by construction).
        """
        mean_width = self._mean_width()
        work_per_job = mean_width * self.params.mean_runtime
        return self.params.offered_load * self.params.max_nodes / work_per_job

    def _mean_width(self) -> float:
        # E[width] for the log-uniform integer width (bias to powers of two
        # barely moves the mean; estimate from the continuous law).
        upper = np.log(self.params.max_nodes + 1)
        return float((np.exp(upper) - 1.0) / upper)

    # -- the job stream ----------------------------------------------------

    def generate(self, count: int, start_time: float = 0.0) -> List[Job]:
        """A list of ``count`` jobs in submit-time order."""
        if count < 1:
            raise ValueError("count must be >= 1")
        rng = self.streams.get("workload.arrivals")
        gaps = rng.exponential(1.0 / self.arrival_rate(), size=count)
        submit_times = start_time + np.cumsum(gaps)
        widths = self.sample_widths(count)
        runtimes = self.sample_runtimes(count)
        estimates = self.sample_estimates(runtimes)
        return [
            Job(job_id=i, submit_time=float(submit_times[i]),
                nodes=int(widths[i]), runtime=float(runtimes[i]),
                estimate=float(estimates[i]))
            for i in range(count)
        ]
