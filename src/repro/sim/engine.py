"""The event loop and process machinery.

:class:`Simulator` owns an event queue keyed by ``(time, priority,
sequence)``.  The ``sequence`` tiebreaker makes execution fully
deterministic: two events scheduled for the same instant are delivered
in scheduling order, so repeated runs with the same seeds produce
identical traces — a property the test suite checks.

Two queue implementations honour that contract (see
:mod:`repro.sim.equeue`): the default **calendar queue** batches events
by exact due time so tie-heavy simulation workloads pay log-time only
per *distinct* time, and the legacy **binary heap**
(``Simulator(queue="heap")``) is kept as the differential-testing
oracle and perf baseline.  The tie-break contract — pop order is
exactly ``(when, priority, seq)`` — is what the equivalence suite in
``tests/test_engine_queue_equivalence.py`` pins down across both.

When nothing is watching (no tracer, no observability, no DetSan), the
run loop drops into a *plain-mode* fast path that walks the calendar
queue's batches inline and recycles fire-and-forget :class:`Timeout`
objects through a free pool — same deliveries in the same order, with
the per-event bookkeeping compiled down to a few dict/list operations.

Processes are plain generators.  Each ``yield`` hands the engine an
:class:`~repro.sim.event.Event`; the engine resumes the generator with the
event's value (or throws the event's exception into it) when it fires::

    def worker(sim):
        yield sim.timeout(1.5)          # sleep in virtual time
        done = sim.event()
        ...
        value = yield done              # wait for someone to succeed(done)

    sim = Simulator()
    sim.process(worker(sim))
    sim.run()
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
)

from repro.obs import DEFAULT_TRACK, NULL_OBS, Observability
from repro.sim.equeue import CalendarEventQueue, Entry, HeapEventQueue
from repro.sim.event import (
    _CANCELLED,
    _DELIVERED,
    _POOL_MAX,
    _TIMEOUT_NAMES,
    _TIMEOUT_POOL,
    Event,
    EventStatus,
    Timeout,
    _timeout_name,
)
from repro.sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - type-only; no runtime dependency
    from repro.sim.detsan import DetSanRecorder

__all__ = ["Simulator", "Process", "Interrupt", "SimulationError",
           "DEFAULT_QUEUE"]

#: Priority band for ordinary events.  Interrupts use URGENT so that a
#: process interrupted at time *t* sees the interrupt before any regular
#: event also due at *t*.
URGENT = 0
NORMAL = 1

#: Queue implementation used when ``Simulator(queue=...)`` is not given:
#: ``"wheel"`` (calendar queue) or ``"heap"`` (legacy binary heap).
#: Module-level so test harnesses can force a whole stack of components
#: onto one implementation without threading a parameter everywhere.
DEFAULT_QUEUE = "wheel"

_INF = float("inf")
_FAILED = EventStatus.FAILED
_SUCCEEDED = EventStatus.SUCCEEDED


class SimulationError(RuntimeError):
    """Raised for engine-level protocol violations (e.g. unhandled failure)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (for fault injection it is the
    failure record).
    """

    @property
    def cause(self) -> Any:
        """The payload the interrupter supplied (None if none)."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator, awaitable like any other event.

    The process event succeeds with the generator's return value when it
    finishes, or fails with the exception that escaped it.  Waiting on a
    process therefore composes: a parent can ``yield child_process``.
    """

    __slots__ = ("generator", "_waiting_on", "_abandoned",
                 "_obs_track", "_obs_span")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._abandoned: List[Event] = []
        if sim._obs_enabled:
            # Each process gets its own span track: background helper
            # processes (eager transfers, retry timers) would otherwise
            # produce improperly-overlapping spans on a shared track.
            self._obs_track = sim.obs.unique_track(self.name)
            self._obs_span = sim.obs.span(
                f"process:{self.name}", track=self._obs_track)
        else:
            self._obs_track = DEFAULT_TRACK
            self._obs_span = None
        # The simulator keeps a strong reference until the generator
        # finishes: abandoned processes (torn down mid-wait) must never
        # be reaped by the cyclic collector mid-run, because GeneratorExit
        # would close their open spans at a GC-dependent instant.
        sim._live_processes[self] = None
        # Kick off the generator via an immediately-succeeding event.
        bootstrap = Event(sim, f"init:{self.name}")
        bootstrap._callbacks = [self._resume]
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        twice before it runs again delivers both interrupts in order.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished {self!r}")
        interrupt_event = Event(self.sim, f"interrupt:{self.name}")
        interrupt_event.defused = True
        interrupt_event._callbacks = [self._resume_with_interrupt]
        interrupt_event._status = EventStatus.FAILED
        interrupt_event._value = Interrupt(cause)
        self.sim._schedule_event(interrupt_event, 0.0, priority=URGENT)

    # -- engine plumbing -------------------------------------------------

    def _resume_with_interrupt(self, event: Event) -> None:
        if self.triggered:
            # The process finished between the interrupt being scheduled and
            # delivered; interrupting a corpse is a silent no-op at this
            # point (the caller's interrupt() already raced legitimately).
            return
        waiting = self._waiting_on
        if (waiting is not None and waiting.triggered
                and waiting._scheduled_at is not None
                and waiting._scheduled_at <= self.sim.now):
            # The wakeup this process is waiting for is due at this very
            # instant: the process "finished first" in virtual time.  The
            # interrupt loses the tie — no-op, and let the queued wakeup
            # resume the process normally.
            return
        # Detach from whatever we were waiting on: when that event later
        # fires, _resume must ignore it (we already moved on).
        if self._waiting_on is not None:
            self._abandoned.append(self._waiting_on)
            self._waiting_on = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        if event in self._abandoned:
            # Stale wakeup from an event we abandoned after an interrupt.
            self._abandoned.remove(event)
            if not event.ok:
                event.defused = True
            return
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        if sim._obs_enabled:
            sim.obs.set_track(self._obs_track)
        try:
            if event.ok:
                target = self.generator.send(event._value)
            else:
                event.defused = True
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close()
            self.succeed(stop.value)
            return
        except BaseException as exc:  # repro: noqa[REP010] - event boundary
            sim._active_process = None
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (use sim.timeout/sim.event)"
            )
            self.generator.close()
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(SimulationError(message))
            return
        if target.sim is not sim:
            self.generator.close()
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        # Inlined add_callback: this registration runs once per process
        # step, which makes it one of the three hottest call sites in the
        # engine; the generic method costs a LOAD_METHOD + four branches.
        callbacks = target._callbacks
        if callbacks is None:
            target._callbacks = [self._resume]
        elif type(callbacks) is list:
            callbacks.append(self._resume)
        else:
            target.add_callback(self._resume)


class Simulator:
    """Deterministic discrete-event loop.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; defaults to the no-op
        tracer so hot paths stay cheap.
    obs:
        Optional :class:`~repro.obs.Observability`; defaults to the
        shared null instance.  When given, the simulator binds its clock
        to ``sim.now`` and attributes spans to the running process.
    detsan:
        Optional :class:`~repro.sim.detsan.DetSanRecorder`.  When given,
        every delivered event folds its scheduling decision into the
        recorder's rolling digest (the determinism sanitizer).  When
        ``None`` — the default — the only cost is one ``is not None``
        check per event on the instrumented path, and nothing at all on
        the plain-mode fast path.
    queue:
        ``"wheel"`` (calendar queue, the default via
        :data:`DEFAULT_QUEUE`) or ``"heap"`` (the legacy binary heap).
        Both deliver identical event orders; the heap exists as the
        differential-testing oracle and the perf baseline.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 obs: Optional[Observability] = None,
                 detsan: Optional["DetSanRecorder"] = None,
                 queue: Optional[str] = None) -> None:
        kind = queue if queue is not None else DEFAULT_QUEUE
        if kind == "wheel":
            self._queue: Any = CalendarEventQueue()
        elif kind == "heap":
            self._queue = HeapEventQueue()
        else:
            raise ValueError(f"unknown queue implementation: {kind!r}")
        self._queue_kind = kind
        self._wheel = kind == "wheel"
        self._now = 0.0
        self._sequence = 0
        self._active_process: Optional[Process] = None
        # Insertion-ordered strong references to unfinished processes.
        # Without this, a process abandoned mid-wait (its incarnation was
        # torn down) is reclaimed by the cyclic collector at an
        # allocation-dependent instant, and GeneratorExit closes its open
        # spans with GC-dependent timing — breaking trace byte-identity.
        self._live_processes: Dict[Process, None] = {}
        self._tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.obs: Observability = obs if obs is not None else NULL_OBS
        # Cached flag: hot paths branch on a plain attribute, never a
        # method call, so the disabled path stays within its overhead
        # budget.
        self._obs_enabled: bool = self.obs.enabled
        if self._obs_enabled:
            self.obs.bind_clock(lambda: self._now)
        self._detsan = detsan
        self._event_count = 0
        self._recompute_plain()

    def _recompute_plain(self) -> None:
        # Plain mode: nothing observes individual deliveries, so run()
        # may use the inlined fast loop and recycle timeout objects.
        self._plain = (self._wheel
                       and self._detsan is None
                       and type(self._tracer) is NullTracer
                       and not self._obs_enabled)

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any (for diagnostics)."""
        return self._active_process

    @property
    def events_executed(self) -> int:
        """Total events delivered so far (a cheap progress metric)."""
        return self._event_count

    @property
    def queue_kind(self) -> str:
        """Which queue implementation this simulator runs on."""
        return self._queue_kind

    @property
    def tracer(self) -> Tracer:
        """The installed tracer (assignable; a real tracer disables the
        plain-mode fast path so every delivery is recorded)."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Tracer) -> None:
        """Install a tracer, recomputing fast-path eligibility."""
        self._tracer = value
        self._recompute_plain()

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event owned by this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` seconds from now.

        In plain mode this reuses recycled :class:`Timeout` objects from
        the free pool and inlines the calendar-queue insert — timeout
        creation is the single hottest allocation site in every
        campaign.
        """
        if not self._plain:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        pool = _TIMEOUT_POOL
        if pool:
            # Pooled objects keep their SUCCEEDED status and None
            # callbacks; only the identity fields need refreshing.
            event = pool.pop()
        else:
            event = Timeout.__new__(Timeout)
            event._callbacks = None
            event._status = _SUCCEEDED
        event.defused = False
        event.sim = self
        name = _TIMEOUT_NAMES.get(delay)
        event.name = name if name is not None else _timeout_name(delay)
        event.delay = delay
        event._value = value
        # Inlined _schedule_event for the wheel's NORMAL band.
        seq = self._sequence + 1
        self._sequence = seq
        when = self._now + delay
        event._scheduled_at = when
        event._seq = seq
        wheel = self._queue
        wheel._count += 1
        slot = wheel._slots.get(when)
        if slot is not None:
            slot.append(event)
        elif when == wheel._active_time:
            wheel._active.append(event)
        else:
            wheel._slots[when] = [event]
            if when not in wheel._urgent:
                heappush(wheel._times, when)
        return event

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every given event has succeeded."""
        from repro.sim.event import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires with the first of the given events."""
        from repro.sim.event import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0,
                        priority: int = NORMAL) -> None:
        seq = self._sequence + 1
        self._sequence = seq
        when = self._now + delay
        event._scheduled_at = when
        event._seq = seq
        queue = self._queue
        if self._wheel:
            # Inlined CalendarEventQueue.push (this is the engine's
            # hottest call site after timeout()).
            queue._count += 1
            if priority != URGENT:
                slots = queue._slots
                slot = slots.get(when)
                if slot is not None:
                    slot.append(event)
                elif when == queue._active_time:
                    queue._active.append(event)
                else:
                    slots[when] = [event]
                    if when not in queue._urgent:
                        heappush(queue._times, when)
            else:
                queue._push_urgent_uncounted(when, event)
        else:
            queue.push(when, priority, seq, event)

    def cancel(self, event: Event) -> None:
        """Cancel a queued, waiter-less event before it is delivered.

        The entry stays inside the queue but is discarded — undelivered,
        uncounted, untraced — when it surfaces.  Cancelling is
        idempotent; cancelling an event that was already delivered, has
        registered waiters, was never scheduled, or belongs to another
        simulator is an error (waiters would hang forever, which is
        exactly the bug class this restriction prevents).
        """
        callbacks = event._callbacks
        if callbacks is _CANCELLED:
            return
        if event.sim is not self:
            raise ValueError(f"{event!r} belongs to another simulator")
        if callbacks is _DELIVERED:
            raise RuntimeError(f"cannot cancel already-delivered {event!r}")
        if type(callbacks) is list and callbacks:
            raise RuntimeError(
                f"cannot cancel {event!r}: waiters are registered")
        if event._scheduled_at is None:
            raise RuntimeError(f"cannot cancel unscheduled {event!r}")
        event._callbacks = _CANCELLED

    # -- running ---------------------------------------------------------

    def _dispatch(self, entry: Entry) -> None:
        """Deliver one popped entry on the instrumented path."""
        when, priority, seq, event = entry
        self._now = when
        self._event_count += 1
        if self._detsan is not None:
            # Fold the scheduling decision *before* delivery so the
            # sanitizer stream captures decision order, not effects.
            self._detsan.fold(when, priority, seq, event)
        self._tracer.record(when, event)
        event._deliver()
        if self._obs_enabled:
            # Delivery may have resumed a process (switching the span
            # track); anything recorded between events belongs to the
            # supervisor, i.e. the default track.
            self.obs.set_track(DEFAULT_TRACK)
        if event._status is _FAILED and not event.defused:
            # A failure nobody waited on: surface it rather than lose it.
            raise SimulationError(
                f"unhandled failure in {event!r}"
            ) from event._value

    def step(self) -> None:
        """Deliver the single next event, advancing virtual time to it.

        Cancelled entries are reaped silently; raises :class:`IndexError`
        if no deliverable event remains.
        """
        queue = self._queue
        while True:
            entry = queue.pop()
            if entry is None:
                raise IndexError("step from an empty event queue")
            if entry[3]._callbacks is not _CANCELLED:
                break
            # Reaped cancelled entries still advance the clock, matching
            # both run loops.
            self._now = entry[0]
        self._dispatch(entry)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none.

        May report the time of a cancelled-but-unreaped entry; cancelled
        entries are discarded when they surface, never delivered.
        """
        return self._queue.peek_time()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop: Optional[Callable[[], bool]] = None) -> float:
        """Run until the queue empties, ``until`` is reached, ``stop``
        returns true, or ``max_events`` more events have been delivered.

        Returns the final virtual time.  When stopping on ``until``, the
        clock is advanced exactly to ``until`` (events due later stay
        queued), matching the convention measurement code expects.
        ``stop`` is evaluated between events (never mid-delivery) and
        leaves the clock where the last event put it — supervisors that
        watch conditions maintained by perpetual processes (heartbeat
        monitors keep the queue non-empty forever) use it to regain
        control the moment the condition holds.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        if self._plain and stop is None and max_events is None:
            return self._run_fast(until)
        delivered = 0
        run_span = self.obs.span("sim.run", track=DEFAULT_TRACK)
        queue = self._queue
        try:
            while True:
                head = queue.peek_time()
                if head == _INF:
                    break
                if stop is not None and stop():
                    return self._now
                if until is not None and head > until:
                    self._now = until
                    return self._now
                if max_events is not None and delivered >= max_events:
                    return self._now
                entry = queue.pop()
                if entry[3]._callbacks is _CANCELLED:
                    # Reaped, not delivered — but the clock still
                    # advances to the surfaced time (the fast path moves
                    # it at batch advance, so the instrumented loop must
                    # match).  Re-peek: the next real entry may lie
                    # beyond ``until``.
                    self._now = entry[0]
                    continue
                self._dispatch(entry)
                delivered += 1
            if until is not None:
                self._now = until
            return self._now
        finally:
            run_span.set(events=delivered).close()
            if self._obs_enabled:
                self.obs.metrics.gauge("sim.events_executed").set(
                    float(self._event_count))

    def _run_fast(self, until: Optional[float]) -> float:
        """Plain-mode run loop: walk calendar-queue batches inline.

        Semantically identical to the instrumented loop — same events,
        same order, same clock — but with per-event work reduced to list
        indexing plus the callback walk, and with delivered
        fire-and-forget :class:`Timeout` objects recycled into the free
        pool.  Only called when ``self._plain`` (nothing observes
        deliveries) and neither ``stop`` nor ``max_events`` is in play.

        Counter bookkeeping (``_event_count``, the queue's ``_count``)
        is flushed in ``finally`` so an exception escaping a process
        leaves the simulator consistent; the batch cursor is committed
        the same way, so delivery never repeats after a resume.
        """
        queue = self._queue
        preempt = queue._preempt
        pool = _TIMEOUT_POOL
        getrefcount = sys.getrefcount
        count = 0      # events delivered
        removed = 0    # cancelled entries reaped
        # Remaining pool capacity, maintained locally: it only changes
        # under this loop's control except while callbacks run (they may
        # create pooled timeouts), so it is recomputed after every
        # callback walk instead of calling len() per delivery.
        free = _POOL_MAX - len(pool)
        try:
            while True:
                if preempt:
                    # Urgent events due now beat every undelivered normal
                    # event due now — the (when, PRIORITY, seq) contract.
                    while preempt:
                        event = preempt.popleft()
                        callbacks = event._callbacks
                        if callbacks is _CANCELLED:
                            removed += 1
                            continue
                        event._callbacks = _DELIVERED
                        count += 1
                        if callbacks is not None:
                            for callback in callbacks:
                                callback(event)
                        if event._status is _FAILED and not event.defused:
                            raise SimulationError(
                                f"unhandled failure in {event!r}"
                            ) from event._value
                    free = _POOL_MAX - len(pool)
                    continue  # the drain may have scheduled more urgents
                batch = queue._active
                i = queue._active_index
                n = len(batch)
                if i < n:
                    try:
                        while i < n:
                            event = batch[i]
                            i += 1
                            callbacks = event._callbacks
                            if callbacks is None:
                                # Fire-and-forget: nobody is waiting.
                                count += 1
                                # Recycle if provably unreferenced: the
                                # batch slot, the loop variable, and
                                # getrefcount's argument are the only
                                # remaining references.  A Timeout is
                                # born SUCCEEDED and can never fail, so
                                # the unhandled-failure check is moot
                                # and _callbacks can stay None for the
                                # pool.
                                if (free > 0
                                        and type(event) is Timeout
                                        and getrefcount(event) == 3):
                                    free -= 1
                                    event.sim = None  # type: ignore[assignment]
                                    event._value = None
                                    pool.append(event)
                                else:
                                    event._callbacks = _DELIVERED
                                    if (event._status is _FAILED
                                            and not event.defused):
                                        raise SimulationError(
                                            f"unhandled failure in {event!r}"
                                        ) from event._value
                            elif callbacks is _CANCELLED:
                                removed += 1
                                if (free > 0
                                        and type(event) is Timeout
                                        and getrefcount(event) == 3):
                                    free -= 1
                                    event._callbacks = None
                                    event.sim = None  # type: ignore[assignment]
                                    event._value = None
                                    event.defused = False
                                    pool.append(event)
                            else:
                                event._callbacks = _DELIVERED
                                count += 1
                                for callback in callbacks:
                                    callback(event)
                                free = _POOL_MAX - len(pool)
                                if type(event) is Timeout:
                                    # A delivered Timeout whose waiters
                                    # all detached (the common yield
                                    # pattern) is recyclable the same
                                    # way a fire-and-forget one is.
                                    if (free > 0
                                            and getrefcount(event) == 3):
                                        free -= 1
                                        event._callbacks = None
                                        event.sim = None  # type: ignore[assignment]
                                        event._value = None
                                        event.defused = False
                                        pool.append(event)
                                elif (event._status is _FAILED
                                        and not event.defused):
                                    raise SimulationError(
                                        f"unhandled failure in {event!r}"
                                    ) from event._value
                                if preempt:
                                    # A callback raised an interrupt due
                                    # at this instant; it preempts the
                                    # rest of the batch.
                                    break
                                # Callbacks may have appended events due
                                # at this same instant; the no-callback
                                # branches cannot.
                                n = len(batch)
                    finally:
                        queue._active_index = i
                    continue
                times = queue._times
                if not times:
                    break
                t = times[0]
                if until is not None and t > until:
                    break
                heappop(times)
                self._now = t
                queue._active_time = t
                if queue._urgent:
                    pre = queue._urgent.pop(t, None)
                    if pre is not None:
                        preempt.extend(pre)
                next_batch = queue._slots.pop(t, None)
                queue._active = next_batch if next_batch is not None else []
                queue._active_index = 0
            if until is not None:
                self._now = until
            return self._now
        finally:
            self._event_count += count
            queue._count -= count + removed

    def quiesce(self) -> int:
        """Close every unfinished process generator, in spawn order.

        Supervisors call this once, after the last :meth:`run`, so that
        suspended helper processes (abandoned by a teardown, or parked on
        an event that will never fire) unwind *deterministically* instead
        of whenever the garbage collector finds them: ``GeneratorExit``
        closes any spans still open inside the body with status
        ``"error"`` at the final clock reading, and the process's own
        span closes as ``"abandoned"``.  Returns the number of processes
        closed.  Idempotent; finished processes are never touched.
        """
        closed = 0
        while self._live_processes:
            process = next(iter(self._live_processes))
            del self._live_processes[process]
            process.generator.close()
            if process._obs_span is not None:
                process._obs_span.close("abandoned")
            closed += 1
        return closed

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return its
        result (re-raising the exception if it failed)."""
        proc = self.process(generator, name)
        proc.defused = True  # we re-raise below; step() must not also raise
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked: event queue drained while "
                "it was still waiting"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
