"""The event loop and process machinery.

:class:`Simulator` owns a binary-heap event queue keyed by
``(time, priority, sequence)``.  The ``sequence`` tiebreaker makes execution
fully deterministic: two events scheduled for the same instant are delivered
in scheduling order, so repeated runs with the same seeds produce identical
traces — a property the test suite checks.

Processes are plain generators.  Each ``yield`` hands the engine an
:class:`~repro.sim.event.Event`; the engine resumes the generator with the
event's value (or throws the event's exception into it) when it fires::

    def worker(sim):
        yield sim.timeout(1.5)          # sleep in virtual time
        done = sim.event()
        ...
        value = yield done              # wait for someone to succeed(done)

    sim = Simulator()
    sim.process(worker(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.obs import DEFAULT_TRACK, NULL_OBS, Observability
from repro.sim.event import Event, EventStatus, Timeout
from repro.sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - type-only; no runtime dependency
    from repro.sim.detsan import DetSanRecorder

__all__ = ["Simulator", "Process", "Interrupt", "SimulationError"]

#: Priority band for ordinary events.  Interrupts use URGENT so that a
#: process interrupted at time *t* sees the interrupt before any regular
#: event also due at *t*.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for engine-level protocol violations (e.g. unhandled failure)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (for fault injection it is the
    failure record).
    """

    @property
    def cause(self) -> Any:
        """The payload the interrupter supplied (None if none)."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator, awaitable like any other event.

    The process event succeeds with the generator's return value when it
    finishes, or fails with the exception that escaped it.  Waiting on a
    process therefore composes: a parent can ``yield child_process``.
    """

    __slots__ = ("generator", "_waiting_on", "_abandoned",
                 "_obs_track", "_obs_span")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._abandoned: List[Event] = []
        if sim._obs_enabled:
            # Each process gets its own span track: background helper
            # processes (eager transfers, retry timers) would otherwise
            # produce improperly-overlapping spans on a shared track.
            self._obs_track = sim.obs.unique_track(self.name)
            self._obs_span = sim.obs.span(
                f"process:{self.name}", track=self._obs_track)
        else:
            self._obs_track = DEFAULT_TRACK
            self._obs_span = None
        # The simulator keeps a strong reference until the generator
        # finishes: abandoned processes (torn down mid-wait) must never
        # be reaped by the cyclic collector mid-run, because GeneratorExit
        # would close their open spans at a GC-dependent instant.
        sim._live_processes[self] = None
        # Kick off the generator via an immediately-succeeding event.
        bootstrap = Event(sim, f"init:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        twice before it runs again delivers both interrupts in order.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished {self!r}")
        interrupt_event = Event(self.sim, f"interrupt:{self.name}")
        interrupt_event.defused = True
        interrupt_event.add_callback(self._resume_with_interrupt)
        interrupt_event._status = EventStatus.FAILED
        interrupt_event._value = Interrupt(cause)
        self.sim._schedule_event(interrupt_event, 0.0, priority=URGENT)

    # -- engine plumbing -------------------------------------------------

    def _resume_with_interrupt(self, event: Event) -> None:
        if self.triggered:
            # The process finished between the interrupt being scheduled and
            # delivered; interrupting a corpse is a silent no-op at this
            # point (the caller's interrupt() already raced legitimately).
            return
        waiting = self._waiting_on
        if (waiting is not None and waiting.triggered
                and waiting._scheduled_at is not None
                and waiting._scheduled_at <= self.sim.now):
            # The wakeup this process is waiting for is due at this very
            # instant: the process "finished first" in virtual time.  The
            # interrupt loses the tie — no-op, and let the queued wakeup
            # resume the process normally.
            return
        # Detach from whatever we were waiting on: when that event later
        # fires, _resume must ignore it (we already moved on).
        if self._waiting_on is not None:
            self._abandoned.append(self._waiting_on)
            self._waiting_on = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        if event in self._abandoned:
            # Stale wakeup from an event we abandoned after an interrupt.
            self._abandoned.remove(event)
            if not event.ok:
                event.defused = True
            return
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        if sim._obs_enabled:
            sim.obs.set_track(self._obs_track)
        try:
            if event.ok:
                target = self.generator.send(event._value)
            else:
                event.defused = True
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close()
            self.succeed(stop.value)
            return
        except BaseException as exc:  # repro: noqa[REP010] - event boundary
            sim._active_process = None
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            message = (
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (use sim.timeout/sim.event)"
            )
            self.generator.close()
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(SimulationError(message))
            return
        if target.sim is not sim:
            self.generator.close()
            sim._live_processes.pop(self, None)
            if self._obs_span is not None:
                self._obs_span.close("error")
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """Deterministic discrete-event loop.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; defaults to the no-op
        tracer so hot paths stay cheap.
    obs:
        Optional :class:`~repro.obs.Observability`; defaults to the
        shared null instance.  When given, the simulator binds its clock
        to ``sim.now`` and attributes spans to the running process.
    detsan:
        Optional :class:`~repro.sim.detsan.DetSanRecorder`.  When given,
        every delivered event folds its scheduling decision into the
        recorder's rolling digest (the determinism sanitizer).  When
        ``None`` — the default — the only cost is one ``is not None``
        check per event, inside the perf bench's <=3% overhead budget.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 obs: Optional[Observability] = None,
                 detsan: Optional["DetSanRecorder"] = None) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        # Insertion-ordered strong references to unfinished processes.
        # Without this, a process abandoned mid-wait (its incarnation was
        # torn down) is reclaimed by the cyclic collector at an
        # allocation-dependent instant, and GeneratorExit closes its open
        # spans with GC-dependent timing — breaking trace byte-identity.
        self._live_processes: Dict[Process, None] = {}
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.obs: Observability = obs if obs is not None else NULL_OBS
        # Cached flag: hot paths branch on a plain attribute, never a
        # method call, so the disabled path stays within its 3% budget.
        self._obs_enabled: bool = self.obs.enabled
        if self._obs_enabled:
            self.obs.bind_clock(lambda: self._now)
        self._detsan = detsan
        self._event_count = 0

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any (for diagnostics)."""
        return self._active_process

    @property
    def events_executed(self) -> int:
        """Total events delivered so far (a cheap progress metric)."""
        return self._event_count

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event owned by this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every given event has succeeded."""
        from repro.sim.event import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires with the first of the given events."""
        from repro.sim.event import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0,
                        priority: int = NORMAL) -> None:
        self._sequence += 1
        event._scheduled_at = self._now + delay
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event)
        )

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Deliver the single next event, advancing virtual time to it."""
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self._event_count += 1
        if self._detsan is not None:
            # Fold the scheduling decision *before* delivery so the
            # sanitizer stream captures decision order, not effects.
            self._detsan.fold(when, _priority, _seq, event)
        self.tracer.record(when, event)
        event._deliver()
        if self._obs_enabled:
            # Delivery may have resumed a process (switching the span
            # track); anything recorded between events belongs to the
            # supervisor, i.e. the default track.
            self.obs.set_track(DEFAULT_TRACK)
        if event._status is EventStatus.FAILED and not event.defused:
            # A failure nobody waited on: surface it rather than lose it.
            raise SimulationError(
                f"unhandled failure in {event!r}"
            ) from event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop: Optional[Callable[[], bool]] = None) -> float:
        """Run until the queue empties, ``until`` is reached, ``stop``
        returns true, or ``max_events`` more events have been delivered.

        Returns the final virtual time.  When stopping on ``until``, the
        clock is advanced exactly to ``until`` (events due later stay
        queued), matching the convention measurement code expects.
        ``stop`` is evaluated between events (never mid-delivery) and
        leaves the clock where the last event put it — supervisors that
        watch conditions maintained by perpetual processes (heartbeat
        monitors keep the queue non-empty forever) use it to regain
        control the moment the condition holds.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        delivered = 0
        run_span = self.obs.span("sim.run", track=DEFAULT_TRACK)
        try:
            while self._queue:
                if stop is not None and stop():
                    return self._now
                if until is not None and self._queue[0][0] > until:
                    self._now = until
                    return self._now
                if max_events is not None and delivered >= max_events:
                    return self._now
                self.step()
                delivered += 1
            if until is not None:
                self._now = until
            return self._now
        finally:
            run_span.set(events=delivered).close()
            if self._obs_enabled:
                self.obs.metrics.gauge("sim.events_executed").set(
                    float(self._event_count))

    def quiesce(self) -> int:
        """Close every unfinished process generator, in spawn order.

        Supervisors call this once, after the last :meth:`run`, so that
        suspended helper processes (abandoned by a teardown, or parked on
        an event that will never fire) unwind *deterministically* instead
        of whenever the garbage collector finds them: ``GeneratorExit``
        closes any spans still open inside the body with status
        ``"error"`` at the final clock reading, and the process's own
        span closes as ``"abandoned"``.  Returns the number of processes
        closed.  Idempotent; finished processes are never touched.
        """
        closed = 0
        while self._live_processes:
            process = next(iter(self._live_processes))
            del self._live_processes[process]
            process.generator.close()
            if process._obs_span is not None:
                process._obs_span.close("abandoned")
            closed += 1
        return closed

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return its
        result (re-raising the exception if it failed)."""
        proc = self.process(generator, name)
        proc.defused = True  # we re-raise below; step() must not also raise
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} deadlocked: event queue drained while "
                "it was still waiting"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
