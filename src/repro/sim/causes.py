"""Structured interrupt causes for fault events.

:meth:`~repro.sim.engine.Process.interrupt` carries an arbitrary
``cause``; historically fault injection used bare tuples like
``("failure", 3)``.  These NamedTuples keep that wire format — they
*are* tuples, so ``cause == ("failure", 3)`` still holds and existing
matching code keeps working — while giving the fault campaign layer
named fields and a taxonomy:

* :class:`FailureCause` — a node/process failure injected by a
  :class:`~repro.fault.injection.FaultInjector` or a campaign;
* :class:`LinkDownCause` — a network element (link or switch) going
  down, used when transfers or monitors are interrupted by the fabric;
* :class:`AbortCause` — collateral teardown: the job is being torn
  down because some *other* rank failed (coordinated restart).

Equality with the plain-tuple forms is part of the contract and is
pinned by tests.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = ["FailureCause", "LinkDownCause", "AbortCause"]


class FailureCause(NamedTuple):
    """Injected node/process failure number ``index``.

    Compares equal to the legacy ``("failure", index)`` tuple.
    """

    kind: str
    index: int

    @classmethod
    def numbered(cls, index: int) -> "FailureCause":
        """The canonical cause for the ``index``-th injected failure."""
        return cls("failure", index)


class LinkDownCause(NamedTuple):
    """A network element went down (``link`` is a canonical edge or a
    switch node); compares equal to ``("link-down", link, index)``."""

    kind: str
    link: Any
    index: int

    @classmethod
    def numbered(cls, link: Any, index: int) -> "LinkDownCause":
        """The canonical cause for the ``index``-th link-down event."""
        return cls("link-down", link, index)


class AbortCause(NamedTuple):
    """Collateral job teardown after failure ``index`` hit ``victim``.

    Compares equal to ``("job-abort", victim, index)``.
    """

    kind: str
    victim: int
    index: int

    @classmethod
    def numbered(cls, victim: int, index: int) -> "AbortCause":
        """The canonical cause for tearing down peers of ``victim``."""
        return cls("job-abort", victim, index)
