"""Simulation tracing.

Tracers observe every delivered event.  The default :class:`NullTracer`
costs one attribute lookup per event; :class:`RecordingTracer` accumulates
:class:`TraceRecord` rows for debugging and for tests that assert on event
ordering determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.event import Event

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One delivered event: when, what kind, its label, and outcome."""

    time: float
    kind: str
    name: str
    status: str


class Tracer:
    """Interface: receives each event at delivery time."""

    def record(self, time: float, event: "Event") -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards everything (the default)."""

    def record(self, time: float, event: "Event") -> None:
        """Discard the event."""


class RecordingTracer(Tracer):
    """Keeps an in-memory list of :class:`TraceRecord` rows.

    Parameters
    ----------
    limit:
        Stop recording (silently) after this many rows so a runaway
        simulation cannot exhaust memory through its own trace.
    """

    def __init__(self, limit: int = 1_000_000) -> None:
        self.records: List[TraceRecord] = []
        self.limit = limit

    def record(self, time: float, event: "Event") -> None:
        """Append a TraceRecord for the delivered event (up to limit)."""
        if len(self.records) >= self.limit:
            return
        self.records.append(
            TraceRecord(
                time=time,
                kind=type(event).__name__,
                name=event.name,
                status=event.status.value,
            )
        )

    def names(self) -> List[str]:
        """Event labels in delivery order (convenient for assertions)."""
        return [r.name for r in self.records]
