"""Simulation tracing.

Tracers observe every delivered event.  The default :class:`NullTracer`
costs one attribute lookup per event; :class:`RecordingTracer` is a thin
adapter over the :mod:`repro.obs` span stream — each delivered event
becomes an instant on a dedicated track, and :attr:`RecordingTracer.\
records` derives the familiar :class:`TraceRecord` rows from that
stream, so tests written against the old recorder keep passing while
the data also flows into Chrome-trace exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.obs import Observability

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.event import Event

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One delivered event: when, what kind, its label, and outcome."""

    time: float
    kind: str
    name: str
    status: str


class Tracer:
    """Interface: receives each event at delivery time."""

    def record(self, time: float, event: "Event") -> None:
        """Handle one delivered event (subclasses override)."""
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards everything (the default)."""

    def record(self, time: float, event: "Event") -> None:
        """Discard the event."""


class RecordingTracer(Tracer):
    """Records each delivered event into an observability span stream.

    Parameters
    ----------
    limit:
        Stop recording (silently) after this many rows so a runaway
        simulation cannot exhaust memory through its own trace.
    obs:
        The :class:`~repro.obs.Observability` to write into; a private
        one is created when omitted, preserving the old standalone
        behaviour.
    """

    #: Track name events land on inside the observability stream.
    TRACK = "sim.events"

    def __init__(self, limit: int = 1_000_000,
                 obs: Optional[Observability] = None) -> None:
        self.obs = obs if obs is not None else Observability()
        self.limit = limit
        self._count = 0

    def record(self, time: float, event: "Event") -> None:
        """Record the delivered event as an instant (up to limit)."""
        if self._count >= self.limit:
            return
        self._count += 1
        self.obs.instant(event.name, track=self.TRACK, time=time,
                         kind=type(event).__name__,
                         status=event.status.value)

    @property
    def records(self) -> List[TraceRecord]:
        """The recorded events as :class:`TraceRecord` rows, in order."""
        return [
            TraceRecord(time=inst.time, kind=inst.attrs["kind"],
                        name=inst.name, status=inst.attrs["status"])
            for inst in self.obs.instants if inst.track == self.TRACK
        ]

    def names(self) -> List[str]:
        """Event labels in delivery order (convenient for assertions)."""
        return [r.name for r in self.records]
