"""Events: the things simulation processes wait on.

An :class:`Event` starts *pending*, is *triggered* exactly once (either
succeeding with a value or failing with an exception), and then notifies
every registered callback.  Processes register themselves as callbacks when
they ``yield`` an event; the engine resumes them when it fires.

Events deliberately mirror the SimPy contract (``succeed`` / ``fail`` /
``triggered`` / ``value``) so that readers familiar with that library can
navigate the codebase, but the implementation here is independent and much
smaller.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.engine import Simulator

__all__ = ["Event", "EventStatus", "Timeout", "AllOf", "AnyOf"]


class EventStatus(enum.Enum):
    """Lifecycle of an event."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Event:
    """A one-shot occurrence in virtual time.

    Parameters
    ----------
    sim:
        The owning simulator.  Triggering schedules callback delivery as an
        immediate (zero-delay) occurrence on its event queue, which keeps
        callback ordering deterministic.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "_status", "_value", "_callbacks", "defused",
                 "_scheduled_at")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._status = EventStatus.PENDING
        self._value: Any = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        #: A failed event whose exception was never observed by any process
        #: is re-raised by the engine unless ``defused`` is set.  Mirrors
        #: SimPy semantics and catches silently-dropped failures in tests.
        self.defused = False
        #: Virtual time at which delivery was scheduled (set by the engine;
        #: ``None`` until then).  Lets an interrupt landing at the exact
        #: instant a waiter's wakeup is due yield to that wakeup.
        self._scheduled_at: Optional[float] = None

    # -- inspection ------------------------------------------------------

    @property
    def status(self) -> EventStatus:
        """Current lifecycle state."""
        return self._status

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._status is not EventStatus.PENDING

    @property
    def ok(self) -> bool:
        """True iff the event succeeded."""
        return self._status is EventStatus.SUCCEEDED

    @property
    def value(self) -> Any:
        """The success value or failure exception; raises while pending."""
        if self._status is EventStatus.PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(EventStatus.SUCCEEDED, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(EventStatus.FAILED, exception)
        return self

    def _trigger(self, status: EventStatus, value: Any) -> None:
        if self._status is not EventStatus.PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._status = status
        self._value = value
        self.sim._schedule_event(self)

    def _deliver(self) -> None:
        """Run callbacks; invoked by the engine when this event is popped."""
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    # -- waiting ---------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``.

        If the event has already been delivered, the callback is scheduled
        as an immediate occurrence on the event queue (late waiters must not
        block forever) — via the queue rather than synchronously, so chains
        of already-triggered yields cannot blow the Python stack.
        """
        if self._callbacks is None:
            _Soon(self.sim, self, callback)
        else:
            self._callbacks.append(callback)

    # -- combinator sugar --------------------------------------------------

    def __and__(self, other: "Event") -> "Event":
        """``a & b`` waits for both (an :class:`AllOf` of the two)."""
        if not isinstance(other, Event):
            return NotImplemented
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Event":
        """``a | b`` waits for whichever fires first (an :class:`AnyOf`)."""
        if not isinstance(other, Event):
            return NotImplemented
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or hex(id(self))
        return f"<{type(self).__name__} {label} {self._status.value}>"


class _Soon(Event):
    """Internal: deliver one late-registered callback via the event queue."""

    __slots__ = ("_target", "_late_callback")

    def __init__(self, sim: "Simulator", target: Event,
                 callback: Callable[[Event], None]) -> None:
        super().__init__(sim, "soon")
        self._target = target
        self._late_callback = callback
        self._status = target._status
        self._value = target._value
        self.defused = True  # the original event's failure was already handled
        sim._schedule_event(self)

    def _deliver(self) -> None:
        self._callbacks = None
        self._late_callback(self._target)


class Timeout(Event):
    """An event that succeeds after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name or f"timeout({delay:g})")
        self.delay = delay
        # Bypass succeed(): schedule the trigger directly at now+delay.
        self._status = EventStatus.SUCCEEDED
        self._value = value
        sim._schedule_event(self, delay)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Sequence[Event],
                 name: str) -> None:
        super().__init__(sim, name)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot combine events from different simulators")
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed(self._result())
        else:
            for event in self.events:
                event.add_callback(self._on_child)

    def _result(self) -> List[Any]:
        return [e._value for e in self.events if e.triggered]

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *every* child event has succeeded.

    Fails as soon as any child fails (remaining children are left to run;
    their failures are defused so the engine does not crash).
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim, events, f"allof[{len(events)}]")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Succeeds (or fails) with the first child event that triggers.

    The value delivered is ``(index, value)`` of the winning child so a
    waiter can tell which event fired.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim, events, f"anyof[{len(events)}]")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        index = self.events.index(event)
        if event.ok:
            self.succeed((index, event._value))
        else:
            event.defused = True
            self.fail(event._value)
