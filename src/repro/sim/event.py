"""Events: the things simulation processes wait on.

An :class:`Event` starts *pending*, is *triggered* exactly once (either
succeeding with a value or failing with an exception), and then notifies
every registered callback.  Processes register themselves as callbacks when
they ``yield`` an event; the engine resumes them when it fires.

Events deliberately mirror the SimPy contract (``succeed`` / ``fail`` /
``triggered`` / ``value``) so that readers familiar with that library can
navigate the codebase, but the implementation here is independent and much
smaller.

The ``_callbacks`` slot doubles as the delivery state machine, encoded so
the engine's hot loop can classify an event with one identity check:

``None``
    Not yet delivered, no waiters registered.  The common case for
    fire-and-forget timeouts — no list is ever allocated for them.
``list``
    Not yet delivered, one or more waiters registered.
:data:`_DELIVERED`
    Callbacks have run.  Late ``add_callback`` registrations are routed
    through the event queue (see :class:`_Soon`).
:data:`_CANCELLED`
    Engine-cancelled while queued (:meth:`Simulator.cancel`); the queues
    still surface the entry but the engine discards it undelivered.

Both sentinels are falsy and iterate as empty, so code that treats
``_callbacks`` as "maybe a populated list" — notably the DetSan
recorder's pre-delivery fold — needs no special cases.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.engine import Simulator

__all__ = ["Event", "EventStatus", "Timeout", "AllOf", "AnyOf"]


class EventStatus(enum.Enum):
    """Lifecycle of an event."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class _CallbacksSentinel:
    """Terminal ``_callbacks`` state (delivered or cancelled).

    Falsy and empty-iterable by design: observers that ask "are there
    pending callbacks?" or "which callbacks are pending?" get the right
    answer without knowing the sentinel exists.
    """

    __slots__ = ("_label",)

    def __init__(self, label: str) -> None:
        self._label = label

    def __bool__(self) -> bool:
        return False

    def __iter__(self) -> Iterator[Callable[["Event"], None]]:
        return iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<callbacks:{self._label}>"


#: Callbacks already ran; the event is in the past.
_DELIVERED = _CallbacksSentinel("delivered")
#: Cancelled while queued; the engine discards the entry undelivered.
_CANCELLED = _CallbacksSentinel("cancelled")

_Callbacks = Union[None, List[Callable[["Event"], None]], _CallbacksSentinel]

#: Recycled :class:`Timeout` instances, shared across simulators.  Only the
#: engine's plain-mode fast loop recycles (and only objects it can prove
#: unreferenced, via ``sys.getrefcount``); :meth:`Simulator.timeout` reuses
#: them instead of allocating.  Invariant: every pooled object has
#: ``_callbacks is None``, ``sim is None``, ``_value is None`` and
#: ``defused False``.
_TIMEOUT_POOL: List["Timeout"] = []
#: Pool cap — bounds worst-case retained memory after a burst (~256k
#: objects) while comfortably covering steady-state campaign churn.
_POOL_MAX = 262_144

#: Interned ``timeout(<delay:g>)`` labels.  Heartbeat/collective workloads
#: reuse a handful of delays millions of times; formatting the label
#: dominates Timeout construction without this cache.
_TIMEOUT_NAMES: Dict[float, str] = {}
_TIMEOUT_NAMES_MAX = 4096


def _timeout_name(delay: float) -> str:
    """The interned ``timeout(...)`` label for ``delay``."""
    name = _TIMEOUT_NAMES.get(delay)
    if name is None:
        name = f"timeout({delay:g})"
        if len(_TIMEOUT_NAMES) < _TIMEOUT_NAMES_MAX:
            _TIMEOUT_NAMES[delay] = name
    return name


class Event:
    """A one-shot occurrence in virtual time.

    Parameters
    ----------
    sim:
        The owning simulator.  Triggering schedules callback delivery as an
        immediate (zero-delay) occurrence on its event queue, which keeps
        callback ordering deterministic.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "_status", "_value", "_callbacks", "defused",
                 "_scheduled_at", "_seq")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._status = EventStatus.PENDING
        self._value: Any = None
        self._callbacks: _Callbacks = None
        #: A failed event whose exception was never observed by any process
        #: is re-raised by the engine unless ``defused`` is set.  Mirrors
        #: SimPy semantics and catches silently-dropped failures in tests.
        self.defused = False
        #: Virtual time at which delivery was scheduled (set by the engine;
        #: ``None`` until then).  Lets an interrupt landing at the exact
        #: instant a waiter's wakeup is due yield to that wakeup.
        self._scheduled_at: Optional[float] = None
        #: Global scheduling sequence number (set by the engine when the
        #: event is queued).  Part of the ``(when, priority, seq)``
        #: tie-break contract; the calendar queue reads it back on pop.
        self._seq = 0

    # -- inspection ------------------------------------------------------

    @property
    def status(self) -> EventStatus:
        """Current lifecycle state."""
        return self._status

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._status is not EventStatus.PENDING

    @property
    def ok(self) -> bool:
        """True iff the event succeeded."""
        return self._status is EventStatus.SUCCEEDED

    @property
    def cancelled(self) -> bool:
        """True iff the engine cancelled this event while it was queued."""
        return self._callbacks is _CANCELLED

    @property
    def value(self) -> Any:
        """The success value or failure exception; raises while pending."""
        if self._status is EventStatus.PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(EventStatus.SUCCEEDED, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(EventStatus.FAILED, exception)
        return self

    def _trigger(self, status: EventStatus, value: Any) -> None:
        if self._status is not EventStatus.PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._status = status
        self._value = value
        self.sim._schedule_event(self)

    def _deliver(self) -> None:
        """Run callbacks; invoked by the engine when this event is popped."""
        callbacks = self._callbacks
        self._callbacks = _DELIVERED
        if callbacks is not None:
            for callback in callbacks:
                callback(self)

    # -- waiting ---------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``.

        If the event has already been delivered, the callback is scheduled
        as an immediate occurrence on the event queue (late waiters must not
        block forever) — via the queue rather than synchronously, so chains
        of already-triggered yields cannot blow the Python stack.  Waiting
        on a cancelled event is a programming error.
        """
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = [callback]
        elif type(callbacks) is list:
            callbacks.append(callback)
        elif callbacks is _DELIVERED:
            _Soon(self.sim, self, callback)
        else:
            raise RuntimeError(f"cannot wait on cancelled {self!r}")

    # -- combinator sugar --------------------------------------------------

    def __and__(self, other: "Event") -> "Event":
        """``a & b`` waits for both (an :class:`AllOf` of the two)."""
        if not isinstance(other, Event):
            return NotImplemented
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Event":
        """``a | b`` waits for whichever fires first (an :class:`AnyOf`)."""
        if not isinstance(other, Event):
            return NotImplemented
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or hex(id(self))
        return f"<{type(self).__name__} {label} {self._status.value}>"


class _Soon(Event):
    """Internal: deliver one late-registered callback via the event queue."""

    __slots__ = ("_target", "_late_callback")

    def __init__(self, sim: "Simulator", target: Event,
                 callback: Callable[[Event], None]) -> None:
        super().__init__(sim, "soon")
        self._target = target
        self._late_callback = callback
        self._status = target._status
        self._value = target._value
        self.defused = True  # the original event's failure was already handled
        # Delivery happens through the generic callback walk (no custom
        # _deliver override — the engine's fast loop must be able to treat
        # every event uniformly).
        self._callbacks = [self._run]
        sim._schedule_event(self)

    def _run(self, _event: Event) -> None:
        """Forward the original event to the late-registered callback."""
        self._late_callback(self._target)


class Timeout(Event):
    """An event that succeeds after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name or _timeout_name(delay))
        self.delay = delay
        # Bypass succeed(): schedule the trigger directly at now+delay.
        self._status = EventStatus.SUCCEEDED
        self._value = value
        sim._schedule_event(self, delay)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Sequence[Event],
                 name: str) -> None:
        super().__init__(sim, name)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot combine events from different simulators")
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed(self._result())
        else:
            for event in self.events:
                event.add_callback(self._on_child)

    def _result(self) -> List[Any]:
        return [e._value for e in self.events if e.triggered]

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *every* child event has succeeded.

    Fails as soon as any child fails (remaining children are left to run;
    their failures are defused so the engine does not crash).
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim, events, f"allof[{len(events)}]")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Succeeds (or fails) with the first child event that triggers.

    The value delivered is ``(index, value)`` of the winning child so a
    waiter can tell which event fired.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim, events, f"anyof[{len(events)}]")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        index = self.events.index(event)
        if event.ok:
            self.succeed((index, event._value))
        else:
            event.defused = True
            self.fail(event._value)
