"""Queueing primitives built on events.

:class:`Resource`
    A server with integer capacity.  ``request()`` returns an event that
    succeeds when a slot is granted (FIFO); ``release()`` frees a slot.
    Used for shared links, switch ports, and CPU slots.

:class:`Store`
    An unbounded-or-bounded FIFO buffer of items.  ``put(item)`` and
    ``get()`` return events.  Used as the mailbox underlying the messaging
    layer: a ``get`` posted before any ``put`` parks the caller; a ``put``
    into a waiting ``get`` hands the item over at the same instant.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, TYPE_CHECKING

from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """Capacity-limited server with FIFO grant order.

    The grant event's value is the resource itself, so a process can write
    ``yield resource.request()`` and then later ``resource.release()``.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Slots currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """An event that succeeds when a slot is granted to the caller."""
        grant = Event(self.sim, f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release without matching request")
        if self._waiters:
            # Slot moves directly to the next waiter; occupancy unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Resource {self.name} {self._in_use}/{self.capacity}"
                f" q={len(self._waiters)}>")


class Store:
    """FIFO item buffer with optional capacity bound.

    ``get()`` events succeed with the item.  ``put(item)`` events succeed
    with ``None`` once the item is accepted (immediately unless the store
    is full).  Matching is strictly FIFO on both sides.

    An optional ``filter`` on :meth:`get` lets a consumer take only items
    it accepts (used for tag/source matching in the messaging layer);
    non-matching items stay queued for other consumers, preserving their
    arrival order.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[tuple] = deque()   # (event, filter)
        self._putters: Deque[tuple] = deque()   # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Consumers currently blocked on get()."""
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        """Producers currently blocked on put()."""
        return len(self._putters)

    def put(self, item: Any) -> Event:
        """Offer an item; succeeds when accepted into the buffer."""
        done = Event(self.sim, f"{self.name}.put")
        self._putters.append((done, item))
        self._match()
        return done

    def get(self, accept: Optional[Callable[[Any], bool]] = None) -> Event:
        """Take the oldest item (matching ``accept`` if given)."""
        got = Event(self.sim, f"{self.name}.get")
        self._getters.append((got, accept))
        self._match()
        return got

    # -- matching engine --------------------------------------------------

    def _match(self) -> None:
        """Drain putters into the buffer and the buffer into getters until
        no further progress is possible."""
        progress = True
        while progress:
            progress = False
            # Accept pending puts while there is room.
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                done, item = self._putters.popleft()
                self._items.append(item)
                done.succeed(None)
                progress = True
            # Serve getters from the buffer.
            if self._getters and self._items:
                served = self._serve_getters()
                progress = progress or served

    def _serve_getters(self) -> bool:
        served_any = False
        remaining: Deque[tuple] = deque()
        while self._getters:
            got, accept = self._getters.popleft()
            index = self._find(accept)
            if index is None:
                remaining.append((got, accept))
                continue
            item = self._items[index]
            del self._items[index]
            got.succeed(item)
            served_any = True
        self._getters = remaining
        return served_any

    def cancel(self, got: Event) -> bool:
        """Withdraw a pending ``get`` event before it is served.

        Returns True if the event was still queued (and is now removed);
        False if it was already served or never belonged here.  A consumer
        that abandons a ``get`` (timeout, failure notice) must cancel it,
        or the stale getter would silently steal a future item.
        """
        for entry in self._getters:
            if entry[0] is got:
                self._getters.remove(entry)
                return True
        return False

    def purge(self, accept: Callable[[Any], bool]) -> int:
        """Drop every buffered item matching ``accept``; returns the count.

        Used to sweep stale protocol traffic (e.g. duplicate delivery
        acknowledgments) out of a mailbox without disturbing waiters.
        """
        kept: Deque[Any] = deque()
        dropped = 0
        for item in self._items:
            if accept(item):
                dropped += 1
            else:
                kept.append(item)
        self._items = kept
        return dropped

    def _find(self, accept: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if accept is None:
            return 0 if self._items else None
        for index, item in enumerate(self._items):
            if accept(item):
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Store {self.name} items={len(self._items)} "
                f"getters={len(self._getters)} putters={len(self._putters)}>")
