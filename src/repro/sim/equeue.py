"""Event-queue implementations behind :class:`~repro.sim.engine.Simulator`.

Two interchangeable structures with one contract — entries pushed as
``(when, priority, seq, event)`` pop in exactly ``(when, priority, seq)``
order:

:class:`HeapEventQueue`
    The original binary heap of tuples.  O(log n) everywhere, no
    assumptions about the time distribution.  Kept verbatim as the
    reference implementation: the differential tests in
    ``tests/test_engine_queue_equivalence.py`` drive it against the
    calendar queue and assert identical pop sequences, and the perf
    bench uses it as the recorded baseline for the ``speedup_vs_heap``
    gate.

:class:`CalendarEventQueue`
    A calendar queue specialised to discrete-event workloads: events due
    at the *same instant* are kept in one list ("slot") keyed by their
    exact time, and a small heap orders only the **distinct** times.
    Simulation workloads are massively tie-heavy (every rank of a
    bulk-synchronous phase wakes at the same instant; every zero-delay
    trigger lands *now*), so the heap the engine actually pays log-time
    on is orders of magnitude smaller than the event count, slot
    insertion is an O(1) dict-append, and in-slot order is plain append
    order — which *is* sequence order, because the engine pushes with a
    monotonically increasing ``seq``.  Far-future events need no special
    fallback path: a far-future time is just one more entry in the
    distinct-time heap, and "bucket resizing" is automatic because
    buckets are exact times (the structure adapts to any event-time
    distribution without rehashing).  Urgent (priority-0) events are
    rare — only process interrupts use them — and ride a side table so
    the common path never inspects priorities.

Cancellation is engine-level, not queue-level: a cancelled event stays
queued with its ``_callbacks`` slot set to the module sentinel (see
``repro.sim.event._CANCELLED``) and is discarded, uncounted, when it
surfaces.  Both implementations therefore stay structurally identical
under cancellation — the property the differential tests pin down.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.event import Event

__all__ = ["CalendarEventQueue", "HeapEventQueue"]

_INF = float("inf")

#: A pop()ed entry: (when, priority, seq, event).
Entry = Tuple[float, int, int, Any]


class HeapEventQueue:
    """The classic tuple heap keyed by ``(when, priority, seq)``."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, when: float, priority: int, seq: int,
             event: "Event") -> None:
        """Insert one entry."""
        heappush(self._heap, (when, priority, seq, event))

    def pop(self) -> Optional[Entry]:
        """Remove and return the next entry, or ``None`` when empty.

        Cancelled events are returned like any other entry; skipping
        (and not counting) them is the engine's job, so both queue
        implementations behave identically by construction.
        """
        heap = self._heap
        if not heap:
            return None
        return heappop(heap)

    def peek_time(self) -> float:
        """Time of the next entry (cancelled or not); ``inf`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else _INF

    def __len__(self) -> int:
        return len(self._heap)


class CalendarEventQueue:
    """Exact-time slots + a heap of distinct times (see module docstring).

    Invariants:

    * A time ``t`` appears in ``_times`` exactly once iff ``t`` has a
      pending slot in ``_slots`` or ``_urgent`` (the currently active
      time is *not* in ``_times``; its remaining events live in
      ``_active``/``_preempt``).
    * Events due at the active time are appended to ``_active`` (normal)
      or ``_preempt`` (urgent) directly, so in-slot append order is
      global sequence order and a zero-delay event scheduled mid-batch
      is delivered within the same batch.
    * ``_preempt`` drains before the remainder of ``_active``: an urgent
      event due at ``t`` beats every normal event due at ``t`` that has
      not yet been delivered — exactly the tuple-heap ordering.

    The engine's plain-mode run loop manipulates these fields directly
    (they are the documented contract between the two modules); the
    method API below is the same behaviour one call at a time, used by
    the instrumented engine path and the differential tests.
    """

    __slots__ = ("_slots", "_times", "_urgent", "_active", "_active_index",
                 "_active_time", "_preempt", "_count")

    def __init__(self) -> None:
        #: Normal-priority events keyed by exact due time.
        self._slots: Dict[float, List["Event"]] = {}
        #: Heap of distinct pending times.
        self._times: List[float] = []
        #: Urgent (priority-0) events keyed by exact due time.
        self._urgent: Dict[float, List["Event"]] = {}
        #: The slot currently being drained, and the cursor into it.
        self._active: List["Event"] = []
        self._active_index = 0
        #: Time of the active slot (None before the first advance).
        self._active_time: Optional[float] = None
        #: Urgent events due at the active time, drained before _active.
        self._preempt: Deque["Event"] = deque()
        self._count = 0

    def push(self, when: float, priority: int, seq: int,
             event: "Event") -> None:
        """Insert one entry; ``seq`` is recorded on the event itself."""
        event._seq = seq
        self._count += 1
        if priority != 0:
            slots = self._slots
            slot = slots.get(when)
            if slot is not None:
                slot.append(event)
            elif when == self._active_time:
                self._active.append(event)
            else:
                slots[when] = [event]
                # The "time already pending" invariant is checked once:
                # ``when`` enters ``_times`` only if no urgent slot put
                # it there already (a normal event landing on an
                # urgent-only time must not duplicate the heap entry).
                if when not in self._urgent:
                    heappush(self._times, when)
        else:
            self._push_urgent_uncounted(when, event)

    def _push_urgent_uncounted(self, when: float, event: "Event") -> None:
        """Insert a priority-0 entry WITHOUT maintaining ``len(self)``.

        The underscore is the contract: ``_count`` is the caller's job.
        :meth:`push` pre-counts before delegating here, and the engine's
        inlined scheduling path (``Simulator._schedule_event``) counts at
        its top so normal and urgent bands share one increment.  Calling
        this directly from anywhere else silently corrupts ``len(self)``
        — use :meth:`push` with ``priority=0`` instead.
        """
        if when == self._active_time:
            self._preempt.append(event)
            return
        pre = self._urgent.get(when)
        if pre is not None:
            pre.append(event)
            return
        self._urgent[when] = [event]
        if when not in self._slots:
            heappush(self._times, when)

    def pop(self) -> Optional[Entry]:
        """Remove and return the next entry, or ``None`` when empty.

        Like :meth:`HeapEventQueue.pop`, cancelled events come back too;
        the engine discards them.
        """
        while True:
            preempt = self._preempt
            if preempt:
                event = preempt.popleft()
                self._count -= 1
                # _active_time is never None once anything was queued at
                # the current instant.
                return (self._active_time, 0, event._seq, event)  # type: ignore[return-value]
            batch = self._active
            i = self._active_index
            if i < len(batch):
                self._active_index = i + 1
                event = batch[i]
                self._count -= 1
                return (self._active_time, 1, event._seq, event)  # type: ignore[return-value]
            times = self._times
            if not times:
                return None
            t = heappop(times)
            self._active_time = t
            if self._urgent:
                pre = self._urgent.pop(t, None)
                if pre is not None:
                    preempt.extend(pre)
            batch = self._slots.pop(t, None)
            self._active = batch if batch is not None else []
            self._active_index = 0

    def peek_time(self) -> float:
        """Time of the next entry (cancelled or not); ``inf`` when empty."""
        if self._preempt or self._active_index < len(self._active):
            return self._active_time  # type: ignore[return-value]
        times = self._times
        return times[0] if times else _INF

    def __len__(self) -> int:
        return self._count
