"""DetSan — the runtime determinism sanitizer.

The static rules in :mod:`repro.lint` prove determinism where an AST can
see it; DetSan pinpoints divergence where it cannot (C extensions,
address-dependent hashing, state smuggled through module globals).  The
idea is the TSan/MSan discipline applied to a discrete-event simulator:
instrument the *scheduling decisions* themselves, run the target twice
with the same seed, and report the **first divergent event** instead of
"the trace bytes differ".

A :class:`DetSanRecorder` attaches to a
:class:`~repro.sim.engine.Simulator` (``Simulator(detsan=recorder)``).
Every delivered event folds its ``(time, priority, sequence, kind,
name, resumed processes)`` tuple into a rolling SHA-256 digest, and —
unless ``keep_records=False`` — appends an :class:`EventRecord` so two
runs can be aligned event-by-event afterwards.  The engine's
disabled path is a single ``is not None`` check per event, bounded by
the <=3% overhead budget in ``bench_perf_engine``.

Driving it by hand::

    a, b = DetSanRecorder(), DetSanRecorder()
    Simulator(detsan=a); ...run...   # same workload, same seed
    Simulator(detsan=b); ...run...
    divergence = first_divergence(a, b)
    if divergence is not None:
        print(divergence.describe())

``python -m repro detsan campaign|app`` wraps exactly this around the
standard campaign workloads and decorates the report with span context
from :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = [
    "DetSanRecorder",
    "Divergence",
    "EventRecord",
    "first_divergence",
    "span_context",
]


@dataclass(frozen=True)
class EventRecord:
    """One scheduling decision: what the engine delivered, and to whom.

    ``processes`` names the process(es) whose callbacks the event was
    about to resume — the attribution that turns an event index into
    "process ``rank2.3``".  Two same-seed runs are deterministic exactly
    when their record streams are equal element-wise.
    """

    index: int
    time: float
    priority: int
    sequence: int
    kind: str
    name: str
    processes: Tuple[str, ...]

    def describe(self) -> str:
        """One-line human-readable form for divergence reports."""
        owner = ", ".join(self.processes) if self.processes else "-"
        return (f"#{self.index} t={self.time!r} prio={self.priority} "
                f"seq={self.sequence} {self.kind}:{self.name!r} -> {owner}")

    def as_tuple(self) -> Tuple[Any, ...]:
        """The comparison key (everything except ``index``)."""
        return (self.time, self.priority, self.sequence, self.kind,
                self.name, self.processes)


class DetSanRecorder:
    """Folds a run's scheduling decisions into a digest (and a log).

    ``keep_records=False`` keeps only the rolling digest — enough to
    answer *whether* two runs diverged at minimal memory cost;
    ``keep_records=True`` (the default) also keeps the aligned event log
    that :func:`first_divergence` needs to answer *where*.
    """

    __slots__ = ("records", "keep_records", "events_folded", "_hash")

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: List[EventRecord] = []
        self.events_folded = 0
        self._hash = hashlib.sha256()

    @property
    def digest(self) -> str:
        """Rolling SHA-256 over every scheduling decision folded so far."""
        return self._hash.hexdigest()

    def fold(self, when: float, priority: int, sequence: int,
             event: Any) -> None:
        """Fold one about-to-be-delivered event into the digest.

        Called by :meth:`repro.sim.engine.Simulator.step` *before*
        delivery, so the record stream captures the decision order, not
        its side effects.  ``event`` is duck-typed (``name``,
        ``_callbacks``) to keep this module import-light.
        """
        processes = _resumed_processes(event)
        kind = type(event).__name__
        name = getattr(event, "name", "")
        # repr() of the float keeps full precision: two times that
        # differ in the last ulp are a divergence, not a rounding twin.
        self._hash.update(
            (f"{when!r}\x1f{priority}\x1f{sequence}\x1f{kind}"
             f"\x1f{name}\x1f{','.join(processes)}\x1e").encode("utf-8"))
        if self.keep_records:
            self.records.append(EventRecord(
                index=self.events_folded, time=when, priority=priority,
                sequence=sequence, kind=kind, name=name,
                processes=processes))
        self.events_folded += 1


def _resumed_processes(event: Any) -> Tuple[str, ...]:
    """Names of the processes this event's delivery resumes.

    Processes register bound ``_resume`` / ``_resume_with_interrupt``
    methods as callbacks; anything with a ``generator`` attribute on the
    bound receiver is a :class:`~repro.sim.engine.Process` (duck-typed
    to avoid importing the engine from a module it instruments).
    """
    callbacks = getattr(event, "_callbacks", None)
    if not callbacks:
        return ()
    names: List[str] = []
    for callback in callbacks:
        receiver = getattr(callback, "__self__", None)
        if receiver is not None and hasattr(receiver, "generator"):
            names.append(getattr(receiver, "name", "?"))
    return tuple(names)


@dataclass(frozen=True)
class Divergence:
    """Where two same-seed runs first disagreed.

    ``left``/``right`` are the records at the first differing index
    (``None`` when one run simply ran out of events — a length
    divergence).  ``spans`` carries the innermost-to-outermost span
    names open around the divergent instant when the caller supplied an
    :class:`~repro.obs.Observability` (empty otherwise).
    """

    index: int
    left: Optional[EventRecord]
    right: Optional[EventRecord]
    spans: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line report naming the first divergent event."""
        lines = [f"first divergent event: #{self.index}"]
        process = None
        for record in (self.right, self.left):
            if record is not None and record.processes:
                process = record.processes[0]
        if process is not None:
            lines[0] += f" in process {process!r}"
        lines.append(f"  run A: "
                     f"{self.left.describe() if self.left else '<ended>'}")
        lines.append(f"  run B: "
                     f"{self.right.describe() if self.right else '<ended>'}")
        if self.spans:
            lines.append("  open span(s): " + " > ".join(self.spans))
        return "\n".join(lines)


def first_divergence(a: DetSanRecorder, b: DetSanRecorder,
                     obs: Any = None) -> Optional[Divergence]:
    """Align two recorders and return the first disagreement, or None.

    Both recorders must have kept records (the default).  ``obs`` — an
    :class:`~repro.obs.Observability` from the *second* run — enriches
    the report with the spans open at the divergent instant.
    """
    if not a.keep_records or not b.keep_records:
        raise ValueError("first_divergence needs recorders with "
                         "keep_records=True")
    if a.digest == b.digest and a.events_folded == b.events_folded:
        return None
    for index, (left, right) in enumerate(zip(a.records, b.records)):
        if left.as_tuple() != right.as_tuple():
            spans = span_context(obs, right) if obs is not None else ()
            return Divergence(index=index, left=left, right=right,
                              spans=spans)
    index = min(len(a.records), len(b.records))
    left = a.records[index] if index < len(a.records) else None
    right = b.records[index] if index < len(b.records) else None
    anchor = right or left
    spans = (span_context(obs, anchor)
             if obs is not None and anchor is not None else ())
    return Divergence(index=index, left=left, right=right, spans=spans)


def span_context(obs: Any, record: EventRecord) -> Tuple[str, ...]:
    """Span names open around ``record``'s instant, innermost first.

    Matches spans whose track belongs to one of the record's resumed
    processes (per-process tracks are named after the process, possibly
    suffixed for uniqueness), falling back to any track when the event
    resumed no process.  Tolerant of any ``obs`` shape: no ``spans``
    attribute means no context.
    """
    spans = getattr(obs, "spans", None)
    if not spans:
        return ()
    matches = []
    for span in spans:
        start = getattr(span, "start", None)
        end = getattr(span, "end", None)
        if start is None or start > record.time:
            continue
        if end is not None and end < record.time:
            continue
        track = str(getattr(span, "track", ""))
        if record.processes and not any(
                track.startswith(process) for process in record.processes):
            continue
        matches.append((start, getattr(span, "name", "?")))
    matches.sort(key=lambda item: item[0], reverse=True)
    return tuple(name for _start, name in matches)
